//! # region-growing-repro
//!
//! Umbrella crate for the reproduction of *"Solving the Region Growing
//! Problem on the Connection Machine"* (Copty, Ranka, Fox, Shankar;
//! ICPP 1993): parallel split-and-merge image segmentation, with the
//! paper's CM-2 and CM-5 execution platforms rebuilt as simulators.
//!
//! This crate simply re-exports the workspace members under one roof so
//! the examples and integration tests read naturally:
//!
//! * [`imaging`] — rasters, PGM I/O, synthetic scenes ([`rg_imaging`])
//! * [`core`] — the split-and-merge algorithm ([`rg_core`])
//! * [`dsu`] — union-find substrate ([`rg_dsu`])
//! * [`cm`] — the SIMD data-parallel machine simulator ([`cm_sim`])
//! * [`cmmd`] — the message-passing node runtime ([`cmmd_sim`])
//! * [`datapar`] — the CM Fortran-style implementation ([`rg_datapar`])
//! * [`msgpass`] — the F77+CMMD-style implementation ([`rg_msgpass`])
//! * [`baselines`] — CCL, seeded growing, Horowitz-Pavlidis ([`rg_baselines`])

pub use cm_sim as cm;
pub use cmmd_sim as cmmd;
pub use rg_baselines as baselines;
pub use rg_core as core;
pub use rg_datapar as datapar;
pub use rg_dsu as dsu;
pub use rg_imaging as imaging;
pub use rg_msgpass as msgpass;
