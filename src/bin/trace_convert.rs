//! `trace_convert` — turn a JSONL event journal (written by
//! `rgrow --trace-out`) into a Chrome `trace_event` JSON file, or validate
//! a journal post-mortem.
//!
//! ```text
//! trace_convert <journal.jsonl|-> [-o out.trace.json] [--validate] [--strict]
//!
//!   <journal.jsonl|->   input journal; `-` reads from stdin
//!   -o PATH             output path for the Chrome trace (default: stdout)
//!   --validate          do not convert; check the journal instead:
//!                       every line parses (unless truncated at the tail),
//!                       spans are balanced and strictly nested,
//!                       timestamps are monotonic (host and per-rank
//!                       virtual clocks), and every flow recv pairs with a
//!                       prior send. Exit 1 on violation. Without
//!                       `--strict`, a truncated journal's dangling sends
//!                       are reported but tolerated.
//!   --strict            fail on the first malformed line instead of
//!                       tolerating a truncated tail (useful in CI)
//! ```
//!
//! A journal may contain several concatenated runs (one `run_start` each);
//! the converter assigns each run its own Chrome process lane.

use rg_core::{
    chrome_trace_multi, flow_pairing, parse_journal, parse_journal_strict, split_runs,
    validate_chrome_trace, validate_journal, Event,
};
use std::io::Read;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: trace_convert <journal.jsonl|-> [-o out.trace.json] [--validate] [--strict]");
    exit(2)
}

fn main() {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut validate = false;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-o" | "--out" => {
                output = Some(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {a}");
                    usage()
                }))
            }
            "--validate" => validate = true,
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            "-" => input = Some(a),
            _ if a.starts_with('-') => {
                eprintln!("unknown flag {a}");
                usage()
            }
            _ if input.is_none() => input = Some(a),
            _ => usage(),
        }
    }
    let path = input.unwrap_or_else(|| usage());
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("cannot read stdin: {e}");
                exit(1)
            });
        buf
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        })
    };

    let mut truncated = false;
    let events: Vec<Event> = if strict {
        match parse_journal_strict(&text) {
            Ok(ev) => ev,
            Err((line, msg)) => {
                eprintln!("{path}:{line}: malformed journal line: {msg}");
                exit(1)
            }
        }
    } else {
        let (events, stats) = parse_journal(&text);
        if stats.truncated {
            truncated = true;
            eprintln!(
                "note: journal truncated after {} event(s) (line {}): {}",
                stats.events,
                stats.events + 1,
                stats.error.as_deref().unwrap_or("unparseable line")
            );
        }
        events
    };

    let runs = split_runs(&events);
    if validate {
        let mut bad = 0usize;
        for (i, run) in runs.iter().enumerate() {
            match validate_journal(run) {
                Ok(()) => {}
                // A journal cut mid-run legitimately loses the recv halves
                // of in-flight sends; without --strict that is a note, not
                // a failure (orphan recvs and clock regressions still are).
                Err(v) if truncated && v.message.contains("without a matching recv") => {
                    eprintln!(
                        "note: run {}: {} (tolerated: truncated journal)",
                        i + 1,
                        v.message
                    );
                }
                Err(v) => {
                    eprintln!(
                        "run {}: invalid journal at event {}: {}",
                        i + 1,
                        v.event_index,
                        v.message
                    );
                    bad += 1;
                }
            }
            let fp = flow_pairing(run);
            if fp.any() {
                println!(
                    "run {}: flows {} send(s) {} recv(s) {} collective(s), {} matched, \
                     {} unmatched recv(s), {} unpaired send(s)",
                    i + 1,
                    fp.sends,
                    fp.recvs,
                    fp.colls,
                    fp.matched,
                    fp.unmatched_recvs,
                    fp.unpaired_sends
                );
            }
        }
        println!(
            "{}: {} event(s), {} run(s), {} invalid",
            path,
            events.len(),
            runs.len(),
            bad
        );
        exit(if bad > 0 { 1 } else { 0 });
    }

    let doc = chrome_trace_multi(&runs);
    debug_assert!(validate_chrome_trace(&doc).is_ok());
    let body = doc.to_compact();
    match output {
        Some(out) => {
            std::fs::write(&out, body).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            eprintln!(
                "wrote {} trace event(s) across {} run lane(s) to {out}",
                events.len(),
                runs.len()
            );
        }
        None => println!("{body}"),
    }
}
