//! `rgrow` — command-line split-and-merge region growing.
//!
//! ```text
//! rgrow <input.pgm> [output.pgm] [options]
//! rgrow --demo image3 out.pgm --engine mp-async
//!
//! options:
//!   --threshold N          homogeneity threshold T in grey levels [10]
//!   --tie random|smallest|largest    tie-break policy [random]
//!   --seed N               seed for random tie-breaking [0x5EED]
//!   --connectivity 4|8     region adjacency [4]
//!   --criterion range|mean homogeneity criterion [range]
//!   --cap N                max square side 2^N (0 = merge-only) [unbounded]
//!   --engine seq|par|cm2-8k|cm2-16k|cm5-dp|mp-lp|mp-async   [par]
//!   --nodes N              node count for mp-* engines [32]
//!   --demo NAME            use a built-in scene instead of an input file
//!                          (image1..image6, circles, rects, nested, tool)
//!   --telemetry PATH       write a JSON telemetry report (stage timings,
//!                          per-iteration merge counts, comm counters,
//!                          histograms); PATH of `-` writes to stdout
//!   --trace-out PATH       stream a JSONL event journal (hierarchical spans,
//!                          counters, histograms) while the run executes;
//!                          PATH of `-` streams to stderr, unbuffered
//!   --chrome-trace PATH    write a Chrome trace_event JSON file viewable in
//!                          chrome://tracing or Perfetto
//!   --verify               check connectivity/homogeneity/maximality
//!   --quiet                suppress the summary
//! ```

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{
    chrome_trace, jsonl_sink_for_path, labels::labels_to_image, segment_par_with_telemetry,
    segment_with_telemetry, verify_segmentation, Config, Connectivity, Criterion, EmitEvent,
    EventLog, Fanout, NullTelemetry, Recorder, Segmentation, Telemetry, TieBreak,
};
use rg_imaging::{pgm, synth, GrayImage};
use std::process::exit;

struct Options {
    input: Option<String>,
    output: Option<String>,
    demo: Option<String>,
    threshold: u32,
    tie: TieBreak,
    connectivity: Connectivity,
    criterion: Criterion,
    cap: Option<u8>,
    engine: String,
    nodes: usize,
    telemetry: Option<String>,
    trace_out: Option<String>,
    chrome_trace: Option<String>,
    verify: bool,
    quiet: bool,
}

/// Valid values for `--engine`, in the order shown in error messages.
const ENGINES: &[&str] = &[
    "seq", "par", "cm2-8k", "cm2-16k", "cm5-dp", "mp-lp", "mp-async",
];
/// Valid values for `--tie`.
const TIES: &[&str] = &["random", "smallest", "largest"];

fn usage() -> ! {
    eprintln!(
        "usage: rgrow <input.pgm> [output.pgm] [--threshold N] [--tie random|smallest|largest]\n\
         \x20            [--seed N] [--connectivity 4|8] [--criterion range|mean] [--cap N]\n\
         \x20            [--engine seq|par|cm2-8k|cm2-16k|cm5-dp|mp-lp|mp-async] [--nodes N]\n\
         \x20            [--demo image1..image6|circles|rects|nested|tool] [--telemetry out.json|-]\n\
         \x20            [--trace-out out.jsonl|-] [--chrome-trace out.trace.json]\n\
         \x20            [--verify] [--quiet]"
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut o = Options {
        input: None,
        output: None,
        demo: None,
        threshold: 10,
        tie: TieBreak::Random { seed: 0x5EED },
        connectivity: Connectivity::Four,
        criterion: Criterion::PixelRange,
        cap: None,
        engine: "par".to_string(),
        nodes: 32,
        telemetry: None,
        trace_out: None,
        chrome_trace: None,
        verify: false,
        quiet: false,
    };
    let mut seed = 0x5EEDu64;
    let mut tie_name = "random".to_string();
    let mut args = std::env::args().skip(1).peekable();
    let need_value =
        |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>, flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" | "-t" => {
                o.threshold = need_value(&mut args, &a)
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--tie" => tie_name = need_value(&mut args, &a),
            "--seed" => {
                seed = need_value(&mut args, &a)
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--connectivity" => {
                o.connectivity = match need_value(&mut args, &a).as_str() {
                    "4" => Connectivity::Four,
                    "8" => Connectivity::Eight,
                    _ => usage(),
                }
            }
            "--criterion" => {
                o.criterion = match need_value(&mut args, &a).as_str() {
                    "range" => Criterion::PixelRange,
                    "mean" => Criterion::MeanDifference,
                    _ => usage(),
                }
            }
            "--cap" => {
                o.cap = Some(
                    need_value(&mut args, &a)
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--engine" => o.engine = need_value(&mut args, &a),
            "--nodes" => {
                o.nodes = need_value(&mut args, &a)
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--demo" => o.demo = Some(need_value(&mut args, &a)),
            "--telemetry" => o.telemetry = Some(need_value(&mut args, &a)),
            "--trace-out" => o.trace_out = Some(need_value(&mut args, &a)),
            "--chrome-trace" => o.chrome_trace = Some(need_value(&mut args, &a)),
            "--verify" => o.verify = true,
            "--quiet" | "-q" => o.quiet = true,
            "--help" | "-h" => usage(),
            _ if a.starts_with('-') => {
                eprintln!("unknown flag {a}");
                usage()
            }
            _ if o.input.is_none() && o.demo.is_none() => o.input = Some(a),
            _ if o.output.is_none() => o.output = Some(a),
            _ => usage(),
        }
    }
    o.tie = match tie_name.as_str() {
        "random" => TieBreak::Random { seed },
        "smallest" => TieBreak::SmallestId,
        "largest" => TieBreak::LargestId,
        other => {
            eprintln!(
                "unknown tie-break policy {other:?}; valid choices are: {}",
                TIES.join(", ")
            );
            usage()
        }
    };
    if !ENGINES.contains(&o.engine.as_str()) {
        eprintln!(
            "unknown engine {:?}; valid choices are: {}",
            o.engine,
            ENGINES.join(", ")
        );
        usage()
    }
    o
}

fn load_image(o: &Options) -> GrayImage {
    if let Some(demo) = &o.demo {
        return match demo.as_str() {
            "image1" => synth::PaperImage::Image1.generate(),
            "image2" => synth::PaperImage::Image2.generate(),
            "image3" | "circles" => synth::PaperImage::Image3.generate(),
            "image4" => synth::PaperImage::Image4.generate(),
            "image5" | "rects" => synth::PaperImage::Image5.generate(),
            "image6" | "tool" => synth::PaperImage::Image6.generate(),
            "nested" => synth::nested_rects(256),
            other => {
                eprintln!("unknown demo scene {other:?}");
                usage()
            }
        };
    }
    let path = o.input.as_ref().unwrap_or_else(|| usage());
    pgm::load(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    })
}

fn run_engine(
    o: &Options,
    img: &GrayImage,
    cfg: &Config,
    tel: &mut dyn Telemetry,
) -> (Segmentation, Option<String>) {
    match o.engine.as_str() {
        "seq" => (segment_with_telemetry(img, cfg, tel), None),
        "par" => (segment_par_with_telemetry(img, cfg, tel), None),
        "cm2-8k" | "cm2-16k" | "cm5-dp" => {
            let model = match o.engine.as_str() {
                "cm2-8k" => CostModel::cm2_8k(),
                "cm2-16k" => CostModel::cm2_16k(),
                _ => CostModel::cm5_dp_32(),
            };
            let out = rg_datapar::segment_datapar_with_telemetry(img, cfg, model, tel);
            let note = format!(
                "simulated on {}: split {:.3}s, merge {:.3}s",
                out.platform,
                out.split_seconds,
                out.merge_seconds_as_reported()
            );
            (out.seg, Some(note))
        }
        "mp-lp" | "mp-async" => {
            let scheme = if o.engine == "mp-lp" {
                CommScheme::LinearPermutation
            } else {
                CommScheme::Async
            };
            let out = rg_msgpass::segment_msgpass_with_telemetry(img, cfg, o.nodes, scheme, tel);
            let note = format!(
                "simulated on CM-5 ({} nodes, {}): split {:.3}s, merge {:.3}s (square cap 2^{})",
                out.nodes,
                out.scheme.label(),
                out.split_seconds,
                out.merge_seconds_as_reported(),
                out.cap_used
            );
            (out.seg, Some(note))
        }
        other => {
            eprintln!(
                "unknown engine {other:?}; valid choices are: {}",
                ENGINES.join(", ")
            );
            usage()
        }
    }
}

fn main() {
    let o = parse_args();
    if o.input.is_none() && o.demo.is_none() {
        usage();
    }
    let img = load_image(&o);
    let cfg = Config {
        threshold: o.threshold,
        tie_break: o.tie,
        connectivity: o.connectivity,
        criterion: o.criterion,
        max_square_log2: o.cap,
        ..Config::default()
    };
    let mut recorder = Recorder::new();
    let mut jsonl = o.trace_out.as_deref().map(|path| {
        jsonl_sink_for_path(path).unwrap_or_else(|e| {
            eprintln!("cannot open trace output {path}: {e}");
            exit(1)
        })
    });
    let mut chrome_log = o.chrome_trace.as_ref().map(|_| EventLog::in_memory());

    let mut sinks: Vec<&mut dyn Telemetry> = Vec::new();
    if o.telemetry.is_some() {
        sinks.push(&mut recorder);
    }
    if let Some(j) = jsonl.as_mut() {
        sinks.push(j);
    }
    if let Some(c) = chrome_log.as_mut() {
        sinks.push(c);
    }
    let mut null = NullTelemetry;
    let mut fan;
    let tel: &mut dyn Telemetry = if sinks.is_empty() {
        &mut null
    } else {
        fan = Fanout::new(sinks);
        &mut fan
    };
    let t0 = std::time::Instant::now();
    let (seg, note) = run_engine(&o, &img, &cfg, tel);
    let wall = t0.elapsed();
    // Close the streaming journal (flushes buffered lines, reports drops).
    if let Some(j) = jsonl.take() {
        let writer = j.into_sink();
        if writer.dropped() > 0 {
            eprintln!(
                "warning: {} journal event(s) dropped (write failures)",
                writer.dropped()
            );
        }
    }

    if !o.quiet {
        println!(
            "{}x{} -> {} squares ({} split iters) -> {} regions ({} merge iters) in {:.1} ms",
            seg.width,
            seg.height,
            seg.num_squares,
            seg.split_iterations,
            seg.num_regions,
            seg.merge_iterations,
            wall.as_secs_f64() * 1e3
        );
        if let Some(note) = note {
            println!("{note}");
        }
    }
    if o.verify {
        match verify_segmentation(&img, &seg, &cfg) {
            Ok(()) => {
                if !o.quiet {
                    println!("verify: ok");
                }
            }
            Err(v) => {
                eprintln!("verify FAILED: {} violations, first: {}", v.len(), v[0]);
                exit(1);
            }
        }
    }
    if let Some(path) = &o.telemetry {
        let report = recorder.report();
        if path == "-" {
            println!("{}", report.to_json_pretty());
        } else {
            std::fs::write(path, report.to_json_pretty()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            if !o.quiet {
                println!("wrote telemetry to {path}");
            }
        }
    }
    if let Some(path) = &o.chrome_trace {
        let log = chrome_log.take().expect("chrome log allocated above");
        let doc = chrome_trace(log.events());
        let body = doc.to_compact();
        if path == "-" {
            println!("{body}");
        } else {
            std::fs::write(path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            if !o.quiet {
                println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
            }
        }
    }
    if let Some(out) = &o.output {
        let rendered = labels_to_image(&seg.labels, seg.width, seg.height);
        pgm::save(&rendered, out).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1)
        });
        if !o.quiet {
            println!("wrote {out}");
        }
    }
}
