//! `rgrow` — command-line split-and-merge region growing.
//!
//! ```text
//! rgrow <input.pgm> [output.pgm] [options]
//! rgrow --demo image3 out.pgm --engine mp-async
//! rgrow --batch 'frames/*.pgm' --jobs 4 --engine par
//! rgrow --batch demo:random:16 --engine seq --telemetry -
//!
//! options:
//!   --batch SPEC           stream many images through one pooled pipeline
//!                          (allocation-free in steady state on the host
//!                          engines). SPEC is a PGM path glob (`*`/`?` in the
//!                          final component) or a synthetic spec
//!                          `demo:<scene>:<count>` (scenes as --demo, plus
//!                          `random` for per-index random 256x256 scenes).
//!                          [output.pgm] names a directory in batch mode.
//!   --jobs N               batch/tile worker count; each worker owns one
//!                          pipeline [1]. Forced to 1 when telemetry/tracing
//!                          is on so the journal's span nesting stays strict.
//!   --tiles RxC            shard the image into an R-row, C-column tile grid,
//!                          segment tiles on the worker pool, and stitch with
//!                          a cross-tile boundary merge (host engines only;
//!                          see DESIGN.md §17). The grid clamps so every tile
//!                          holds at least one pixel.
//!   --threshold N          homogeneity threshold T in grey levels [10]
//!   --tie random|smallest|largest    tie-break policy [random]
//!   --seed N               seed for random tie-breaking [0x5EED]
//!   --connectivity 4|8     region adjacency [4]
//!   --criterion range|mean homogeneity criterion [range]
//!   --cap N                max square side 2^N (0 = merge-only) [unbounded]
//!   --engine seq|par|cm2-8k|cm2-16k|cm5-dp|mp-lp|mp-async   [par]
//!   --nodes N              node count for mp-* engines [32]
//!   --chaos SEED[:PROFILE] inject a seeded deterministic fault schedule into
//!                          the simulated CMMD fabric (mp-* engines only).
//!                          SEED is decimal or 0x-hex; PROFILE is one of
//!                          none|drop|dup|corrupt|delay|slow|storm|blackhole
//!                          [storm]. Survivable schedules reproduce the
//!                          fault-free labels bit for bit; unsurvivable ones
//!                          degrade to the sequential host engine. Trace
//!                          journals switch to the logical clock so the same
//!                          seed writes a byte-identical journal every run.
//!   --demo NAME            use a built-in scene instead of an input file
//!                          (image1..image6, circles, rects, nested, tool).
//!                          The scalable scenes take a `:SIZE` suffix, e.g.
//!                          `nested:1024` for a 1024x1024 nested-rects scene.
//!   --telemetry PATH       write a JSON telemetry report (stage timings,
//!                          per-iteration merge counts, comm counters,
//!                          histograms); PATH of `-` writes to stdout
//!   --trace-out PATH       stream a JSONL event journal (hierarchical spans,
//!                          counters, histograms) while the run executes;
//!                          PATH of `-` streams to stderr, unbuffered
//!   --chrome-trace PATH    write a Chrome trace_event JSON file viewable in
//!                          chrome://tracing or Perfetto
//!   --analyze              after the run, print a causal analysis (critical
//!                          path, per-rank busy/idle, load imbalance,
//!                          straggler rank) from the captured flow events;
//!                          needs an mp-* engine to capture any
//!   --verify               check connectivity/homogeneity/maximality
//!   --quiet                suppress the summary
//! ```

use cm_sim::CostModel;
use cmmd_sim::{CommScheme, FaultPlan};
use rg_core::{
    analyze_journal, chrome_trace, jsonl_sink, labels::labels_to_image, run_batch,
    segment_par_with_telemetry, segment_with_telemetry, verify_segmentation, BatchOptions,
    ClockMode, Config, Connectivity, Criterion, EmitEvent, EventLog, Fanout, HostPipeline,
    NullTelemetry, Pipeline, Recorder, Segmentation, Telemetry, TieBreak, TileGrid, TiledRunner,
};
use rg_imaging::{pgm, synth, GrayImage};
use std::process::exit;

struct Options {
    input: Option<String>,
    output: Option<String>,
    demo: Option<String>,
    batch: Option<String>,
    tiles: Option<TileGrid>,
    jobs: usize,
    threshold: u32,
    tie: TieBreak,
    connectivity: Connectivity,
    criterion: Criterion,
    cap: Option<u8>,
    engine: String,
    nodes: usize,
    chaos: Option<FaultPlan>,
    telemetry: Option<String>,
    trace_out: Option<String>,
    chrome_trace: Option<String>,
    analyze: bool,
    verify: bool,
    quiet: bool,
}

/// Valid values for `--engine`, in the order shown in error messages.
const ENGINES: &[&str] = &[
    "seq", "par", "cm2-8k", "cm2-16k", "cm5-dp", "mp-lp", "mp-async",
];
/// Valid values for `--tie`.
const TIES: &[&str] = &["random", "smallest", "largest"];

fn usage() -> ! {
    eprintln!(
        "usage: rgrow <input.pgm> [output.pgm] [--threshold N] [--tie random|smallest|largest]\n\
         \x20            [--seed N] [--connectivity 4|8] [--criterion range|mean] [--cap N]\n\
         \x20            [--engine seq|par|cm2-8k|cm2-16k|cm5-dp|mp-lp|mp-async] [--nodes N]\n\
         \x20            [--chaos SEED[:none|drop|dup|corrupt|delay|slow|storm|blackhole]]\n\
         \x20            [--tiles RxC] [--jobs N]\n\
         \x20            [--demo image1..image6|circles|rects|nested|tool[:SIZE]] [--telemetry out.json|-]\n\
         \x20            [--trace-out out.jsonl|-] [--chrome-trace out.trace.json]\n\
         \x20            [--analyze] [--verify] [--quiet]"
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut o = Options {
        input: None,
        output: None,
        demo: None,
        batch: None,
        tiles: None,
        jobs: 1,
        threshold: 10,
        tie: TieBreak::Random { seed: 0x5EED },
        connectivity: Connectivity::Four,
        criterion: Criterion::PixelRange,
        cap: None,
        engine: "par".to_string(),
        nodes: 32,
        chaos: None,
        telemetry: None,
        trace_out: None,
        chrome_trace: None,
        analyze: false,
        verify: false,
        quiet: false,
    };
    let mut seed = 0x5EEDu64;
    let mut tie_name = "random".to_string();
    let mut args = std::env::args().skip(1).peekable();
    let need_value =
        |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>, flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" | "-t" => {
                o.threshold = need_value(&mut args, &a)
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--tie" => tie_name = need_value(&mut args, &a),
            "--seed" => {
                seed = need_value(&mut args, &a)
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--connectivity" => {
                o.connectivity = match need_value(&mut args, &a).as_str() {
                    "4" => Connectivity::Four,
                    "8" => Connectivity::Eight,
                    _ => usage(),
                }
            }
            "--criterion" => {
                o.criterion = match need_value(&mut args, &a).as_str() {
                    "range" => Criterion::PixelRange,
                    "mean" => Criterion::MeanDifference,
                    _ => usage(),
                }
            }
            "--cap" => {
                o.cap = Some(
                    need_value(&mut args, &a)
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--engine" => o.engine = need_value(&mut args, &a),
            "--nodes" => {
                o.nodes = need_value(&mut args, &a)
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--chaos" => {
                let spec = need_value(&mut args, &a);
                o.chaos = Some(FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bad --chaos spec {spec:?}: {e}");
                    usage()
                }))
            }
            "--demo" => o.demo = Some(need_value(&mut args, &a)),
            "--batch" => o.batch = Some(need_value(&mut args, &a)),
            "--tiles" => {
                let spec = need_value(&mut args, &a);
                o.tiles = Some(TileGrid::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bad --tiles spec: {e}");
                    usage()
                }))
            }
            "--jobs" | "-j" => {
                let v = need_value(&mut args, &a);
                o.jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --jobs value {v:?}: expected a worker count (e.g. --jobs 4)");
                    usage()
                })
            }
            "--telemetry" => o.telemetry = Some(need_value(&mut args, &a)),
            "--trace-out" => o.trace_out = Some(need_value(&mut args, &a)),
            "--chrome-trace" => o.chrome_trace = Some(need_value(&mut args, &a)),
            "--analyze" => o.analyze = true,
            "--verify" => o.verify = true,
            "--quiet" | "-q" => o.quiet = true,
            "--help" | "-h" => usage(),
            _ if a.starts_with('-') => {
                eprintln!("unknown flag {a}");
                usage()
            }
            _ if o.input.is_none() && o.demo.is_none() && o.batch.is_none() => o.input = Some(a),
            _ if o.output.is_none() => o.output = Some(a),
            _ => usage(),
        }
    }
    o.tie = match tie_name.as_str() {
        "random" => TieBreak::Random { seed },
        "smallest" => TieBreak::SmallestId,
        "largest" => TieBreak::LargestId,
        other => {
            eprintln!(
                "unknown tie-break policy {other:?}; valid choices are: {}",
                TIES.join(", ")
            );
            usage()
        }
    };
    if !ENGINES.contains(&o.engine.as_str()) {
        eprintln!(
            "unknown engine {:?}; valid choices are: {}",
            o.engine,
            ENGINES.join(", ")
        );
        usage()
    }
    if o.chaos.is_some() && !o.engine.starts_with("mp-") {
        eprintln!(
            "--chaos injects faults into the simulated CMMD fabric and needs an mp-* engine \
             (got {:?})",
            o.engine
        );
        usage()
    }
    if o.tiles.is_some() {
        if o.batch.is_some() {
            eprintln!("--tiles shards one image and cannot combine with --batch");
            usage()
        }
        if !matches!(o.engine.as_str(), "seq" | "par") {
            eprintln!(
                "--tiles runs on the host engines (seq, par); got {:?}",
                o.engine
            );
            usage()
        }
    }
    o
}

fn load_image(o: &Options) -> GrayImage {
    if let Some(demo) = &o.demo {
        // Scalable scenes take a `:SIZE` suffix (e.g. `nested:1024`); the
        // paper's fixed images do not.
        let (scene, size) = match demo.split_once(':') {
            Some((scene, n)) => {
                let size = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| {
                        eprintln!("bad demo size in {demo:?}: expected a positive pixel count");
                        usage()
                    });
                (scene, Some(size))
            }
            None => (demo.as_str(), None),
        };
        if size.is_some() && !matches!(scene, "nested" | "circles" | "rects" | "tool") {
            eprintln!(
                "demo scene {scene:?} has a fixed size (sizes apply to nested/circles/rects/tool)"
            );
            usage()
        }
        return match scene {
            "image1" => synth::PaperImage::Image1.generate(),
            "image2" => synth::PaperImage::Image2.generate(),
            "image3" => synth::PaperImage::Image3.generate(),
            "image4" => synth::PaperImage::Image4.generate(),
            "image5" => synth::PaperImage::Image5.generate(),
            "image6" => synth::PaperImage::Image6.generate(),
            "circles" => match size {
                Some(n) => synth::circle_collection(n),
                None => synth::PaperImage::Image3.generate(),
            },
            "rects" => match size {
                Some(n) => synth::rect_collection(n),
                None => synth::PaperImage::Image5.generate(),
            },
            "tool" => match size {
                Some(n) => synth::tool(n),
                None => synth::PaperImage::Image6.generate(),
            },
            "nested" => synth::nested_rects(size.unwrap_or(256)),
            other => {
                eprintln!("unknown demo scene {other:?}");
                usage()
            }
        };
    }
    let path = o.input.as_ref().unwrap_or_else(|| usage());
    pgm::load(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    })
}

fn run_engine(
    o: &Options,
    img: &GrayImage,
    cfg: &Config,
    tel: &mut dyn Telemetry,
) -> (Segmentation, Option<String>) {
    match o.engine.as_str() {
        "seq" => (segment_with_telemetry(img, cfg, tel), None),
        "par" => (segment_par_with_telemetry(img, cfg, tel), None),
        "cm2-8k" | "cm2-16k" | "cm5-dp" => {
            let model = match o.engine.as_str() {
                "cm2-8k" => CostModel::cm2_8k(),
                "cm2-16k" => CostModel::cm2_16k(),
                _ => CostModel::cm5_dp_32(),
            };
            let out = rg_datapar::segment_datapar_with_telemetry(img, cfg, model, tel);
            let note = format!(
                "simulated on {}: split {:.3}s, merge {:.3}s",
                out.platform,
                out.split_seconds,
                out.merge_seconds_as_reported()
            );
            (out.seg, Some(note))
        }
        "mp-lp" | "mp-async" => {
            let scheme = if o.engine == "mp-lp" {
                CommScheme::LinearPermutation
            } else {
                CommScheme::Async
            };
            let out = match &o.chaos {
                Some(plan) => rg_msgpass::segment_msgpass_chaos_with_telemetry(
                    img, cfg, o.nodes, scheme, plan, tel,
                ),
                None => rg_msgpass::segment_msgpass_with_telemetry(img, cfg, o.nodes, scheme, tel),
            };
            let mut note = if out.degraded {
                format!(
                    "chaos: cluster lost ({} fault events) -> degraded to host re-run (square cap 2^{})",
                    out.fault_events.len(),
                    out.cap_used
                )
            } else {
                format!(
                    "simulated on CM-5 ({} nodes, {}): split {:.3}s, merge {:.3}s (square cap 2^{})",
                    out.nodes,
                    out.scheme.label(),
                    out.split_seconds,
                    out.merge_seconds_as_reported(),
                    out.cap_used
                )
            };
            if let Some(plan) = &o.chaos {
                if !out.degraded {
                    note.push_str(&format!(
                        "\nchaos: survived seed {:#x} profile {} ({} faults injected, {} retries)",
                        plan.seed,
                        plan.profile_name,
                        out.fault_counters.total_faults(),
                        out.fault_counters.retries
                    ));
                }
            }
            (out.seg, Some(note))
        }
        other => {
            eprintln!(
                "unknown engine {other:?}; valid choices are: {}",
                ENGINES.join(", ")
            );
            usage()
        }
    }
}

/// Shell-style wildcard match (`*` any run, `?` one char), ASCII-byte-wise.
fn wildcard_match(pattern: &str, name: &str) -> bool {
    let (p, s) = (pattern.as_bytes(), name.as_bytes());
    let (mut pi, mut si) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == s[si]) {
            pi += 1;
            si += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = pi;
            mark = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Expands a `--batch` spec into named images: a `demo:<scene>:<count>`
/// synthetic stream, a PGM path glob, or a single literal path.
fn expand_batch(spec: &str) -> Vec<(String, GrayImage)> {
    if let Some(rest) = spec.strip_prefix("demo:") {
        let (scene, count) = match rest.rsplit_once(':') {
            Some((scene, n)) => (
                scene,
                n.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("bad count in batch spec {spec:?}");
                    usage()
                }),
            ),
            None => (rest, 1),
        };
        if count == 0 {
            eprintln!("batch spec {spec:?} asks for zero images; use a positive count");
            exit(2);
        }
        return (0..count)
            .map(|i| {
                let img = match scene {
                    "random" => synth::random_rects(256, 256, 12, i as u64),
                    "image1" => synth::PaperImage::Image1.generate(),
                    "image2" => synth::PaperImage::Image2.generate(),
                    "image3" | "circles" => synth::PaperImage::Image3.generate(),
                    "image4" => synth::PaperImage::Image4.generate(),
                    "image5" | "rects" => synth::PaperImage::Image5.generate(),
                    "image6" | "tool" => synth::PaperImage::Image6.generate(),
                    "nested" => synth::nested_rects(256),
                    other => {
                        eprintln!("unknown batch demo scene {other:?}");
                        usage()
                    }
                };
                (format!("{scene}:{i}"), img)
            })
            .collect();
    }
    if spec.contains('*') || spec.contains('?') {
        let (dir, pat) = match spec.rsplit_once('/') {
            Some((d, p)) => (d.to_string(), p.to_string()),
            None => (".".to_string(), spec.to_string()),
        };
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| {
                eprintln!("cannot list {dir}: {e}");
                exit(1)
            })
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| wildcard_match(&pat, n))
            .collect();
        names.sort();
        if names.is_empty() {
            eprintln!("batch glob {spec:?} matched no files; an empty batch is almost certainly a mistake");
            exit(2);
        }
        return names
            .into_iter()
            .map(|n| {
                let path = format!("{dir}/{n}");
                let img = pgm::load(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(1)
                });
                (n, img)
            })
            .collect();
    }
    let img = pgm::load(spec).unwrap_or_else(|e| {
        eprintln!("cannot read {spec}: {e}");
        exit(1)
    });
    vec![(spec.to_string(), img)]
}

/// Builds one pooled pipeline for the selected engine (called once per
/// batch worker). A chaos plan only reaches the mp-* engines (enforced at
/// argument parsing).
fn pipeline_for(
    engine: &str,
    cfg: Config,
    nodes: usize,
    chaos: Option<&FaultPlan>,
) -> Box<dyn Pipeline + Send> {
    let mp = |scheme: CommScheme| -> Box<dyn Pipeline + Send> {
        match chaos {
            Some(plan) => Box::new(rg_msgpass::MsgPassPipeline::with_chaos(
                cfg,
                nodes,
                scheme,
                plan.clone(),
            )),
            None => Box::new(rg_msgpass::MsgPassPipeline::new(cfg, nodes, scheme)),
        }
    };
    match engine {
        "seq" => Box::new(HostPipeline::<u8>::new(cfg, false)),
        "par" => Box::new(HostPipeline::<u8>::new(cfg, true)),
        "cm2-8k" => Box::new(rg_datapar::DataParPipeline::new(cfg, CostModel::cm2_8k())),
        "cm2-16k" => Box::new(rg_datapar::DataParPipeline::new(cfg, CostModel::cm2_16k())),
        "cm5-dp" => Box::new(rg_datapar::DataParPipeline::new(
            cfg,
            CostModel::cm5_dp_32(),
        )),
        "mp-lp" => mp(CommScheme::LinearPermutation),
        "mp-async" => mp(CommScheme::Async),
        other => {
            eprintln!(
                "unknown engine {other:?}; valid choices are: {}",
                ENGINES.join(", ")
            );
            usage()
        }
    }
}

/// Tiled mode: shard one image over the worker pool and stitch (see
/// `rg_core::tiles`). Telemetry-enabled runs execute on one worker so the
/// `tiled > tile:<i> > run` journal nesting stays strict.
fn run_tiled(
    o: &Options,
    img: &GrayImage,
    cfg: &Config,
    grid: TileGrid,
    tel: &mut dyn Telemetry,
) -> (Segmentation, Option<String>) {
    let mut runner = TiledRunner::new(*cfg, o.engine == "par", grid, o.jobs);
    let mut seg = Segmentation::default();
    let stats = runner.run_into(img, tel, &mut seg);
    let jobs = if tel.enabled() { 1 } else { o.jobs.max(1) };
    let note = format!(
        "tiled {}x{} ({} tiles, jobs {jobs}): {} tile regions, {} seam edges, \
         {} stitch merges in {} stitch iters",
        stats.rows,
        stats.cols,
        stats.tiles,
        stats.tile_regions,
        stats.seam_edges,
        stats.stitch_merges,
        stats.stitch_iterations
    );
    (seg, Some(note))
}

/// Batch mode: stream every image in the spec through pooled pipelines.
fn run_batch_mode(o: &Options, cfg: &Config, tel: &mut dyn Telemetry) {
    let images = expand_batch(o.batch.as_deref().expect("batch spec checked by caller"));
    if let Some(dir) = &o.output {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create output directory {dir}: {e}");
            exit(1)
        });
    }
    let imgs: Vec<GrayImage> = images.iter().map(|(_, img)| img.clone()).collect();
    let cfg = *cfg;
    let mut opts = BatchOptions::new().jobs(o.jobs);
    if let Some(plan) = &o.chaos {
        opts = opts.chaos(plan.seed, &plan.profile_name);
    }
    let summary = run_batch(
        &imgs,
        &opts,
        || pipeline_for(&o.engine, cfg, o.nodes, o.chaos.as_ref()),
        tel,
        |i, seg| {
            if o.verify {
                if let Err(v) = verify_segmentation(&imgs[i], seg, &cfg) {
                    eprintln!(
                        "verify FAILED on {}: {} violations, first: {}",
                        images[i].0,
                        v.len(),
                        v[0]
                    );
                    exit(1);
                }
            }
            if let Some(dir) = &o.output {
                let stem = images[i]
                    .0
                    .rsplit('/')
                    .next()
                    .unwrap_or(&images[i].0)
                    .trim_end_matches(".pgm")
                    .replace(':', "_");
                let path = format!("{dir}/{stem}.seg.pgm");
                let rendered = labels_to_image(&seg.labels, seg.width, seg.height);
                pgm::save(&rendered, &path).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1)
                });
            }
            if !o.quiet {
                println!(
                    "[{i:>4}] {}: {}x{} -> {} regions ({} merge iters)",
                    images[i].0, seg.width, seg.height, seg.num_regions, seg.merge_iterations
                );
            }
        },
    );
    if !o.quiet {
        println!(
            "batch: {} images -> {} total regions in {:.1} ms ({:.1} images/s, engine {}, jobs {})",
            summary.images,
            summary.total_regions,
            summary.wall_seconds * 1e3,
            summary.images_per_sec(),
            o.engine,
            if tel.enabled() || o.chaos.is_some() {
                1
            } else {
                o.jobs.max(1)
            },
        );
        if o.verify && summary.all_ok() {
            println!("verify: ok ({} images)", summary.images);
        }
    }
    if !summary.all_ok() {
        let names: Vec<&str> = summary
            .failed
            .iter()
            .map(|&i| images[i].0.as_str())
            .collect();
        eprintln!(
            "batch: {} of {} image(s) FAILED (pipeline panicked): {}",
            summary.failed.len(),
            summary.images,
            names.join(", ")
        );
        exit(1);
    }
}

fn main() {
    let o = parse_args();
    if o.input.is_none() && o.demo.is_none() && o.batch.is_none() {
        usage();
    }
    // Batch mode has no single input image; everything else shares the
    // config + telemetry sink setup below.
    let img = (o.batch.is_none()).then(|| load_image(&o));
    let cfg = Config {
        threshold: o.threshold,
        tie_break: o.tie,
        connectivity: o.connectivity,
        criterion: o.criterion,
        max_square_log2: o.cap,
        ..Config::default()
    };
    let mut recorder = Recorder::new();
    // Chaos runs log with the logical clock so repeated seeded runs write
    // byte-identical journals and Chrome traces.
    let logical = o.chaos.is_some();
    let clock = if logical {
        ClockMode::Logical
    } else {
        ClockMode::Wall
    };
    let mut jsonl = o.trace_out.as_deref().map(|path| {
        jsonl_sink(path, clock).unwrap_or_else(|e| {
            eprintln!("cannot open trace output {path}: {e}");
            exit(1)
        })
    });
    // One in-memory log serves both the Chrome export and --analyze.
    let mut event_log = (o.chrome_trace.is_some() || o.analyze).then(|| {
        if logical {
            EventLog::in_memory().with_logical_clock()
        } else {
            EventLog::in_memory()
        }
    });

    let mut sinks: Vec<&mut dyn Telemetry> = Vec::new();
    if o.telemetry.is_some() {
        sinks.push(&mut recorder);
    }
    if let Some(j) = jsonl.as_mut() {
        sinks.push(j);
    }
    if let Some(c) = event_log.as_mut() {
        sinks.push(c);
    }
    let mut null = NullTelemetry;
    let mut fan;
    let tel: &mut dyn Telemetry = if sinks.is_empty() {
        &mut null
    } else {
        fan = Fanout::new(sinks);
        &mut fan
    };
    let t0 = std::time::Instant::now();
    let single = match &img {
        Some(img) => match o.tiles {
            Some(grid) => Some(run_tiled(&o, img, &cfg, grid, tel)),
            None => Some(run_engine(&o, img, &cfg, tel)),
        },
        None => {
            run_batch_mode(&o, &cfg, tel);
            None
        }
    };
    let wall = t0.elapsed();
    // Close the streaming journal (flushes buffered lines, reports drops).
    if let Some(j) = jsonl.take() {
        let writer = j.into_sink();
        if writer.dropped() > 0 {
            eprintln!(
                "warning: {} journal event(s) dropped (write failures)",
                writer.dropped()
            );
        }
    }

    if let Some((seg, note)) = &single {
        if !o.quiet {
            println!(
                "{}x{} -> {} squares ({} split iters) -> {} regions ({} merge iters) in {:.1} ms",
                seg.width,
                seg.height,
                seg.num_squares,
                seg.split_iterations,
                seg.num_regions,
                seg.merge_iterations,
                wall.as_secs_f64() * 1e3
            );
            if let Some(note) = note {
                println!("{note}");
            }
        }
        if o.verify {
            match verify_segmentation(img.as_ref().expect("single mode has an image"), seg, &cfg) {
                Ok(()) => {
                    if !o.quiet {
                        println!("verify: ok");
                    }
                }
                Err(v) => {
                    eprintln!("verify FAILED: {} violations, first: {}", v.len(), v[0]);
                    exit(1);
                }
            }
        }
    }
    if let Some(path) = &o.telemetry {
        let report = recorder.report();
        if path == "-" {
            println!("{}", report.to_json_pretty());
        } else {
            std::fs::write(path, report.to_json_pretty()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            if !o.quiet {
                println!("wrote telemetry to {path}");
            }
        }
    }
    if o.analyze {
        let log = event_log.as_ref().expect("event log allocated above");
        let analyses = analyze_journal(log.events());
        if analyses.is_empty() {
            eprintln!("--analyze: no flow events captured (causal tracing needs an mp-* engine)");
        } else {
            for a in &analyses {
                print!("{}", a.render());
            }
        }
    }
    if let Some(path) = &o.chrome_trace {
        let log = event_log.take().expect("event log allocated above");
        let doc = chrome_trace(log.events());
        let body = doc.to_compact();
        if path == "-" {
            println!("{body}");
        } else {
            std::fs::write(path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            if !o.quiet {
                println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
            }
        }
    }
    // Batch mode writes its per-image outputs inside run_batch_mode.
    if let (Some(out), Some((seg, _))) = (&o.output, &single) {
        let rendered = labels_to_image(&seg.labels, seg.width, seg.height);
        pgm::save(&rendered, out).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1)
        });
        if !o.quiet {
            println!("wrote {out}");
        }
    }
}
