//! Runs one image through every simulated platform of the paper and prints
//! the comparison: the reproduction of the experience of Table rows
//! "CM Fortran on CM-2 / CM-5" vs "F77 + CMMD on CM-5 (LP / Async)".
//!
//! ```text
//! cargo run --release --example cm_comparison            # image 3
//! cargo run --release --example cm_comparison -- 1       # image 1
//! ```

use cm_sim::CostModel;
use cmmd_sim::CommScheme;
use rg_core::{segment, Config, TieBreak};
use rg_datapar::segment_datapar;
use rg_imaging::synth::PaperImage;
use rg_msgpass::{segment_msgpass, Decomposition};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let pi = PaperImage::ALL[(n - 1).min(5)];
    let img = pi.generate();

    // Shared configuration: the cap that lets every engine agree bit for
    // bit (the largest square fitting one CM-5 node's sub-image).
    let d = Decomposition::for_nodes(32, img.width(), img.height());
    let cfg = Config::with_threshold(10)
        .tie_break(TieBreak::Random { seed: 0x5EED })
        .max_square_log2(Some(d.max_safe_square_log2()));

    println!("{}\n", pi.description());
    let host = segment(&img, &cfg);
    println!(
        "host reference: {} squares -> {} regions ({} split + {} merge iterations)\n",
        host.num_squares, host.num_regions, host.split_iterations, host.merge_iterations
    );

    println!(
        "{:<42} {:>12} {:>12} {:>10}",
        "platform", "split (s)", "merge (s)", "identical"
    );
    for model in [
        CostModel::cm2_8k(),
        CostModel::cm2_16k(),
        CostModel::cm5_dp_32(),
    ] {
        let out = segment_datapar(&img, &cfg, model);
        println!(
            "{:<42} {:>12.3} {:>12.3} {:>10}",
            format!("CM Fortran on {}", out.platform),
            out.split_seconds,
            out.merge_seconds_as_reported(),
            out.seg == host
        );
    }
    for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
        let out = segment_msgpass(&img, &cfg, 32, scheme);
        println!(
            "{:<42} {:>12.3} {:>12.3} {:>10}",
            format!("F77 + CMMD on CM-5 (32 nodes, {})", scheme.label()),
            out.split_seconds,
            out.merge_seconds_as_reported(),
            out.seg == host
        );
    }
    println!("\n(simulated seconds; every engine returns the identical segmentation)");
}
