//! Compares the paper's parallel split-and-merge with the sequential
//! classics it builds on: connected-component labeling, raster-order
//! seeded region growing (Zucker 1976), and Horowitz-Pavlidis directed
//! split-and-merge (1974).
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use rg_baselines::{ccl, hp, seeded};
use rg_core::{segment, Config, Connectivity};
use rg_imaging::synth::PaperImage;
use std::time::Instant;

fn main() {
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>14}",
        "algorithm", "regions", "ms", "merge steps", "iterations"
    );
    for pi in [PaperImage::Image3, PaperImage::Image6] {
        let img = pi.generate();
        let cfg = Config::with_threshold(10);
        println!("\n{}:", pi.description());

        let t = Instant::now();
        let sm = segment(&img, &cfg);
        let sm_ms = t.elapsed().as_secs_f64() * 1e3;
        let total_merges: u32 = sm.merges_per_iteration.iter().sum();
        println!(
            "{:<28} {:>10} {:>10.2} {:>12} {:>14}",
            "parallel split-and-merge", sm.num_regions, sm_ms, total_merges, sm.merge_iterations
        );

        let t = Instant::now();
        let hp_seg = hp::split_and_merge(&img, &cfg);
        let hp_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<28} {:>10} {:>10.2} {:>12} {:>14}",
            "Horowitz-Pavlidis (1974)",
            hp_seg.num_regions,
            hp_ms,
            hp_seg.merge_steps,
            format!("{} (serial)", hp_seg.merge_steps)
        );

        let t = Instant::now();
        let grown = seeded::grow_regions(&img, &cfg);
        let grown_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<28} {:>10} {:>10.2} {:>12} {:>14}",
            "seeded growing (Zucker 76)", grown.num_regions, grown_ms, "-", "-"
        );

        let t = Instant::now();
        let comps = ccl::label_components(&img, Connectivity::Four);
        let ccl_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<28} {:>10} {:>10.2} {:>12} {:>14}",
            "connected components (T=0)", comps.num_components, ccl_ms, "-", "-"
        );
    }
    println!("\nthe parallel formulation batches hundreds of serial merge steps into");
    println!("a few dozen mutual-merge iterations - the paper's core idea.");
}
