//! Quickstart: segment a synthetic scene and write the results as PGM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rg_core::{segment, verify_segmentation, Config, TieBreak};
use rg_imaging::{pgm, synth};

fn main() {
    // A 256x256 scene: ten circles on a background.
    let img = synth::circle_collection(256);

    // Segment with the paper's pixel-range criterion (T = 10 grey levels)
    // and its fast random tie-breaking.
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 1 });
    let seg = segment(&img, &cfg);

    println!("image:            256x256, {} pixels", img.len());
    println!(
        "split stage:      {} squares in {} iterations",
        seg.num_squares, seg.split_iterations
    );
    println!(
        "merge stage:      {} regions in {} iterations",
        seg.num_regions, seg.merge_iterations
    );
    println!("merges/iteration: {:?}", seg.merges_per_iteration);

    // The verifier checks connectivity, homogeneity and maximality.
    verify_segmentation(&img, &seg, &cfg).expect("segmentation invariants hold");
    println!("verification:     ok (connected, homogeneous, maximal)");

    // Write input and colourised labels next to each other.
    let out_dir = std::env::temp_dir().join("region-growing-quickstart");
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    pgm::save(&img, out_dir.join("input.pgm")).expect("write input");
    let label_img = rg_core::labels::labels_to_image(&seg.labels, seg.width, seg.height);
    pgm::save(&label_img, out_dir.join("labels.pgm")).expect("write labels");
    println!("wrote {}/input.pgm and labels.pgm", out_dir.display());
}
