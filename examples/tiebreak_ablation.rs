//! The paper's "Resolving Ties at Random" experiment: compares merge
//! iteration counts and merges-per-iteration across tie-break policies.
//!
//! ```text
//! cargo run --release --example tiebreak_ablation
//! ```

use rg_core::{segment, Config, TieBreak};
use rg_imaging::synth::PaperImage;

fn main() {
    println!("tie-break ablation on the paper's six images (T = 10)\n");
    for pi in PaperImage::ALL {
        let img = pi.generate();
        println!("{}", pi.description());
        println!(
            "  {:<24} {:>12} {:>18} {:>9}",
            "policy", "merge iters", "avg merges/iter", "regions"
        );
        for (name, tb) in [
            ("Random (seed 1)", TieBreak::Random { seed: 1 }),
            ("Random (seed 2)", TieBreak::Random { seed: 2 }),
            ("SmallestId", TieBreak::SmallestId),
            ("LargestId", TieBreak::LargestId),
        ] {
            let cfg = Config::with_threshold(10).tie_break(tb);
            let seg = segment(&img, &cfg);
            let total: u32 = seg.merges_per_iteration.iter().sum();
            let avg = if seg.merge_iterations == 0 {
                0.0
            } else {
                total as f64 / seg.merge_iterations as f64
            };
            println!(
                "  {:<24} {:>12} {:>18.2} {:>9}",
                name, seg.merge_iterations, avg, seg.num_regions
            );
        }
        println!();
    }
    println!("expected shape (paper): random needs fewer iterations because it");
    println!("produces more merges per iteration than the serialising ID policies.");
}
