//! Hierarchical segmentation from one run: record the merge dendrogram at
//! a generous threshold, then read off the partition at any smaller
//! "weight cut" without re-segmenting — the data-compression use Tilton's
//! work (the paper's reference [8]) built on region growing.
//!
//! ```text
//! cargo run --release --example hierarchy_sweep
//! ```

use rg_core::{segment_with_trace, Config};
use rg_imaging::synth;

fn main() {
    // A noisy scene so merges happen at many distinct weights.
    let img = synth::uniform_noise(256, 256, 30, 225, 2024);
    let max_t = 80;
    let cfg = Config::with_threshold(max_t);
    let (seg, trace) = segment_with_trace(&img, &cfg);

    println!(
        "one run at T = {max_t}: {} squares -> {} regions in {} iterations, {} merge events\n",
        seg.num_squares,
        seg.num_regions,
        seg.merge_iterations,
        trace.len()
    );

    println!("weight-cut sweep (no re-segmentation needed):");
    println!("{:>8} {:>12} {:>16}", "cut w", "regions", "compression");
    let total_px = (seg.width * seg.height) as f64;
    for w in [0u32, 5, 10, 20, 30, 40, 60, max_t] {
        let regions = trace.regions_at_cut(w);
        println!(
            "{:>8} {:>12} {:>15.1}x",
            w,
            regions,
            total_px / regions as f64
        );
    }

    println!("\nparallelism profile (merges per iteration, first 12):");
    for (it, n) in trace.merges_per_iteration().into_iter().take(12) {
        println!(
            "  iteration {:>3}: {:>6} merges  {}",
            it,
            n,
            "*".repeat((n as usize).min(60))
        );
    }
}
