//! Domain scenario: measure object geometry in a synthetic "parts on a
//! conveyor" scene — the kind of industrial-vision workload region growing
//! was used for. Segments with the rayon-parallel engine, then reports
//! per-region area, bounding box, centroid, and mean intensity via the
//! `rg_core::regions` API, and writes a boundary overlay as PGM.
//!
//! ```text
//! cargo run --release --example shape_segmentation
//! ```

use rg_core::regions::{overlay_boundaries, summarize_regions};
use rg_core::{segment_par, Config};
use rg_imaging::draw::{fill_circle, fill_rect, Rect};
use rg_imaging::{pgm, GrayImage, Image};

fn main() {
    // Build the scene: a belt background, three machined parts, a washer
    // (annulus: the hole stays background-coloured but enclosed).
    let mut img: GrayImage = Image::new(512, 384, 48);
    fill_rect(&mut img, Rect::new(40, 60, 120, 90), 140); // plate
    fill_rect(&mut img, Rect::new(230, 50, 60, 200), 190); // bar
    fill_circle(&mut img, 400, 120, 55, 230); // disc
    fill_circle(&mut img, 170, 280, 60, 120); // washer body
    fill_circle(&mut img, 170, 280, 25, 48); // washer hole

    let cfg = Config::with_threshold(12);
    let t0 = std::time::Instant::now();
    let seg = segment_par(&img, &cfg);
    let dt = t0.elapsed();

    println!(
        "segmented {}x{} scene into {} regions in {:.1} ms ({} squares after split)",
        seg.width,
        seg.height,
        seg.num_regions,
        dt.as_secs_f64() * 1e3,
        seg.num_squares
    );

    let mut rows = summarize_regions(&img, &seg);
    rows.sort_by_key(|r| std::cmp::Reverse(r.area()));
    println!(
        "{:<8} {:>9} {:>22} {:>16} {:>8}",
        "region", "area(px)", "bbox", "centroid", "mean"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9} {:>22} {:>16} {:>8.1}",
            r.label,
            r.area(),
            format!("({},{})-({},{})", r.bbox.0, r.bbox.1, r.bbox.2, r.bbox.3),
            format!("({:.1},{:.1})", r.centroid.0, r.centroid.1),
            r.mean()
        );
    }

    // 6 regions: belt, plate, bar, disc, washer, hole.
    assert_eq!(seg.num_regions, 6, "expected 6 regions in the scene");

    let out = std::env::temp_dir().join("shape_segmentation_overlay.pgm");
    pgm::save(&overlay_boundaries(&img, &seg), &out).expect("write overlay");
    println!("boundary overlay written to {}", out.display());
}
