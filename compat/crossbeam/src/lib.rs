//! Offline shim for the subset of [crossbeam](https://docs.rs/crossbeam)
//! used by this workspace: `channel::{unbounded, Sender, Receiver}`.
//!
//! Implemented over `std::sync::mpsc`. The workspace's CMMD runtime builds
//! a dedicated channel per (source, destination) pair and each `Receiver`
//! lives on exactly one thread, so mpsc semantics are sufficient.

/// Unbounded channels.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails only if every sender was
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            tx.send(1).unwrap();
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 42);
        }

        #[test]
        fn disconnect_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
