//! Offline shim for the subset of [parking_lot](https://docs.rs/parking_lot)
//! used by this workspace: `Mutex` with a panic-free, poison-ignoring
//! `lock()` (parking_lot's semantics), implemented over `std::sync::Mutex`.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` never returns a poison error, like parking_lot's.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with poison-ignoring accessors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(format!("{m:?}"), "Mutex(2)");
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
