//! Offline shim for the subset of [criterion](https://docs.rs/criterion)
//! used by this workspace: `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of statistical sampling it runs each benchmark for a small,
//! fixed number of passes and prints the mean wall time — enough to make
//! `cargo bench` produce useful relative numbers without the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-processed annotation for a benchmark (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{function}/{parameter}"`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a bare identifier from one displayable value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a closure over a fixed number of passes.
pub struct Bencher {
    passes: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `passes` times, accumulating total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.passes {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many passes each benchmark closure runs (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark that takes no extra input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            passes: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            passes: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (printing is done per-benchmark; this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean = b.elapsed.as_secs_f64() / f64::from(b.passes.max(1));
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12.6} ms/iter ({} iters){}",
            self.name,
            id.to_string(),
            mean * 1e3,
            b.passes,
            rate
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 3,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name)
            .bench_function(BenchmarkId::from_parameter("bench"), f);
        self
    }
}

/// Declares a benchmark group function, mirroring the real macro's
/// simple form `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that invokes each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("add", 1), &21u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        g.finish();
        assert_eq!(ran, 2);
    }

    #[test]
    fn bench_function_standalone() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("standalone", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
