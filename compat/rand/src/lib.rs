//! Offline shim for the subset of [rand](https://docs.rs/rand) used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The generator is splitmix64 — deterministic, well distributed, and more
//! than adequate for synthetic test scenes and property-test inputs. It is
//! **not** the real `StdRng` stream (ChaCha12); all in-repo uses are
//! seed-reproducibility and engine-vs-engine comparisons, which are
//! independent of the concrete stream.

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value using the supplied word source.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // Uniform over the type's full upper range from `start`.
                let lo = self.start as u128;
                let span = (<$t>::MAX as u128) - lo + 1;
                (lo + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(5u32..15);
            assert_eq!(x, b.gen_range(5u32..15));
            assert!((5..15).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u8> = (0..8).map(|_| a.gen_range(0u8..=255)).collect();
        let ys: Vec<u8> = (0..8).map(|_| c.gen_range(0u8..=255)).collect();
        assert_ne!(xs, ys, "different seeds should diverge");
    }

    #[test]
    fn float_and_from_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let _ = r.gen_range(10usize..);
        }
    }
}
