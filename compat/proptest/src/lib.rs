//! Offline shim for the subset of [proptest](https://docs.rs/proptest)
//! used by this workspace.
//!
//! Provides a deterministic, seed-stable property-testing harness:
//!
//! * [`Strategy`] — value generators with `prop_map` and `boxed`;
//! * range strategies for integers and `f64`, tuple strategies, [`Just`],
//!   [`collection::vec`], [`bool::ANY`], and [`any`];
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assert_ne!`] macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from the real crate: no shrinking (failures report the case
//! number and seed; re-running is deterministic), and the byte streams
//! differ, so regressions found by the real crate may surface at different
//! case indices here.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property runs (the shim ignores every other
    /// knob of the real `ProptestConfig`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 word source driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; retries until `f` accepts (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
            self.generate(rng)
        }))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence)
    }
}

/// A type-erased strategy (used by [`prop_oneof!`]).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy backed by a plain closure (used by [`prop_compose!`]).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics when empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Self(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u128;
                let span = (<$t>::MAX as u128) - lo + 1;
                (lo + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_signed_range_strategies!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: exact or half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy generating arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true`/`false` uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical "arbitrary" strategy (subset of the real
/// `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draws an arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The full-range strategy for `T` (`any::<u8>()`, ...).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Stable 64-bit FNV-1a hash of a string, used to derive per-test seeds.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a condition inside a [`proptest!`] body, reporting failure
/// without unwinding the whole harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(format!(
                "assert_eq failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                lhs,
                rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(format!(
                "assert_eq failed at {}:{}: {:?} != {:?}: {}",
                file!(),
                line!(),
                lhs,
                rhs,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::std::result::Result::Err(format!(
                "assert_ne failed at {}:{}: both {:?}",
                file!(),
                line!(),
                lhs
            ));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines a named composite strategy. Supports the one- and two-stage
/// forms used in this workspace (empty outer parameter list).
#[macro_export]
macro_rules! prop_compose {
    // Two-stage: second-stage strategies may reference first-stage values.
    (fn $name:ident()($($p1:pat in $s1:expr),+ $(,)?)($($p2:pat in $s2:expr),+ $(,)?) -> $ret:ty $body:block) => {
        fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $p1 = $crate::Strategy::generate(&($s1), rng);)+
                $(let $p2 = $crate::Strategy::generate(&($s2), rng);)+
                $body
            })
        }
    };
    // One-stage.
    (fn $name:ident()($($p:pat in $s:expr),+ $(,)?) -> $ret:ty $body:block) => {
        fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $p = $crate::Strategy::generate(&($s), rng);)+
                $body
            })
        }
    };
}

/// Declares property tests. Each function body runs `config.cases` times
/// with fresh deterministic inputs; `prop_assert*` failures report the
/// case index and values' formatting without shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_impl!(($cfg); $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)+);
    };
}

/// Implementation detail of [`proptest!`]; the config expression arrives at
/// repetition depth 0 so it can be reused inside every generated test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::seed_of(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), String> = (|| {
                        $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )+
    };
}

/// Everything a test file typically imports.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
    /// Qualified access mirror (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(
            n in 1usize..10,
        )(
            v in crate::collection::vec(0u8..=255, n),
            n in Just(n),
        ) -> (usize, Vec<u8>) {
            (n, v)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0u8..=4, b in crate::bool::ANY) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            let _ = b;
        }

        #[test]
        fn composed_sizes_agree((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_and_map(o in prop_oneof![Just(None), (1u8..6).prop_map(Some)]) {
            if let Some(x) = o {
                prop_assert!((1..6).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let s = crate::collection::vec(0u32..100, 0..10);
        let a: Vec<Vec<u32>> = {
            let mut r = TestRng::new(42);
            (0..5).map(|_| s.generate(&mut r)).collect()
        };
        let b: Vec<Vec<u32>> = {
            let mut r = TestRng::new(42);
            (0..5).map(|_| s.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
