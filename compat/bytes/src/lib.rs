//! Offline shim for the subset of [bytes](https://docs.rs/bytes) used by
//! this workspace: cheaply clonable immutable `Bytes`, growable `BytesMut`,
//! and the `Buf`/`BufMut` cursor traits for little-endian u32/u64 payloads.

use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer with a read cursor.
///
/// Equality, length, and `Deref` all refer to the *remaining* bytes (the
/// portion after the cursor), matching the real crate's view semantics.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
            pos: 0,
        }
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

/// Read-cursor operations over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads and consumes `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// `true` when bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize) {
        let _ = self.take_bytes(n);
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_le_bytes(b.try_into().expect("get_u32_le: short buffer"))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.take_bytes(8);
        u64::from_le_bytes(b.try_into().expect("get_u64_le: short buffer"))
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: {} > {}", n, self.len());
        let start = self.pos;
        self.pos += n;
        &self.data[start..start + n]
    }
}

/// Write operations over a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_u64() {
        let mut m = BytesMut::with_capacity(12);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut b = m.freeze();
        assert_eq!(b.len(), 12);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(!b.has_remaining());
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![1, 2, 3, 4, 5]);
        a.advance(2);
        let b = Bytes::from(vec![3, 4, 5]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[3, 4, 5]);
    }

    #[test]
    fn from_static_and_clone() {
        let a = Bytes::from_static(&[9, 9]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![9, 9]);
        assert!(Bytes::new().is_empty());
    }
}
