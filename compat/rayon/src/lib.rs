//! Sequential shim for the subset of [rayon](https://docs.rs/rayon) used by
//! this workspace.
//!
//! The build container has no crates.io access, so the real rayon cannot be
//! resolved. This crate re-implements the *API shape* the workspace relies
//! on — `par_iter`, `par_chunks_mut`, `into_par_iter`, `par_sort_unstable`,
//! `flat_map_iter`, rayon-style `fold`/`reduce`, `scope`, and
//! `ThreadPoolBuilder` — with strictly sequential execution. Every engine
//! in the workspace is written to be order-independent, so the sequential
//! fallback produces bit-identical results; only wall-clock parallel
//! speedups are lost.

use std::marker::PhantomData;

/// A "parallel" iterator: a thin wrapper over a sequential [`Iterator`]
/// exposing the rayon adapter names used in this workspace.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item (rayon: `ParallelIterator::map`).
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Filter + map in one pass.
    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Flattens a sequential iterator produced per item (rayon:
    /// `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.flat_map(f))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Consumes the iterator, applying `f` to each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon-style fold: `identity` builds per-split accumulators (here:
    /// exactly one), `f` folds items into them. Returns an iterator over
    /// the partial accumulations, as rayon does.
    pub fn fold<B, MkB, F>(self, identity: MkB, f: F) -> ParIter<std::iter::Once<B>>
    where
        MkB: Fn() -> B,
        F: FnMut(B, I::Item) -> B,
    {
        ParIter(std::iter::once(self.0.fold(identity(), f)))
    }

    /// rayon-style reduce: folds all items starting from `identity()`.
    pub fn reduce<MkB, F>(self, identity: MkB, f: F) -> I::Item
    where
        MkB: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), f)
    }

    /// Collects into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sum of all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// No-op chunking hint (rayon: `IndexedParallelIterator::with_min_len`).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// `into_par_iter()` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Converts into a "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}
impl<T: IntoIterator> IntoParallelIterator for T {}

/// Shared-slice adapters (rayon: `ParallelSlice` + `IntoParallelRefIterator`).
pub trait ParallelSlice<T> {
    /// `iter()` as a "parallel" iterator.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// `chunks(size)` as a "parallel" iterator.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// Mutable-slice adapters (rayon: `ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// `chunks_mut(size)` as a "parallel" iterator.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Unstable sort (sequential here).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by key (sequential here).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f)
    }
}

/// The scoped-task handle. `spawn` runs the task immediately (sequential
/// execution preserves the fork-join semantics the callers rely on).
pub struct Scope<'scope>(PhantomData<&'scope ()>);

impl<'scope> Scope<'scope> {
    /// Runs `f` immediately.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        f(self)
    }
}

/// Creates a task scope; tasks spawned inside run immediately.
pub fn scope<'scope, R, F>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope(PhantomData))
}

/// Runs two closures (sequentially) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (shim)")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a (fictional) thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    _threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        Self::default()
    }
    /// Accepted and ignored: execution is sequential.
    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }
    /// Always succeeds.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

/// A (fictional) thread pool: `install` simply runs the closure.
#[derive(Debug)]
pub struct ThreadPool;

impl ThreadPool {
    /// Runs `f` on the "pool" (the current thread).
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        f()
    }
}

/// The rayon prelude: the traits that make `par_*` methods visible.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_match_sequential() {
        let v = [3u32, 1, 2];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let mut s = vec![3u32, 1, 2];
        s.par_sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);

        let folded: Vec<u32> = (0..10usize)
            .into_par_iter()
            .fold(Vec::new, |mut acc, x| {
                acc.push(x as u32);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(folded.len(), 10);
    }

    #[test]
    fn chunks_and_scope() {
        let mut buf = vec![0u8; 8];
        buf.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
            for b in c {
                *b = i as u8;
            }
        });
        assert_eq!(buf, vec![0, 0, 0, 0, 1, 1, 1, 1]);

        let mut hits = 0;
        super::scope(|s| {
            s.spawn(|_| {});
            hits += 1;
        });
        assert_eq!(hits, 1);

        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 42), 42);
    }
}
