//! Portable grey-map (PGM) encoding and decoding.
//!
//! Supports the two standard flavours:
//!
//! * `P2` — ASCII, human-readable, handy for fixtures and debugging;
//! * `P5` — binary, compact, 1 byte/pixel for maxval ≤ 255 and
//!   2 big-endian bytes/pixel for larger maxvals (per the Netpbm spec).
//!
//! The decoder accepts `#` comments anywhere whitespace is allowed in the
//! header, as the spec requires.

use crate::image::{Image, Intensity};
use std::fmt;
use std::io::{self, BufRead, Read, Write};
use std::path::Path;

/// Errors produced by the PGM codec.
#[derive(Debug)]
pub enum PgmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a syntactically valid PGM stream.
    Malformed(String),
    /// The image's intensity range does not fit the requested encoding.
    Range(String),
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::Io(e) => write!(f, "pgm io error: {e}"),
            PgmError::Malformed(m) => write!(f, "malformed pgm: {m}"),
            PgmError::Range(m) => write!(f, "pgm range error: {m}"),
        }
    }
}

impl std::error::Error for PgmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PgmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PgmError {
    fn from(e: io::Error) -> Self {
        PgmError::Io(e)
    }
}

/// Which on-disk flavour to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// ASCII (`P2`).
    Ascii,
    /// Binary (`P5`).
    Binary,
}

/// Writes `img` in the requested flavour with the given `maxval`.
///
/// `maxval` must be at least the image's maximum intensity and at most
/// 65535; pass `None` to use the intensity type's full range.
pub fn write<P: Intensity, W: Write>(
    img: &Image<P>,
    maxval: Option<u32>,
    flavor: Flavor,
    mut w: W,
) -> Result<(), PgmError> {
    let (_, hi) = img.min_max();
    let maxval = maxval.unwrap_or_else(|| P::MAX_VALUE.to_u32().min(65_535));
    if maxval == 0 || maxval > 65_535 {
        return Err(PgmError::Range(format!(
            "maxval {maxval} out of [1, 65535]"
        )));
    }
    if hi.to_u32() > maxval {
        return Err(PgmError::Range(format!(
            "image max {} exceeds maxval {maxval}",
            hi.to_u32()
        )));
    }
    match flavor {
        Flavor::Ascii => {
            writeln!(w, "P2")?;
            writeln!(w, "# region-growing reproduction output")?;
            writeln!(w, "{} {}", img.width(), img.height())?;
            writeln!(w, "{maxval}")?;
            for y in 0..img.height() {
                let mut line = String::with_capacity(img.width() * 4);
                for (i, p) in img.row(y).iter().enumerate() {
                    if i > 0 {
                        line.push(' ');
                    }
                    line.push_str(&p.to_u32().to_string());
                }
                writeln!(w, "{line}")?;
            }
        }
        Flavor::Binary => {
            write!(w, "P5\n{} {}\n{}\n", img.width(), img.height(), maxval)?;
            if maxval <= 255 {
                let mut buf = Vec::with_capacity(img.len());
                buf.extend(img.pixels().iter().map(|p| p.to_u32() as u8));
                w.write_all(&buf)?;
            } else {
                let mut buf = Vec::with_capacity(img.len() * 2);
                for p in img.pixels() {
                    let v = p.to_u32() as u16;
                    buf.extend_from_slice(&v.to_be_bytes());
                }
                w.write_all(&buf)?;
            }
        }
    }
    Ok(())
}

/// Writes `img` to `path` (binary flavour, full-range maxval).
pub fn save<P: Intensity>(img: &Image<P>, path: impl AsRef<Path>) -> Result<(), PgmError> {
    let f = std::fs::File::create(path)?;
    write(img, None, Flavor::Binary, io::BufWriter::new(f))
}

/// Token scanner for PGM headers: skips whitespace and `#` comments.
struct HeaderScanner<R: Read> {
    inner: io::Bytes<R>,
    /// One byte of lookahead already consumed from `inner`.
    peeked: Option<u8>,
}

impl<R: Read> HeaderScanner<R> {
    // The scanner is always constructed over a BufRead (see `read`), so
    // byte-at-a-time iteration stays in the caller's buffer.
    #[allow(clippy::unbuffered_bytes)]
    fn new(r: R) -> Self {
        Self {
            inner: r.bytes(),
            peeked: None,
        }
    }

    fn next_byte(&mut self) -> Result<Option<u8>, PgmError> {
        if let Some(b) = self.peeked.take() {
            return Ok(Some(b));
        }
        match self.inner.next() {
            None => Ok(None),
            Some(Ok(b)) => Ok(Some(b)),
            Some(Err(e)) => Err(PgmError::Io(e)),
        }
    }

    /// Reads the next whitespace-delimited token, skipping comments.
    fn token(&mut self) -> Result<String, PgmError> {
        let mut tok = String::new();
        loop {
            match self.next_byte()? {
                None => {
                    if tok.is_empty() {
                        return Err(PgmError::Malformed("unexpected end of header".into()));
                    }
                    return Ok(tok);
                }
                Some(b'#') if tok.is_empty() => {
                    // Comment runs to end of line.
                    loop {
                        match self.next_byte()? {
                            None | Some(b'\n') => break,
                            Some(_) => {}
                        }
                    }
                }
                Some(b) if b.is_ascii_whitespace() => {
                    if !tok.is_empty() {
                        return Ok(tok);
                    }
                }
                Some(b) => tok.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<u32, PgmError> {
        let tok = self.token()?;
        tok.parse::<u32>()
            .map_err(|_| PgmError::Malformed(format!("expected number, found {tok:?}")))
    }
}

/// Reads a PGM stream (either flavour) into an image.
///
/// Intensities wider than `P` are rejected with [`PgmError::Range`].
pub fn read<P: Intensity, R: BufRead>(mut r: R) -> Result<Image<P>, PgmError> {
    let mut scanner = HeaderScanner::new(&mut r);
    let magic = scanner.token()?;
    let binary = match magic.as_str() {
        "P2" => false,
        "P5" => true,
        other => {
            return Err(PgmError::Malformed(format!(
                "unsupported magic {other:?} (want P2 or P5)"
            )))
        }
    };
    let width = scanner.number()? as usize;
    let height = scanner.number()? as usize;
    let maxval = scanner.number()?;
    if width == 0 || height == 0 {
        return Err(PgmError::Malformed("zero dimension".into()));
    }
    if maxval == 0 || maxval > 65_535 {
        return Err(PgmError::Malformed(format!("bad maxval {maxval}")));
    }
    if maxval > P::MAX_VALUE.to_u32() {
        return Err(PgmError::Range(format!(
            "maxval {maxval} exceeds pixel type capacity {}",
            P::MAX_VALUE.to_u32()
        )));
    }
    let n = width * height;
    let mut data = Vec::with_capacity(n);
    if binary {
        // Per the spec exactly one whitespace byte follows maxval; the
        // scanner has already consumed it as the token delimiter.
        if maxval <= 255 {
            let mut buf = vec![0u8; n];
            r.read_exact(&mut buf)?;
            data.extend(buf.into_iter().map(|b| P::from_u32_saturating(b as u32)));
        } else {
            let mut buf = vec![0u8; n * 2];
            r.read_exact(&mut buf)?;
            data.extend(
                buf.chunks_exact(2)
                    .map(|c| P::from_u32_saturating(u16::from_be_bytes([c[0], c[1]]) as u32)),
            );
        }
    } else {
        for _ in 0..n {
            let v = scanner.number()?;
            if v > maxval {
                return Err(PgmError::Malformed(format!(
                    "sample {v} exceeds maxval {maxval}"
                )));
            }
            data.push(P::from_u32_saturating(v));
        }
    }
    Ok(Image::from_vec(width, height, data))
}

/// Reads a PGM file from `path`.
pub fn load<P: Intensity>(path: impl AsRef<Path>) -> Result<Image<P>, PgmError> {
    let f = std::fs::File::open(path)?;
    read(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image<u8> {
        Image::from_fn(5, 3, |x, y| (x * 10 + y) as u8)
    }

    #[test]
    fn ascii_roundtrip() {
        let img = sample();
        let mut buf = Vec::new();
        write(&img, Some(255), Flavor::Ascii, &mut buf).unwrap();
        let back: Image<u8> = read(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn binary_roundtrip_u8() {
        let img = sample();
        let mut buf = Vec::new();
        write(&img, Some(255), Flavor::Binary, &mut buf).unwrap();
        let back: Image<u8> = read(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn binary_roundtrip_u16_wide() {
        let img: Image<u16> = Image::from_fn(3, 3, |x, y| (x * 1000 + y * 7) as u16);
        let mut buf = Vec::new();
        write(&img, Some(65_535), Flavor::Binary, &mut buf).unwrap();
        let back: Image<u16> = read(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn comments_are_skipped() {
        let text = b"P2 # magic\n# a comment line\n 3 # width\n1\n255\n1 2 3\n";
        let img: Image<u8> = read(&text[..]).unwrap();
        assert_eq!(img.pixels(), &[1, 2, 3]);
    }

    #[test]
    fn rejects_bad_magic() {
        let text = b"P6\n1 1\n255\n\x00";
        assert!(matches!(
            read::<u8, _>(&text[..]),
            Err(PgmError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_sample_above_maxval() {
        let text = b"P2\n2 1\n10\n5 11\n";
        assert!(matches!(
            read::<u8, _>(&text[..]),
            Err(PgmError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_maxval_too_wide_for_type() {
        let text = b"P2\n1 1\n300\n5\n";
        assert!(matches!(read::<u8, _>(&text[..]), Err(PgmError::Range(_))));
    }

    #[test]
    fn rejects_truncated_binary() {
        let mut buf = b"P5\n4 4\n255\n".to_vec();
        buf.extend_from_slice(&[1, 2, 3]); // 13 bytes short
        assert!(matches!(read::<u8, _>(&buf[..]), Err(PgmError::Io(_))));
    }

    #[test]
    fn write_rejects_out_of_range() {
        let img: Image<u16> = Image::from_vec(1, 1, vec![300]);
        let mut buf = Vec::new();
        assert!(matches!(
            write(&img, Some(255), Flavor::Binary, &mut buf),
            Err(PgmError::Range(_))
        ));
    }

    #[test]
    fn save_and_load_tempfile() {
        let img = sample();
        let dir = std::env::temp_dir().join("rg_imaging_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pgm");
        save(&img, &path).unwrap();
        let back: Image<u8> = load(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(path).ok();
    }
}
