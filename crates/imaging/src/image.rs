//! Dense row-major 2-D rasters.
//!
//! [`Image`] is deliberately simple: a `Vec` of intensities plus a width and
//! height. The region-growing crates index it heavily in hot loops, so the
//! accessors are `#[inline]` and there is an unchecked-free fast path via
//! [`Image::row`].

use std::fmt;
use std::ops::{Index, IndexMut};

/// An integer grey-level intensity.
///
/// The paper's *pixel range* homogeneity criterion only needs ordering and a
/// widening conversion so that `max - min` can be computed without overflow;
/// this trait captures exactly that. It is implemented for `u8`, `u16` and
/// `u32`.
pub trait Intensity:
    Copy + Ord + Eq + Send + Sync + fmt::Debug + fmt::Display + Default + 'static
{
    /// Widen to `u32` for range arithmetic.
    fn to_u32(self) -> u32;
    /// Narrow from `u32`, saturating at the type's maximum.
    fn from_u32_saturating(v: u32) -> Self;
    /// The maximum representable intensity (white).
    const MAX_VALUE: Self;
    /// The minimum representable intensity (black).
    const MIN_VALUE: Self;
}

macro_rules! impl_intensity {
    ($($t:ty),*) => {$(
        impl Intensity for $t {
            #[inline]
            fn to_u32(self) -> u32 { self as u32 }
            #[inline]
            fn from_u32_saturating(v: u32) -> Self {
                if v > <$t>::MAX as u32 { <$t>::MAX } else { v as $t }
            }
            const MAX_VALUE: Self = <$t>::MAX;
            const MIN_VALUE: Self = <$t>::MIN;
        }
    )*};
}

impl_intensity!(u8, u16, u32);

/// A dense, row-major grey-scale raster.
///
/// Pixel `(x, y)` lives at `data[y * width + x]`; `x` grows rightwards and
/// `y` grows downwards, matching PGM and the paper's figures.
#[derive(Clone, PartialEq, Eq)]
pub struct Image<P: Intensity> {
    width: usize,
    height: usize,
    data: Vec<P>,
}

impl<P: Intensity> Image<P> {
    /// Creates an image filled with `fill`.
    ///
    /// # Panics
    /// Panics if `width * height` overflows or either dimension is zero.
    pub fn new(width: usize, height: usize, fill: P) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let len = width
            .checked_mul(height)
            .expect("image dimensions overflow");
        Self {
            width,
            height,
            data: vec![fill; len],
        }
    }

    /// Builds an image from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height` or either dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<P>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert_eq!(
            data.len(),
            width * height,
            "buffer length {} does not match {}x{}",
            data.len(),
            width,
            height
        );
        Self {
            width,
            height,
            data,
        }
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> P) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the image holds no pixels (never true for a constructed
    /// image, but required by clippy's `len_without_is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Intensity at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> P {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Checked accessor; `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: usize, y: usize) -> Option<P> {
        if x < self.width && y < self.height {
            Some(self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Sets the intensity at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: P) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Row `y` as a slice (fast path for scanline algorithms).
    #[inline]
    pub fn row(&self, y: usize) -> &[P] {
        let start = y * self.width;
        &self.data[start..start + self.width]
    }

    /// Row `y` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [P] {
        let start = y * self.width;
        &mut self.data[start..start + self.width]
    }

    /// The raw row-major pixel buffer.
    #[inline]
    pub fn pixels(&self) -> &[P] {
        &self.data
    }

    /// Mutable raw pixel buffer.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [P] {
        &mut self.data
    }

    /// Consumes the image, returning the raw buffer.
    pub fn into_vec(self) -> Vec<P> {
        self.data
    }

    /// Linear index of pixel `(x, y)` in the row-major buffer.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Inverse of [`Image::idx`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.width, idx / self.width)
    }

    /// Minimum and maximum intensity over the whole image.
    pub fn min_max(&self) -> (P, P) {
        let mut lo = self.data[0];
        let mut hi = self.data[0];
        for &p in &self.data[1..] {
            if p < lo {
                lo = p;
            }
            if p > hi {
                hi = p;
            }
        }
        (lo, hi)
    }

    /// Extracts the `w × h` sub-image whose top-left corner is `(x0, y0)`.
    ///
    /// Used by the message-passing implementation to scatter the image onto
    /// the node grid (step 0 of the paper's message-passing algorithm).
    ///
    /// # Panics
    /// Panics if the window exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Self {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop window out of bounds"
        );
        let mut data = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            data.extend_from_slice(&self.row(y)[x0..x0 + w]);
        }
        Self {
            width: w,
            height: h,
            data,
        }
    }

    /// [`Image::crop`] into a recyclable image: refills `out`'s pixel
    /// buffer in place (no allocation once `out` has reached the window's
    /// high-water capacity) and resets its dimensions to `w × h`.
    ///
    /// # Panics
    /// Panics if the window exceeds the image bounds or either dimension
    /// is zero.
    pub fn crop_into(&self, x0: usize, y0: usize, w: usize, h: usize, out: &mut Self) {
        assert!(w > 0 && h > 0, "image dimensions must be nonzero");
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop window out of bounds"
        );
        out.data.clear();
        out.data.reserve(w * h);
        for y in y0..y0 + h {
            out.data.extend_from_slice(&self.row(y)[x0..x0 + w]);
        }
        out.width = w;
        out.height = h;
    }

    /// Maps every pixel through `f`, producing an image of a possibly
    /// different intensity type.
    pub fn map<Q: Intensity>(&self, mut f: impl FnMut(P) -> Q) -> Image<Q> {
        Image {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&p| f(p)).collect(),
        }
    }

    /// Iterates `(x, y, intensity)` in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, P)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &p)| (i % w, i / w, p))
    }
}

impl<P: Intensity> Index<(usize, usize)> for Image<P> {
    type Output = P;
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &P {
        &self.data[y * self.width + x]
    }
}

impl<P: Intensity> IndexMut<(usize, usize)> for Image<P> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut P {
        &mut self.data[y * self.width + x]
    }
}

impl<P: Intensity> fmt::Debug for Image<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Image {}x{} [", self.width, self.height)?;
        let show_rows = self.height.min(16);
        for y in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.width.min(16);
            for x in 0..show_cols {
                write!(f, "{:>4}", self.get(x, y))?;
            }
            if self.width > show_cols {
                write!(f, " ...")?;
            }
            writeln!(f)?;
        }
        if self.height > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills() {
        let img: Image<u8> = Image::new(4, 3, 7);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.len(), 12);
        assert!(img.pixels().iter().all(|&p| p == 7));
    }

    #[test]
    fn from_fn_row_major() {
        let img: Image<u16> = Image::from_fn(3, 2, |x, y| (10 * y + x) as u16);
        assert_eq!(img.pixels(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(img.get(2, 1), 12);
        assert_eq!(img[(1, 0)], 1);
    }

    #[test]
    fn idx_coords_roundtrip() {
        let img: Image<u8> = Image::new(7, 5, 0);
        for y in 0..5 {
            for x in 0..7 {
                let i = img.idx(x, y);
                assert_eq!(img.coords(i), (x, y));
            }
        }
    }

    #[test]
    fn try_get_bounds() {
        let img: Image<u8> = Image::new(2, 2, 1);
        assert_eq!(img.try_get(1, 1), Some(1));
        assert_eq!(img.try_get(2, 0), None);
        assert_eq!(img.try_get(0, 2), None);
    }

    #[test]
    fn crop_extracts_window() {
        let img: Image<u8> = Image::from_fn(4, 4, |x, y| (y * 4 + x) as u8);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.pixels(), &[9, 10, 13, 14]);
    }

    #[test]
    fn crop_into_matches_crop_and_reuses_buffer() {
        let img: Image<u8> = Image::from_fn(6, 5, |x, y| (y * 6 + x) as u8);
        let mut out: Image<u8> = Image::new(1, 1, 0);
        img.crop_into(1, 2, 3, 2, &mut out);
        assert_eq!(out, img.crop(1, 2, 3, 2));
        let cap = out.data.capacity();
        // A smaller window refills in place without reallocating.
        img.crop_into(0, 0, 2, 2, &mut out);
        assert_eq!(out, img.crop(0, 0, 2, 2));
        assert_eq!(out.data.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_oob_panics() {
        let img: Image<u8> = Image::new(4, 4, 0);
        let _ = img.crop(3, 3, 2, 2);
    }

    #[test]
    fn min_max_scans_all() {
        let img: Image<u8> = Image::from_vec(2, 2, vec![9, 3, 250, 17]);
        assert_eq!(img.min_max(), (3, 250));
    }

    #[test]
    fn rows_and_mutation() {
        let mut img: Image<u8> = Image::new(3, 2, 0);
        img.row_mut(1).copy_from_slice(&[4, 5, 6]);
        assert_eq!(img.row(1), &[4, 5, 6]);
        img.set(0, 0, 9);
        assert_eq!(img.get(0, 0), 9);
        img[(1, 0)] = 8;
        assert_eq!(img[(1, 0)], 8);
    }

    #[test]
    fn map_changes_type() {
        let img: Image<u8> = Image::from_vec(2, 1, vec![200, 100]);
        let wide: Image<u16> = img.map(|p| p as u16 * 2);
        assert_eq!(wide.pixels(), &[400, 200]);
    }

    #[test]
    fn intensity_saturating() {
        assert_eq!(u8::from_u32_saturating(300), 255);
        assert_eq!(u8::from_u32_saturating(30), 30);
        assert_eq!(u16::from_u32_saturating(70_000), u16::MAX);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        let _: Image<u8> = Image::new(0, 3, 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_len_mismatch() {
        let _: Image<u8> = Image::from_vec(2, 2, vec![1, 2, 3]);
    }
}
