//! Synthetic workload generators.
//!
//! The paper evaluates on six images whose rasters were never published; the
//! compositions, however, are described precisely enough to re-draw them:
//!
//! | Paper image | Size | Composition | Final regions |
//! |---|---|---|---|
//! | Image 1 | 128² | two nested rectangular regions | 2 |
//! | Image 2 | 128² | a collection of rectangles | 7 |
//! | Image 3 | 128² | a collection of circles | 11 |
//! | Image 4 | 256² | two nested rectangular regions | 2 |
//! | Image 5 | 256² | a collection of rectangles | 7 |
//! | Image 6 | 256² | a "tool" | 4 |
//!
//! The generators here reproduce those compositions with inter-region
//! contrast far above the default threshold, so the *final region counts*
//! match the paper exactly by construction. The split-square counts depend
//! on the unpublished geometry and are matched in order of magnitude only
//! (see EXPERIMENTS.md).
//!
//! All object placements are deliberately *misaligned* with respect to
//! power-of-two block boundaries, like any natural scene.

use crate::draw::{fill_circle, fill_convex_poly, fill_rect, Rect};
use crate::image::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Background grey level shared by all paper-image generators.
pub const BACKGROUND: u8 = 60;

/// Default homogeneity threshold used by the paper-table experiments. Any
/// value below the minimum inter-region contrast (40 grey levels) yields the
/// same segmentation; the paper used T=3 for its 4×4 worked example.
pub const DEFAULT_THRESHOLD: u32 = 10;

/// Identifies one of the six evaluation images of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperImage {
    /// 128² two nested rectangular regions.
    Image1,
    /// 128² collection of rectangles.
    Image2,
    /// 128² collection of circles.
    Image3,
    /// 256² two nested rectangular regions.
    Image4,
    /// 256² collection of rectangles.
    Image5,
    /// 256² "tool".
    Image6,
}

impl PaperImage {
    /// All six, in paper order.
    pub const ALL: [PaperImage; 6] = [
        PaperImage::Image1,
        PaperImage::Image2,
        PaperImage::Image3,
        PaperImage::Image4,
        PaperImage::Image5,
        PaperImage::Image6,
    ];

    /// Generates the image.
    pub fn generate(self) -> Image<u8> {
        match self {
            PaperImage::Image1 => nested_rects(128),
            PaperImage::Image2 => rect_collection(128),
            PaperImage::Image3 => circle_collection(128),
            PaperImage::Image4 => nested_rects(256),
            PaperImage::Image5 => rect_collection(256),
            PaperImage::Image6 => tool(256),
        }
    }

    /// Image side length in pixels.
    pub fn size(self) -> usize {
        match self {
            PaperImage::Image1 | PaperImage::Image2 | PaperImage::Image3 => 128,
            _ => 256,
        }
    }

    /// The number of regions the paper reports at the end of the merge
    /// stage; our generators are constructed so the reproduction matches
    /// these exactly.
    pub fn expected_final_regions(self) -> usize {
        match self {
            PaperImage::Image1 | PaperImage::Image4 => 2,
            PaperImage::Image2 | PaperImage::Image5 => 7,
            PaperImage::Image3 => 11,
            PaperImage::Image6 => 4,
        }
    }

    /// The number of square regions the paper reports at the end of the
    /// split stage (for the published rasters; ours differ in geometry).
    pub fn paper_split_squares(self) -> usize {
        match self {
            PaperImage::Image1 => 436,
            PaperImage::Image2 => 193,
            PaperImage::Image3 => 1732,
            PaperImage::Image4 => 823,
            PaperImage::Image5 => 298,
            PaperImage::Image6 => 2248,
        }
    }

    /// Human-readable description, matching the paper's captions.
    pub fn description(self) -> &'static str {
        match self {
            PaperImage::Image1 => "128x128 image composed of two nested rectangular regions",
            PaperImage::Image2 => "128x128 image composed of a collection of rectangles",
            PaperImage::Image3 => "128x128 image composed of a collection of circles",
            PaperImage::Image4 => "256x256 image composed of two nested rectangular regions",
            PaperImage::Image5 => "256x256 image composed of a collection of rectangles",
            PaperImage::Image6 => "256x256 image of a \"tool\"",
        }
    }
}

/// The exact 4×4 image of the paper's Figures 1 and 2 (threshold T = 3).
///
/// ```text
/// 6 7 1 3
/// 8 6 5 4
/// 8 8 6 5
/// 8 7 6 6
/// ```
pub fn figure1_image() -> Image<u8> {
    Image::from_vec(4, 4, vec![6, 7, 1, 3, 8, 6, 5, 4, 8, 8, 6, 5, 8, 7, 6, 6])
}

/// "Two nested rectangular regions": the image is the outer region, with a
/// large misaligned inner rectangle of contrasting intensity → 2 regions.
pub fn nested_rects(n: usize) -> Image<u8> {
    let mut img = Image::new(n, n, BACKGROUND);
    // Inner rectangle covers roughly the central 55% of the frame. Its
    // edges sit on 8-pixel multiples (not 32-multiples), so mid-size
    // squares survive along the boundary but nothing larger than the
    // paper's observed 16-pixel squares forms across it.
    let x0 = n / 4 + 2;
    let y0 = n / 4 + 6;
    let w = n * 9 / 16 + 2;
    let h = n / 2 + 6;
    fill_rect(&mut img, Rect::new(x0, y0, w, h), 160);
    img
}

/// "A collection of rectangles": six disjoint rectangles of distinct
/// intensities on the background → 7 regions.
pub fn rect_collection(n: usize) -> Image<u8> {
    let mut img = Image::new(n, n, BACKGROUND);
    let s = n as f64 / 128.0; // scale relative to the 128² original
    let px = |v: f64| (v * s) as usize;
    // Placement is aligned to 8-pixel multiples (as a digitised blocky
    // scene would be), keeping the split-square count in the paper's
    // range; rectangles are pairwise separated by at least 8 pixels.
    let rects = [
        (Rect::new(px(8.0), px(8.0), px(32.0), px(24.0)), 120u8),
        (Rect::new(px(52.0), px(8.0), px(44.0), px(16.0)), 140),
        (Rect::new(px(12.0), px(48.0), px(28.0), px(36.0)), 160),
        (Rect::new(px(48.0), px(40.0), px(32.0), px(24.0)), 180),
        (Rect::new(px(92.0), px(52.0), px(28.0), px(44.0)), 200),
        (Rect::new(px(24.0), px(96.0), px(56.0), px(24.0)), 220),
    ];
    for (r, v) in rects {
        fill_rect(&mut img, r, v);
    }
    img
}

/// "A collection of circles": ten disjoint circles of distinct intensities
/// on the background → 11 regions.
pub fn circle_collection(n: usize) -> Image<u8> {
    let mut img = Image::new(n, n, BACKGROUND);
    let s = n as f64 / 128.0;
    let c = |v: f64| (v * s) as i64;
    let circles = [
        (c(19.0), c(17.0), c(11.0), 110u8),
        (c(53.0), c(13.0), c(9.0), 125),
        (c(89.0), c(21.0), c(13.0), 140),
        (c(117.0), c(49.0), c(8.0), 155),
        (c(27.0), c(51.0), c(12.0), 170),
        (c(63.0), c(47.0), c(10.0), 185),
        (c(95.0), c(75.0), c(14.0), 200),
        (c(21.0), c(91.0), c(10.0), 215),
        (c(57.0), c(87.0), c(11.0), 230),
        (c(103.0), c(111.0), c(9.0), 245),
    ];
    for (cx, cy, r, v) in circles {
        fill_circle(&mut img, cx, cy, r, v);
    }
    img
}

/// The "tool" image: a wrench-like object (handle + head), a hole through
/// the head, and a cast shadow → 4 regions (background, shadow, tool, hole).
///
/// The hole has background intensity but is enclosed by the tool body, so it
/// remains a separate connected region — exactly the structure that makes
/// the paper's tool image finish with 4 regions.
pub fn tool(n: usize) -> Image<u8> {
    let mut img = Image::new(n, n, BACKGROUND);
    let s = n as f64 / 256.0;
    let c = |v: f64| (v * s) as i64;

    const SHADOW: u8 = 120;
    const BODY: u8 = 210;

    // Shadow: the *handle* silhouette offset down-right, drawn first so the
    // body partially covers it. The visible remainder of a convex shape
    // minus its own translate is a connected L-shaped band hugging the
    // handle's lower-right side.
    fill_handle(&mut img, s, c(16.0), c(16.0), SHADOW);
    // Tool body: head disc + handle.
    fill_circle(&mut img, c(71.0), c(75.0), c(37.0), BODY);
    fill_handle(&mut img, s, 0, 0, BODY);
    // Hole through the head (background intensity, enclosed by the body).
    fill_circle(&mut img, c(71.0), c(75.0), c(17.0), BACKGROUND);
    img
}

/// Draws the wrench handle — a thick diagonal bar from the head towards the
/// lower-right corner — as a convex quadrilateral with the given offset.
fn fill_handle(img: &mut Image<u8>, s: f64, dx: i64, dy: i64, v: u8) {
    let c = |val: f64| (val * s) as i64;
    let pts = [
        (c(87.0) + dx, c(95.0) + dy),
        (c(111.0) + dx, c(71.0) + dy),
        (c(219.0) + dx, c(179.0) + dy),
        (c(195.0) + dx, c(203.0) + dy),
    ];
    fill_convex_poly(img, &pts, v);
}

/// A checkerboard of `cell × cell` tiles alternating between `a` and `b`.
///
/// With `|a − b| > T` every tile is its own region: the stress case where
/// the merge stage has nothing to do but the split stage tops out at the
/// largest power of two dividing `cell`.
pub fn checkerboard(n: usize, cell: usize, a: u8, b: u8) -> Image<u8> {
    assert!(cell > 0, "cell must be nonzero");
    Image::from_fn(n, n, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            a
        } else {
            b
        }
    })
}

/// Uniform random noise in `[lo, hi]` — the best case for the split stage
/// when `hi − lo ≤ T` (one split iteration possible over the whole image)
/// and the worst case for region structure when `hi − lo ≫ T`.
pub fn uniform_noise(width: usize, height: usize, lo: u8, hi: u8, seed: u64) -> Image<u8> {
    assert!(lo <= hi);
    let mut rng = StdRng::seed_from_u64(seed);
    Image::from_fn(width, height, |_, _| rng.gen_range(lo..=hi))
}

/// A random "mondrian": `count` random axis-aligned rectangles of random
/// intensities painted over a background, later rectangles over earlier
/// ones. Used by property tests — the segmentation invariants must hold for
/// any such scene, including overlapping and clipped shapes.
pub fn random_rects(width: usize, height: usize, count: usize, seed: u64) -> Image<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = Image::new(width, height, BACKGROUND);
    for _ in 0..count {
        let x0 = rng.gen_range(0..width);
        let y0 = rng.gen_range(0..height);
        let w = rng.gen_range(1..=width - x0);
        let h = rng.gen_range(1..=height - y0);
        let v = rng.gen_range(0..=255u32) as u8;
        fill_rect(&mut img, Rect::new(x0, y0, w, h), v);
    }
    img
}

/// A smooth diagonal ramp: intensity grows by one grey level every `step`
/// pixels of (x + y). Adversarial for region growing: any two neighbouring
/// pixels look mergeable but the global range does not, exposing
/// order-dependence (the classic "chaining" pathology).
pub fn gradient(width: usize, height: usize, step: usize) -> Image<u8> {
    assert!(step > 0);
    Image::from_fn(width, height, |x, y| {
        u8::from_u32_saturating_helper(((x + y) / step) as u32)
    })
}

trait SaturatingHelper {
    fn from_u32_saturating_helper(v: u32) -> u8;
}

impl SaturatingHelper for u8 {
    fn from_u32_saturating_helper(v: u32) -> u8 {
        v.min(255) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Counts 4-connected components of exactly-equal intensity — a lower
    /// bound check on scene structure (regions of equal intensity).
    fn flat_components(img: &Image<u8>) -> usize {
        let (w, h) = (img.width(), img.height());
        let mut seen = vec![false; w * h];
        let mut count = 0;
        let mut stack = Vec::new();
        for start in 0..w * h {
            if seen[start] {
                continue;
            }
            count += 1;
            seen[start] = true;
            stack.push(start);
            while let Some(i) = stack.pop() {
                let (x, y) = img.coords(i);
                let v = img.pixels()[i];
                let mut push = |nx: usize, ny: usize| {
                    let j = ny * w + nx;
                    if !seen[j] && img.pixels()[j] == v {
                        seen[j] = true;
                        stack.push(j);
                    }
                };
                if x > 0 {
                    push(x - 1, y);
                }
                if x + 1 < w {
                    push(x + 1, y);
                }
                if y > 0 {
                    push(x, y - 1);
                }
                if y + 1 < h {
                    push(x, y + 1);
                }
            }
        }
        count
    }

    #[test]
    fn figure1_matches_paper() {
        let img = figure1_image();
        assert_eq!(img.get(0, 0), 6);
        assert_eq!(img.get(3, 0), 3);
        assert_eq!(img.get(0, 3), 8);
        assert_eq!(img.get(3, 3), 6);
    }

    #[test]
    fn nested_rects_has_two_flat_regions() {
        for n in [64, 128, 256] {
            let img = nested_rects(n);
            assert_eq!(flat_components(&img), 2, "n={n}");
            let values: HashSet<u8> = img.pixels().iter().copied().collect();
            assert_eq!(values.len(), 2);
        }
    }

    #[test]
    fn rect_collection_has_seven_flat_regions() {
        for n in [128, 256] {
            let img = rect_collection(n);
            assert_eq!(flat_components(&img), 7, "n={n}");
        }
    }

    #[test]
    fn circle_collection_has_eleven_flat_regions() {
        for n in [128, 256] {
            let img = circle_collection(n);
            assert_eq!(flat_components(&img), 11, "n={n}");
        }
    }

    #[test]
    fn tool_has_four_flat_regions() {
        let img = tool(256);
        assert_eq!(flat_components(&img), 4);
        // The hole must not leak into the outer background: check that the
        // pixel at the hole centre and a corner pixel have equal intensity
        // but (per the component count above) different components.
        assert_eq!(img.get(71, 75), BACKGROUND);
        assert_eq!(img.get(0, 0), BACKGROUND);
    }

    #[test]
    fn tool_scales() {
        let img = tool(128);
        assert_eq!(flat_components(&img), 4);
    }

    #[test]
    fn paper_image_metadata_consistent() {
        for pi in PaperImage::ALL {
            let img = pi.generate();
            assert_eq!(img.width(), pi.size());
            assert_eq!(img.height(), pi.size());
            assert_eq!(flat_components(&img), pi.expected_final_regions(), "{pi:?}");
        }
    }

    #[test]
    fn contrast_exceeds_default_threshold() {
        // Every pair of distinct intensities in every paper image must
        // differ by more than the default threshold, so final region counts
        // are threshold-robust.
        for pi in PaperImage::ALL {
            let img = pi.generate();
            let mut values: Vec<u8> = img
                .pixels()
                .iter()
                .copied()
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
            values.sort_unstable();
            for pair in values.windows(2) {
                assert!(
                    (pair[1] - pair[0]) as u32 > DEFAULT_THRESHOLD,
                    "{pi:?}: contrast {} - {} too small",
                    pair[1],
                    pair[0]
                );
            }
        }
    }

    #[test]
    fn checkerboard_structure() {
        let img = checkerboard(8, 2, 0, 255);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(2, 0), 255);
        assert_eq!(img.get(0, 2), 255);
        assert_eq!(img.get(2, 2), 0);
        assert_eq!(flat_components(&img), 16);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let a = uniform_noise(16, 16, 10, 20, 42);
        let b = uniform_noise(16, 16, 10, 20, 42);
        assert_eq!(a, b);
        assert!(a.pixels().iter().all(|&p| (10..=20).contains(&p)));
        let c = uniform_noise(16, 16, 10, 20, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_rects_deterministic() {
        let a = random_rects(32, 32, 5, 7);
        let b = random_rects(32, 32, 5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_monotone() {
        let img = gradient(32, 32, 4);
        assert_eq!(img.get(0, 0), 0);
        assert!(img.get(31, 31) > img.get(0, 0));
        for y in 0..32 {
            for x in 1..32 {
                assert!(img.get(x, y) >= img.get(x - 1, y));
            }
        }
    }
}
