//! Block min/max pyramids and per-label statistics.
//!
//! The split stage of the paper repeatedly asks for the intensity *range*
//! (max − min) of aligned 2ᵏ×2ᵏ blocks. [`MinMaxPyramid`] answers those
//! queries in O(1) after an O(n) bottom-up pass — exactly the computation the
//! CM implementations perform with strided grid communication.

use crate::image::{Image, Intensity};

/// Per-level block minima/maxima over the enclosing power-of-two square.
///
/// Level `k` partitions the (conceptually padded) image into aligned
/// `2ᵏ × 2ᵏ` blocks; entry `(bx, by)` of level `k` stores the min and max
/// intensity over the *intersection* of block `(bx, by)` with the real image.
/// Blocks entirely outside the image are marked empty.
#[derive(Debug, Clone)]
pub struct MinMaxPyramid<P: Intensity> {
    /// `levels[k]` has `blocks_per_side(k)²` entries, row-major.
    levels: Vec<Vec<BlockStat<P>>>,
    /// Side of the enclosing power-of-two square.
    side: usize,
    width: usize,
    height: usize,
}

/// Min/max of one block; `None` for blocks with no pixels inside the image.
pub type BlockStat<P> = Option<(P, P)>;

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

impl<P: Intensity> MinMaxPyramid<P> {
    /// Builds the full pyramid for `img`.
    pub fn build(img: &Image<P>) -> Self {
        let side = next_pow2(img.width().max(img.height()));
        let num_levels = side.trailing_zeros() as usize + 1;
        let mut levels = Vec::with_capacity(num_levels);

        // Level 0: one entry per padded-cell; real pixels carry their value.
        let mut base = vec![None; side * side];
        for y in 0..img.height() {
            let row = img.row(y);
            for (x, &p) in row.iter().enumerate() {
                base[y * side + x] = Some((p, p));
            }
        }
        levels.push(base);

        // Higher levels combine 2×2 child blocks.
        for k in 1..num_levels {
            let child_side = side >> (k - 1);
            let this_side = side >> k;
            let child = &levels[k - 1];
            let mut cur = vec![None; this_side * this_side];
            for by in 0..this_side {
                for bx in 0..this_side {
                    let mut acc: BlockStat<P> = None;
                    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        let c = child[(2 * by + dy) * child_side + (2 * bx + dx)];
                        acc = combine(acc, c);
                    }
                    cur[by * this_side + bx] = acc;
                }
            }
            levels.push(cur);
        }

        Self {
            levels,
            side,
            width: img.width(),
            height: img.height(),
        }
    }

    /// Side of the enclosing power-of-two square.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of levels (`log2(side) + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Width of the underlying image.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the underlying image.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Min/max of block `(bx, by)` at `level`; `None` if the block lies
    /// entirely outside the image.
    #[inline]
    pub fn block(&self, level: usize, bx: usize, by: usize) -> BlockStat<P> {
        let s = self.side >> level;
        debug_assert!(bx < s && by < s);
        self.levels[level][by * s + bx]
    }

    /// Intensity range (max − min) of the block, or `None` when empty.
    #[inline]
    pub fn range(&self, level: usize, bx: usize, by: usize) -> Option<u32> {
        self.block(level, bx, by)
            .map(|(lo, hi)| hi.to_u32() - lo.to_u32())
    }

    /// `true` iff the block at `level, (bx, by)` lies entirely inside the
    /// real image (no padding cells).
    #[inline]
    pub fn block_is_whole(&self, level: usize, bx: usize, by: usize) -> bool {
        let b = 1usize << level;
        (bx + 1) * b <= self.width && (by + 1) * b <= self.height
    }
}

#[inline]
fn combine<P: Intensity>(a: BlockStat<P>, b: BlockStat<P>) -> BlockStat<P> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some((lo1, hi1)), Some((lo2, hi2))) => Some((lo1.min(lo2), hi1.max(hi2))),
    }
}

/// Integral image (summed-area table) over `u64` sums.
///
/// Answers "sum of intensities in any axis-aligned rectangle" in O(1)
/// after an O(n) build — the standard companion to [`MinMaxPyramid`] when
/// the mean-difference criterion needs block sums, and generally useful
/// for fast box statistics.
#[derive(Debug, Clone)]
pub struct SummedAreaTable {
    /// `(width+1) × (height+1)` cumulative sums, row-major; row/col 0 are
    /// zero so queries need no branching.
    acc: Vec<u64>,
    width: usize,
    height: usize,
}

impl SummedAreaTable {
    /// Builds the table for `img`.
    pub fn build<P: Intensity>(img: &Image<P>) -> Self {
        let (w, h) = (img.width(), img.height());
        let stride = w + 1;
        let mut acc = vec![0u64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0u64;
            let row = img.row(y);
            for x in 0..w {
                row_sum += row[x].to_u32() as u64;
                acc[(y + 1) * stride + x + 1] = acc[y * stride + x + 1] + row_sum;
            }
        }
        Self {
            acc,
            width: w,
            height: h,
        }
    }

    /// Sum of intensities over the half-open rectangle
    /// `[x0, x1) × [y0, y1)`.
    ///
    /// # Panics
    /// Panics if the rectangle exceeds the image bounds or is inverted.
    #[inline]
    pub fn sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> u64 {
        assert!(x0 <= x1 && y0 <= y1, "inverted rectangle");
        assert!(
            x1 <= self.width && y1 <= self.height,
            "rectangle out of bounds"
        );
        let s = self.width + 1;
        self.acc[y1 * s + x1] + self.acc[y0 * s + x0]
            - self.acc[y0 * s + x1]
            - self.acc[y1 * s + x0]
    }

    /// Mean intensity over the half-open rectangle, `None` when empty.
    pub fn mean(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> Option<f64> {
        let area = (x1 - x0) * (y1 - y0);
        if area == 0 {
            return None;
        }
        Some(self.sum(x0, y0, x1, y1) as f64 / area as f64)
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }
}

/// Per-label statistics over a labelled image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelStat<P: Intensity> {
    /// Minimum intensity among the label's pixels.
    pub min: P,
    /// Maximum intensity among the label's pixels.
    pub max: P,
    /// Number of pixels carrying the label.
    pub count: usize,
}

impl<P: Intensity> LabelStat<P> {
    /// Intensity range (max − min) widened to `u32`.
    pub fn range(&self) -> u32 {
        self.max.to_u32() - self.min.to_u32()
    }
}

/// Computes min/max/count for every label present in `labels`.
///
/// `labels` is a row-major array parallel to the image (same convention the
/// merge stage uses for its output); the result maps `label → stat` sparsely.
///
/// # Panics
/// Panics if `labels.len() != img.len()`.
pub fn label_stats<P: Intensity>(
    img: &Image<P>,
    labels: &[u32],
) -> std::collections::HashMap<u32, LabelStat<P>> {
    assert_eq!(labels.len(), img.len(), "label buffer size mismatch");
    let mut out: std::collections::HashMap<u32, LabelStat<P>> = std::collections::HashMap::new();
    for (&l, &p) in labels.iter().zip(img.pixels()) {
        out.entry(l)
            .and_modify(|s| {
                s.min = s.min.min(p);
                s.max = s.max.max(p);
                s.count += 1;
            })
            .or_insert(LabelStat {
                min: p,
                max: p,
                count: 1,
            });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(128), 128);
        assert_eq!(next_pow2(129), 256);
    }

    #[test]
    fn pyramid_square_pow2() {
        // 4x4 image from the paper's Figure 1.
        let img: Image<u8> =
            Image::from_vec(4, 4, vec![6, 7, 1, 3, 8, 6, 5, 4, 8, 8, 6, 5, 8, 7, 6, 6]);
        let pyr = MinMaxPyramid::build(&img);
        assert_eq!(pyr.side(), 4);
        assert_eq!(pyr.num_levels(), 3);
        // Top-left 2x2 block {6,7,8,6} -> (6,8)
        assert_eq!(pyr.block(1, 0, 0), Some((6, 8)));
        // Top-right 2x2 block {1,3,5,4} -> (1,5)
        assert_eq!(pyr.block(1, 1, 0), Some((1, 5)));
        // Whole image
        assert_eq!(pyr.block(2, 0, 0), Some((1, 8)));
        assert_eq!(pyr.range(2, 0, 0), Some(7));
        assert!(pyr.block_is_whole(1, 1, 1));
        assert!(pyr.block_is_whole(2, 0, 0));
    }

    #[test]
    fn pyramid_non_pow2_pads() {
        let img: Image<u8> = Image::from_fn(5, 3, |x, y| (x + y) as u8);
        let pyr = MinMaxPyramid::build(&img);
        assert_eq!(pyr.side(), 8);
        // Block (1,1) at level 2 covers x in 4..8, y in 4..8: only padding.
        assert_eq!(pyr.block(2, 1, 1), None);
        // Block (1,0) at level 2 covers x in 4..8, y in 0..4; real pixels are
        // x=4, y=0..3 with values 4,5,6.
        assert_eq!(pyr.block(2, 1, 0), Some((4, 6)));
        assert!(!pyr.block_is_whole(2, 1, 0));
        assert!(!pyr.block_is_whole(0, 5, 0));
        assert!(pyr.block_is_whole(0, 4, 2));
    }

    #[test]
    fn pyramid_levels_consistent_with_bruteforce() {
        let img: Image<u8> = Image::from_fn(16, 16, |x, y| ((x * 31 + y * 17) % 97) as u8);
        let pyr = MinMaxPyramid::build(&img);
        for level in 0..pyr.num_levels() {
            let b = 1usize << level;
            let s = pyr.side() >> level;
            for by in 0..s {
                for bx in 0..s {
                    let mut lo = u8::MAX;
                    let mut hi = u8::MIN;
                    let mut any = false;
                    for y in by * b..((by + 1) * b).min(img.height()) {
                        for x in bx * b..((bx + 1) * b).min(img.width()) {
                            any = true;
                            let p = img.get(x, y);
                            lo = lo.min(p);
                            hi = hi.max(p);
                        }
                    }
                    let expect = if any { Some((lo, hi)) } else { None };
                    assert_eq!(
                        pyr.block(level, bx, by),
                        expect,
                        "level {level} ({bx},{by})"
                    );
                }
            }
        }
    }

    #[test]
    fn sat_matches_bruteforce() {
        let img: Image<u8> = Image::from_fn(13, 9, |x, y| ((x * 37 + y * 11) % 251) as u8);
        let sat = SummedAreaTable::build(&img);
        assert_eq!(sat.width(), 13);
        assert_eq!(sat.height(), 9);
        for (x0, y0, x1, y1) in [
            (0, 0, 13, 9),
            (2, 3, 7, 8),
            (5, 5, 5, 5),
            (0, 0, 1, 1),
            (12, 8, 13, 9),
        ] {
            let mut expect = 0u64;
            for y in y0..y1 {
                for x in x0..x1 {
                    expect += img.get(x, y) as u64;
                }
            }
            assert_eq!(sat.sum(x0, y0, x1, y1), expect, "({x0},{y0})-({x1},{y1})");
        }
        assert_eq!(sat.mean(5, 5, 5, 5), None);
        assert_eq!(
            sat.mean(0, 0, 2, 1),
            Some((img.get(0, 0) as f64 + img.get(1, 0) as f64) / 2.0)
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sat_rejects_oob() {
        let img: Image<u8> = Image::new(4, 4, 1);
        let sat = SummedAreaTable::build(&img);
        let _ = sat.sum(0, 0, 5, 4);
    }

    #[test]
    fn label_stats_counts_and_ranges() {
        let img: Image<u8> = Image::from_vec(2, 2, vec![10, 20, 30, 40]);
        let labels = vec![1, 1, 2, 2];
        let stats = label_stats(&img, &labels);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[&1].min, 10);
        assert_eq!(stats[&1].max, 20);
        assert_eq!(stats[&1].count, 2);
        assert_eq!(stats[&2].range(), 10);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn label_stats_len_mismatch() {
        let img: Image<u8> = Image::new(2, 2, 0);
        let _ = label_stats(&img, &[0, 1, 2]);
    }
}
