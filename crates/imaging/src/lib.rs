//! # rg-imaging
//!
//! Image substrate for the reproduction of *"Solving the Region Growing
//! Problem on the Connection Machine"* (Copty, Ranka, Fox, Shankar; ICPP
//! 1993).
//!
//! The paper segments grey-scale rasters; this crate provides everything the
//! algorithm crates need from the image side, with no external image
//! dependencies:
//!
//! * [`Image`] — a dense row-major 2-D raster generic over an integer
//!   intensity type ([`Intensity`]);
//! * [`pgm`] — a reader/writer for the portable grey-map format (both the
//!   ASCII `P2` and binary `P5` flavours) so inputs/outputs interoperate with
//!   standard tools;
//! * [`draw`] — minimal rasterisation helpers (filled rectangles, circles,
//!   polygons) used to synthesise test scenes;
//! * [`synth`] — generators for the six evaluation images of the paper
//!   (nested rectangles, rectangle collections, circle collections, and the
//!   256×256 "tool"), plus randomised workloads for property tests;
//! * [`stats`] — min/max pyramids and per-label statistics shared by the
//!   split stage and by segmentation verification.
//!
//! Everything is deterministic: generators take explicit seeds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod draw;
pub mod image;
pub mod pgm;
pub mod stats;
pub mod synth;

pub use image::{Image, Intensity};

/// Convenient alias for the intensity type used throughout the paper
/// reproduction (8-bit grey levels, as on the CM frame buffers).
pub type GrayImage = Image<u8>;
