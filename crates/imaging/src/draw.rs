//! Minimal rasterisation helpers used to synthesise test scenes.
//!
//! All primitives clip against the image bounds, so generators can place
//! shapes partially off-canvas without special-casing.

use crate::image::{Image, Intensity};

/// An axis-aligned rectangle, `x0..x0+w` by `y0..y0+h` in pixel units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Top edge (inclusive).
    pub y0: usize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

impl Rect {
    /// Convenience constructor.
    pub fn new(x0: usize, y0: usize, w: usize, h: usize) -> Self {
        Self { x0, y0, w, h }
    }

    /// `true` iff `(x, y)` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x0 + self.w && y >= self.y0 && y < self.y0 + self.h
    }

    /// `true` iff this rectangle overlaps `other`.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x0 + other.w
            && other.x0 < self.x0 + self.w
            && self.y0 < other.y0 + other.h
            && other.y0 < self.y0 + self.h
    }

    /// Area in pixels.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

/// Fills `rect` (clipped to the image) with intensity `v`.
pub fn fill_rect<P: Intensity>(img: &mut Image<P>, rect: Rect, v: P) {
    let x1 = (rect.x0 + rect.w).min(img.width());
    let y1 = (rect.y0 + rect.h).min(img.height());
    for y in rect.y0.min(y1)..y1 {
        for cell in &mut img.row_mut(y)[rect.x0.min(x1)..x1] {
            *cell = v;
        }
    }
}

/// Fills the disc of radius `r` centred at `(cx, cy)` (clipped) with `v`.
///
/// A pixel belongs to the disc when its centre lies within distance `r`
/// of the centre, i.e. `(x-cx)^2 + (y-cy)^2 <= r^2`.
pub fn fill_circle<P: Intensity>(img: &mut Image<P>, cx: i64, cy: i64, r: i64, v: P) {
    if r < 0 {
        return;
    }
    let y_lo = (cy - r).max(0) as usize;
    let y_hi = ((cy + r) as usize).min(img.height().saturating_sub(1));
    let rr = r * r;
    for y in y_lo..=y_hi.min(img.height().saturating_sub(1)) {
        let dy = y as i64 - cy;
        // Horizontal half-extent of the disc at this scanline.
        let span = ((rr - dy * dy) as f64).sqrt().floor() as i64;
        let x_lo = (cx - span).max(0) as usize;
        let x_hi = (cx + span).min(img.width() as i64 - 1);
        if x_hi < 0 {
            continue;
        }
        for cell in &mut img.row_mut(y)[x_lo..=x_hi as usize] {
            *cell = v;
        }
    }
}

/// Fills the convex polygon given by `pts` (clockwise or counter-clockwise)
/// with `v`, using a scanline even-odd fill.
///
/// Intended for the small convex pieces of the synthetic "tool" image; not a
/// general polygon rasteriser.
pub fn fill_convex_poly<P: Intensity>(img: &mut Image<P>, pts: &[(i64, i64)], v: P) {
    if pts.len() < 3 {
        return;
    }
    let y_min = pts.iter().map(|p| p.1).min().unwrap().max(0);
    let y_max = pts
        .iter()
        .map(|p| p.1)
        .max()
        .unwrap()
        .min(img.height() as i64 - 1);
    for y in y_min..=y_max {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let n = pts.len();
        for i in 0..n {
            let (x0, y0) = pts[i];
            let (x1, y1) = pts[(i + 1) % n];
            if y0 == y1 {
                if y == y0 {
                    lo = lo.min(x0.min(x1));
                    hi = hi.max(x0.max(x1));
                }
                continue;
            }
            let (ya, yb) = (y0.min(y1), y0.max(y1));
            if y < ya || y > yb {
                continue;
            }
            // Intersection of the scanline with this edge.
            let x = x0 + (x1 - x0) * (y - y0) / (y1 - y0);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo > hi {
            continue;
        }
        let x_lo = lo.max(0) as usize;
        let x_hi = (hi.min(img.width() as i64 - 1)).max(0) as usize;
        if x_lo <= x_hi && x_hi < img.width() {
            for cell in &mut img.row_mut(y as usize)[x_lo..=x_hi] {
                *cell = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_and_intersects() {
        let r = Rect::new(2, 3, 4, 5);
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
        assert!(!r.contains(2, 8));
        assert!(r.intersects(&Rect::new(5, 7, 10, 10)));
        assert!(!r.intersects(&Rect::new(6, 3, 1, 1)));
        assert_eq!(r.area(), 20);
    }

    #[test]
    fn fill_rect_clips() {
        let mut img: Image<u8> = Image::new(4, 4, 0);
        fill_rect(&mut img, Rect::new(2, 2, 10, 10), 9);
        assert_eq!(img.get(1, 1), 0);
        assert_eq!(img.get(2, 2), 9);
        assert_eq!(img.get(3, 3), 9);
    }

    #[test]
    fn fill_rect_exact_cells() {
        let mut img: Image<u8> = Image::new(5, 5, 0);
        fill_rect(&mut img, Rect::new(1, 1, 2, 3), 7);
        let painted: Vec<_> = img
            .enumerate_pixels()
            .filter(|&(_, _, p)| p == 7)
            .map(|(x, y, _)| (x, y))
            .collect();
        assert_eq!(
            painted,
            vec![(1, 1), (2, 1), (1, 2), (2, 2), (1, 3), (2, 3)]
        );
    }

    #[test]
    fn circle_is_symmetric_and_clipped() {
        let mut img: Image<u8> = Image::new(21, 21, 0);
        fill_circle(&mut img, 10, 10, 5, 1);
        assert_eq!(img.get(10, 10), 1);
        assert_eq!(img.get(15, 10), 1);
        assert_eq!(img.get(16, 10), 0);
        // Four-fold symmetry.
        for dy in -5i64..=5 {
            for dx in -5i64..=5 {
                let a = img.get((10 + dx) as usize, (10 + dy) as usize);
                let b = img.get((10 - dx) as usize, (10 - dy) as usize);
                assert_eq!(a, b);
            }
        }
        // Clipping must not panic.
        let mut edge: Image<u8> = Image::new(8, 8, 0);
        fill_circle(&mut edge, 0, 0, 5, 2);
        assert_eq!(edge.get(0, 0), 2);
        assert_eq!(edge.get(7, 7), 0);
    }

    #[test]
    fn convex_poly_triangle() {
        let mut img: Image<u8> = Image::new(10, 10, 0);
        fill_convex_poly(&mut img, &[(1, 1), (8, 1), (1, 8)], 3);
        assert_eq!(img.get(1, 1), 3);
        assert_eq!(img.get(7, 1), 3);
        assert_eq!(img.get(1, 7), 3);
        assert_eq!(img.get(8, 8), 0);
        // A point well inside.
        assert_eq!(img.get(3, 3), 3);
    }

    #[test]
    fn degenerate_poly_is_noop() {
        let mut img: Image<u8> = Image::new(4, 4, 0);
        fill_convex_poly(&mut img, &[(1, 1), (2, 2)], 5);
        assert!(img.pixels().iter().all(|&p| p == 0));
    }
}
