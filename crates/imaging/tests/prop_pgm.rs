//! Property tests for the PGM codec: lossless round-trips for arbitrary
//! images in both flavours, and agreement between flavours.

use proptest::prelude::*;
use rg_imaging::{pgm, Image};

prop_compose! {
    fn arb_image()(
        w in 1usize..40,
        h in 1usize..40,
    )(
        data in proptest::collection::vec(0u8..=255, w * h),
        w in Just(w),
        h in Just(h),
    ) -> Image<u8> {
        Image::from_vec(w, h, data)
    }
}

proptest! {
    #[test]
    fn binary_roundtrip(img in arb_image()) {
        let mut buf = Vec::new();
        pgm::write(&img, None, pgm::Flavor::Binary, &mut buf).unwrap();
        let back: Image<u8> = pgm::read(&buf[..]).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn ascii_roundtrip(img in arb_image()) {
        let mut buf = Vec::new();
        pgm::write(&img, None, pgm::Flavor::Ascii, &mut buf).unwrap();
        let back: Image<u8> = pgm::read(&buf[..]).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn wide_binary_roundtrip(
        w in 1usize..20,
        h in 1usize..20,
        base in 0u32..60_000,
    ) {
        let img: Image<u16> = Image::from_fn(w, h, |x, y| {
            ((base + (x * 131 + y * 57) as u32) % 65_536) as u16
        });
        let mut buf = Vec::new();
        pgm::write(&img, Some(65_535), pgm::Flavor::Binary, &mut buf).unwrap();
        let back: Image<u16> = pgm::read(&buf[..]).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn flavours_agree(img in arb_image()) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        pgm::write(&img, Some(255), pgm::Flavor::Ascii, &mut a).unwrap();
        pgm::write(&img, Some(255), pgm::Flavor::Binary, &mut b).unwrap();
        let ia: Image<u8> = pgm::read(&a[..]).unwrap();
        let ib: Image<u8> = pgm::read(&b[..]).unwrap();
        prop_assert_eq!(ia, ib);
    }

    #[test]
    fn crop_within_bounds_matches_pixels(
        img in arb_image(),
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
        fw in 0.01f64..1.0,
        fh in 0.01f64..1.0,
    ) {
        let x0 = ((img.width() - 1) as f64 * fx) as usize;
        let y0 = ((img.height() - 1) as f64 * fy) as usize;
        let w = 1 + ((img.width() - x0 - 1) as f64 * fw) as usize;
        let h = 1 + ((img.height() - y0 - 1) as f64 * fh) as usize;
        let c = img.crop(x0, y0, w, h);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(c.get(x, y), img.get(x0 + x, y0 + y));
            }
        }
    }
}

proptest! {
    /// Failure injection: the decoder must reject arbitrary garbage with an
    /// error, never a panic.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = pgm::read::<u8, _>(&bytes[..]);
    }

    /// Truncations of valid files must error cleanly, never panic.
    #[test]
    fn decoder_never_panics_on_truncation(img in arb_image(), cut in 0.0f64..1.0) {
        let mut buf = Vec::new();
        pgm::write(&img, None, pgm::Flavor::Binary, &mut buf).unwrap();
        let keep = (buf.len() as f64 * cut) as usize;
        let _ = pgm::read::<u8, _>(&buf[..keep]);
    }

    /// Header-corrupted files (bit flips in the first 16 bytes) must error
    /// cleanly or decode to *some* image, never panic.
    #[test]
    fn decoder_never_panics_on_header_corruption(
        img in arb_image(),
        pos in 0usize..16,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        pgm::write(&img, None, pgm::Flavor::Binary, &mut buf).unwrap();
        if pos < buf.len() {
            buf[pos] ^= 1 << bit;
        }
        let _ = pgm::read::<u8, _>(&buf[..]);
    }
}
