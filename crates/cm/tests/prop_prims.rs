//! Property tests: the simulated data-parallel primitives agree with
//! straightforward host references on arbitrary inputs.

use cm_sim::{CostModel, Field, Machine, Shape};
use proptest::prelude::*;

fn machine() -> Machine {
    Machine::new(CostModel::cm2_8k())
}

proptest! {
    #[test]
    fn scan_inclusive_matches_reference(data in proptest::collection::vec(0u64..1 << 40, 0..200)) {
        let m = machine();
        let f = Field::from_slice(&data);
        let got = m.scan_inclusive(&f, |a, b| a + b);
        let mut acc = 0u64;
        let expect: Vec<u64> = data.iter().map(|&x| { acc += x; acc }).collect();
        prop_assert_eq!(got.as_slice(), &expect[..]);
    }

    #[test]
    fn exclusive_scan_shifts_inclusive(data in proptest::collection::vec(0u32..1000, 1..200)) {
        let m = machine();
        let f = Field::from_slice(&data);
        let inc = m.scan_inclusive(&f, |a, b| a + b);
        let exc = m.scan_exclusive(&f, 0, |a, b| a + b);
        for i in 1..data.len() {
            prop_assert_eq!(exc.at(i), inc.at(i - 1));
        }
        prop_assert_eq!(exc.at(0), 0);
    }

    #[test]
    fn segmented_scan_equals_per_segment_scan(
        data in proptest::collection::vec(0u64..1000, 1..150),
        segbits in proptest::collection::vec(proptest::bool::ANY, 1..150),
    ) {
        let n = data.len().min(segbits.len());
        let data = &data[..n];
        let mut seg = segbits[..n].to_vec();
        seg[0] = true;
        let m = machine();
        let got = m.segmented_scan_inclusive(
            &Field::from_slice(data),
            &Field::from_slice(&seg),
            |a, b| a + b,
        );
        // Reference: restart the accumulator at each segment head.
        let mut acc = 0;
        let mut expect = Vec::with_capacity(n);
        for i in 0..n {
            if seg[i] { acc = 0; }
            acc += data[i];
            expect.push(acc);
        }
        prop_assert_eq!(got.as_slice(), &expect[..]);
    }

    #[test]
    fn send_min_matches_bucket_min(
        pairs in proptest::collection::vec((0u32..32, 0u32..10_000), 0..300),
    ) {
        let m = machine();
        let dest = Field::from_slice(&pairs.iter().map(|p| p.0).collect::<Vec<_>>());
        let src = Field::from_slice(&pairs.iter().map(|p| p.1).collect::<Vec<_>>());
        let mut out = Field::constant(Shape::one_d(32), u32::MAX);
        m.send_combine(&dest, &src, None, &mut out, u32::min);
        let mut expect = [u32::MAX; 32];
        for &(d, v) in &pairs {
            expect[d as usize] = expect[d as usize].min(v);
        }
        prop_assert_eq!(out.as_slice(), &expect[..]);
    }

    #[test]
    fn get_after_scatter_roundtrips(perm_seed in 0u64..1000, n in 1usize..200) {
        // Scatter a permutation then gather through it: identity.
        let m = machine();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        // Deterministic Fisher-Yates from the seed.
        let mut state = perm_seed.wrapping_add(0x9E3779B97F4A7C15);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            idx.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let perm = Field::from_slice(&idx);
        let vals = Field::from_slice(&(0..n as u32).map(|i| i * 3).collect::<Vec<_>>());
        let scattered = m.permute(&vals, &perm, 0);
        let back = m.get(&scattered, &perm, None, 0);
        prop_assert_eq!(back.as_slice(), vals.as_slice());
    }

    #[test]
    fn sort_matches_std(data in proptest::collection::vec(0u32..10_000, 0..300)) {
        let m = machine();
        let f = Field::from_slice(&data);
        let sorted = m.sort_by_key(&f, |x| x);
        let mut expect = data.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted.as_slice(), &expect[..]);
    }

    #[test]
    fn shift_composition(data in proptest::collection::vec(0u8..=255, 1..100), d1 in -5isize..5, d2 in -5isize..5) {
        // Shifting by d1 then d2 with the same fill equals shifting by
        // d1+d2 when no wrapped-out value re-enters: use fill 0 and check
        // interior cells only.
        let m = machine();
        let f = Field::from_slice(&data);
        let a = m.shift1d(&m.shift1d(&f, d1, 0), d2, 0);
        let b = m.shift1d(&f, d1 + d2, 0);
        let n = data.len() as isize;
        for i in 0..n {
            let src = i - d1 - d2;
            let intermediate = i - d2;
            if src >= 0 && src < n && intermediate >= 0 && intermediate < n {
                prop_assert_eq!(a.at(i as usize), b.at(i as usize));
            }
        }
    }

    #[test]
    fn reduce_is_order_insensitive(data in proptest::collection::vec(0u64..1 << 30, 1..200)) {
        let m = machine();
        let f = Field::from_slice(&data);
        prop_assert_eq!(m.reduce(&f, 0, |a, b| a + b), data.iter().sum::<u64>());
        prop_assert_eq!(
            m.reduce(&f, u64::MAX, |a, b| a.min(b)),
            data.iter().copied().min().unwrap()
        );
    }
}
