//! Parallel variables ("fields"): one value per virtual processor.
//!
//! A [`Field`] corresponds to a CM Fortran array mapped onto a virtual
//! processor set — 2-D for pixel data, 1-D for the graph arrays. The field
//! itself is inert data; all operations (and all cost accounting) go
//! through [`crate::Machine`].

/// Geometry of a virtual-processor set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Width (or length for 1-D sets).
    pub w: usize,
    /// Height (1 for 1-D sets).
    pub h: usize,
}

impl Shape {
    /// A 1-D VP set of `n` elements.
    pub fn one_d(n: usize) -> Self {
        Self { w: n, h: 1 }
    }

    /// A 2-D VP set of `w × h` elements.
    pub fn two_d(w: usize, h: usize) -> Self {
        Self { w, h }
    }

    /// Number of virtual processors.
    pub fn len(&self) -> usize {
        self.w * self.h
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The element types a field may hold. Blanket-implemented.
pub trait Elem: Copy + Send + Sync + std::fmt::Debug + 'static {}
impl<T: Copy + Send + Sync + std::fmt::Debug + 'static> Elem for T {}

/// A parallel variable: one `T` per virtual processor, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Field<T: Elem> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Elem> Field<T> {
    /// A field filled with `v`.
    pub fn constant(shape: Shape, v: T) -> Self {
        Self {
            shape,
            data: vec![v; shape.len()],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Self {
        assert_eq!(data.len(), shape.len(), "field buffer/shape mismatch");
        Self { shape, data }
    }

    /// A 1-D field from a buffer.
    pub fn from_slice(data: &[T]) -> Self {
        Self {
            shape: Shape::one_d(data.len()),
            data: data.to_vec(),
        }
    }

    /// The field's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the field is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at linear index `i`.
    #[inline]
    pub fn at(&self, i: usize) -> T {
        self.data[i]
    }

    /// Element at `(x, y)` for 2-D fields.
    #[inline]
    pub fn at2(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.shape.w && y < self.shape.h);
        self.data[y * self.shape.w + x]
    }

    /// Mutable element access (host-side initialisation only; bulk updates
    /// should go through machine operations so they are costed).
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// Read-only view of the backing buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view (host-side initialisation only).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the field, returning the buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let s = Shape::two_d(4, 3);
        assert_eq!(s.len(), 12);
        assert!(!s.is_empty());
        assert_eq!(Shape::one_d(5).h, 1);
        assert!(Shape::one_d(0).is_empty());
    }

    #[test]
    fn construction_and_access() {
        let f = Field::constant(Shape::two_d(3, 2), 7u32);
        assert_eq!(f.len(), 6);
        assert_eq!(f.at(5), 7);
        assert_eq!(f.at2(2, 1), 7);
        let g = Field::from_slice(&[1u8, 2, 3]);
        assert_eq!(g.shape(), Shape::one_d(3));
        assert_eq!(g.at(1), 2);
        let mut h = g.clone();
        h.set(0, 9);
        assert_eq!(h.as_slice(), &[9, 2, 3]);
        assert_eq!(h.into_vec(), vec![9, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_checks_len() {
        let _ = Field::from_vec(Shape::two_d(2, 2), vec![1u8, 2, 3]);
    }
}
