//! # cm-sim
//!
//! A simulator for the Connection Machine's *data-parallel* programming
//! model, built for the reproduction of *"Solving the Region Growing
//! Problem on the Connection Machine"* (ICPP 1993).
//!
//! The real CM-2 (SIMD, up to 64K bit-serial processors) and CM-5 (MIMD
//! fat-tree) are long gone; this crate provides the primitives a CM Fortran
//! program compiles down to — parallel fields over virtual-processor sets,
//! elementwise operations under context masks, reductions, scans
//! (including segmented scans), NEWS grid shifts, the combining router, and
//! sort — executing their semantics on the host while charging a
//! configurable [`CostModel`] for what the hardware would have spent.
//!
//! Two calibrated models ship with the crate:
//!
//! * [`CostModel::cm2_8k`] / [`CostModel::cm2_16k`] — the paper's SIMD
//!   machines (cost ∝ virtual-processor ratio, cheap instruction
//!   broadcast);
//! * [`CostModel::cm5_dp_32`] — CM Fortran on the 32-node CM-5, whose large
//!   per-operation "housekeeping" overhead reproduces the paper's
//!   observation that the data-parallel code ran *slower* on the newer
//!   machine.
//!
//! ```
//! use cm_sim::{CostModel, Field, Machine};
//!
//! let m = Machine::new(CostModel::cm2_8k());
//! let a = Field::from_slice(&[3u32, 1, 4, 1, 5]);
//! let doubled = m.map(&a, |x| x * 2);
//! assert_eq!(m.reduce(&doubled, 0, |x, y| x + y), 28);
//! assert!(m.seconds() > 0.0); // simulated time accrued
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod field;
pub mod machine;
pub mod news;
pub mod router;
pub mod scan;
pub mod sort;

pub use cost::{CostLedger, CostModel, Prim, ALL_PRIMS};
pub use field::{Elem, Field, Shape};
pub use machine::Machine;
