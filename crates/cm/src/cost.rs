//! Cost models for the simulated data-parallel machines.
//!
//! The reproduction cannot time real CM hardware, so every data-parallel
//! primitive charges a model-dependent amount of *simulated time* to a
//! [`CostLedger`]. The charge structure follows the machines' published
//! characteristics and the paper's own complexity analysis:
//!
//! * **CM-2** (SIMD, bit-serial): an operation over `n` virtual processors
//!   on `P` physical processors costs `⌈n/P⌉` (the VP ratio) times a
//!   per-primitive element cost, plus a small instruction-broadcast
//!   overhead. Scans and reductions add a `log₂ P` wire term; the general
//!   router is an order of magnitude slower per element than local ALU
//!   work. This yields the paper's split complexity `O(N²/P + log P)`.
//! * **CM-5 running the data-parallel model**: per-element work is cheaper
//!   (33 MHz SPARC nodes with vector units vs. bit-serial ALUs) but *every*
//!   operation pays a large fixed "housekeeping" overhead — the compiler
//!   and run-time system synchronisation the paper blames for the CM-5
//!   data-parallel slowdown — and communication pays a fat-tree setup
//!   `σ·log₂ P` (the paper's `O(N²/P + σ(log P))`).
//!
//! Constants were calibrated once against the paper's split-stage rows
//! (split times are data-independent, so they anchor the scale) and then
//! left alone; see EXPERIMENTS.md for measured-vs-paper tables.

/// Which primitive is being charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// Elementwise ALU work (map/zip, context-masked).
    Elementwise,
    /// Global reduction to a scalar.
    Reduce,
    /// Parallel prefix (scan), unsegmented or segmented.
    Scan,
    /// NEWS grid shift by a power-of-two distance.
    News,
    /// General router: combining send.
    Send,
    /// General router: gather (get).
    Get,
    /// Key sort (rank + permute).
    Sort,
}

/// All primitives, for iteration in reports.
pub const ALL_PRIMS: [Prim; 7] = [
    Prim::Elementwise,
    Prim::Reduce,
    Prim::Scan,
    Prim::News,
    Prim::Send,
    Prim::Get,
    Prim::Sort,
];

/// A simulated-machine cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Human-readable platform name (appears in reports).
    pub name: &'static str,
    /// Number of physical processing elements.
    pub procs: usize,
    /// Per-element cost of ALU work, nanoseconds.
    pub t_elem_ns: f64,
    /// Per-element cost of router traffic, nanoseconds.
    pub t_router_ns: f64,
    /// Per-element cost of NEWS/grid traffic, nanoseconds.
    pub t_news_ns: f64,
    /// Per-stage wire latency for log-depth networks (scan/reduce trees),
    /// nanoseconds.
    pub t_wire_ns: f64,
    /// Fixed overhead charged to every operation (instruction broadcast on
    /// the CM-2; compiler/run-time housekeeping on the CM-5), nanoseconds.
    pub op_overhead_ns: f64,
    /// Extra multiplier for sort (log n passes of router traffic).
    pub sort_factor: f64,
}

impl CostModel {
    /// The 8K-processor CM-2 of the paper's evaluation.
    pub fn cm2_8k() -> Self {
        Self::cm2(8 * 1024, "CM-2 (8K procs)")
    }

    /// The 16K-processor CM-2 of the paper's evaluation.
    pub fn cm2_16k() -> Self {
        Self::cm2(16 * 1024, "CM-2 (16K procs)")
    }

    /// A CM-2 with an arbitrary processor count.
    pub fn cm2(procs: usize, name: &'static str) -> Self {
        assert!(procs > 0);
        Self {
            name,
            procs,
            // Bit-serial ALU driven by the CM Fortran front end:
            // ~165 µs per 32-bit elementwise op per VP.
            t_elem_ns: 300_000.0,
            // General router ~8x the ALU cost per element.
            t_router_ns: 1_300_000.0,
            // NEWS grid is fast: ~1.5x ALU.
            t_news_ns: 420_000.0,
            t_wire_ns: 20_000.0,
            // SIMD instruction broadcast from the front end.
            op_overhead_ns: 100_000.0,
            sort_factor: 2.0,
        }
    }

    /// The 32-node CM-5 running the *data-parallel* (CM Fortran) model.
    pub fn cm5_dp_32() -> Self {
        Self::cm5_dp(32, "CM-5 (32 nodes)")
    }

    /// A data-parallel CM-5 with an arbitrary node count.
    pub fn cm5_dp(nodes: usize, name: &'static str) -> Self {
        assert!(nodes > 0);
        Self {
            name,
            procs: nodes,
            // 33 MHz SPARC does an elementwise op in ~1 µs of compiled
            // CM Fortran...
            t_elem_ns: 500.0,
            // ...but the fat-tree router costs ~12 µs per element once the
            // run-time system has marshalled the irregular pattern.
            t_router_ns: 25_000.0,
            t_news_ns: 1_000.0,
            t_wire_ns: 10_000.0,
            // The paper's "housekeeping": every CM Fortran operation incurs
            // run-time synchronisation, layout checks, and load balancing.
            op_overhead_ns: 2_000_000.0,
            sort_factor: 2.0,
        }
    }

    /// Virtual-processor ratio for an `n`-element operation.
    #[inline]
    pub fn vp_ratio(&self, n: usize) -> u64 {
        (n as u64).div_ceil(self.procs as u64)
    }

    /// Simulated cost, in nanoseconds, of one `prim` over `n` elements.
    pub fn charge_ns(&self, prim: Prim, n: usize) -> f64 {
        let vpr = self.vp_ratio(n) as f64;
        let logp = (self.procs.max(2) as f64).log2();
        let body = match prim {
            Prim::Elementwise => vpr * self.t_elem_ns,
            Prim::Reduce => vpr * self.t_elem_ns + logp * self.t_wire_ns,
            Prim::Scan => vpr * self.t_elem_ns * 2.0 + logp * self.t_wire_ns,
            Prim::News => vpr * self.t_news_ns,
            Prim::Send => vpr * self.t_router_ns + logp * self.t_wire_ns,
            Prim::Get => vpr * self.t_router_ns * 1.5 + logp * self.t_wire_ns,
            Prim::Sort => {
                let n64 = (n.max(2)) as f64;
                vpr * self.t_router_ns * self.sort_factor * n64.log2() + logp * self.t_wire_ns
            }
        };
        self.op_overhead_ns + body
    }
}

/// Accumulated simulated time and per-primitive operation counts.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    total_ns: f64,
    counts: std::collections::HashMap<Prim, u64>,
    time_ns: std::collections::HashMap<Prim, f64>,
}

impl CostLedger {
    /// A fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one operation's cost.
    pub fn charge(&mut self, prim: Prim, ns: f64) {
        self.total_ns += ns;
        *self.counts.entry(prim).or_insert(0) += 1;
        *self.time_ns.entry(prim).or_insert(0.0) += ns;
    }

    /// Total simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_ns / 1e9
    }

    /// Total simulated time in nanoseconds.
    pub fn nanoseconds(&self) -> f64 {
        self.total_ns
    }

    /// Number of operations of the given primitive.
    pub fn count(&self, prim: Prim) -> u64 {
        self.counts.get(&prim).copied().unwrap_or(0)
    }

    /// Simulated seconds spent in the given primitive.
    pub fn seconds_of(&self, prim: Prim) -> f64 {
        self.time_ns.get(&prim).copied().unwrap_or(0.0) / 1e9
    }

    /// Resets the ledger to zero.
    pub fn reset(&mut self) {
        self.total_ns = 0.0;
        self.counts.clear();
        self.time_ns.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_ratio_rounds_up() {
        let m = CostModel::cm2_8k();
        assert_eq!(m.vp_ratio(1), 1);
        assert_eq!(m.vp_ratio(8 * 1024), 1);
        assert_eq!(m.vp_ratio(8 * 1024 + 1), 2);
        assert_eq!(m.vp_ratio(128 * 128), 2);
        let m16 = CostModel::cm2_16k();
        assert_eq!(m16.vp_ratio(128 * 128), 1);
    }

    #[test]
    fn doubling_processors_halves_elementwise_body() {
        let m8 = CostModel::cm2_8k();
        let m16 = CostModel::cm2_16k();
        let n = 256 * 256;
        let c8 = m8.charge_ns(Prim::Elementwise, n) - m8.op_overhead_ns;
        let c16 = m16.charge_ns(Prim::Elementwise, n) - m16.op_overhead_ns;
        assert!((c8 / c16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cm5_dp_overhead_dominates_small_ops() {
        let m = CostModel::cm5_dp_32();
        let small = m.charge_ns(Prim::Elementwise, 100);
        assert!(m.op_overhead_ns / small > 0.9, "overhead should dominate");
        // The CM-2 is faster than the CM-5 DP for small arrays despite the
        // slower ALU (the paper's observation).
        let cm2 = CostModel::cm2_16k();
        assert!(cm2.charge_ns(Prim::Elementwise, 100) < small);
    }

    #[test]
    fn ledger_accumulates_and_counts() {
        let m = CostModel::cm2_8k();
        let mut l = CostLedger::new();
        l.charge(Prim::Send, m.charge_ns(Prim::Send, 1000));
        l.charge(Prim::Send, m.charge_ns(Prim::Send, 1000));
        l.charge(Prim::Reduce, m.charge_ns(Prim::Reduce, 1000));
        assert_eq!(l.count(Prim::Send), 2);
        assert_eq!(l.count(Prim::Reduce), 1);
        assert_eq!(l.count(Prim::Scan), 0);
        assert!(l.seconds() > 0.0);
        assert!(l.seconds_of(Prim::Send) > l.seconds_of(Prim::Reduce));
        assert!(
            (l.seconds_of(Prim::Send) + l.seconds_of(Prim::Reduce) - l.seconds()).abs() < 1e-12
        );
        l.reset();
        assert_eq!(l.seconds(), 0.0);
        assert_eq!(l.count(Prim::Send), 0);
    }

    #[test]
    fn router_costs_more_than_news() {
        for m in [CostModel::cm2_8k(), CostModel::cm5_dp_32()] {
            assert!(m.charge_ns(Prim::Send, 4096) > m.charge_ns(Prim::News, 4096));
        }
    }
}
