//! NEWS grid communication: 2-D nearest-neighbour and power-of-two shifts.
//!
//! The CM-2 embedded a 2-D grid ("NEWS") in its hypercube; shifting a 2-D
//! field by a power-of-two distance was far cheaper than general routing.
//! The data-parallel split stage is built entirely from these shifts.

use crate::cost::Prim;
use crate::field::{Elem, Field};
use crate::machine::Machine;

impl Machine {
    /// Shifts a 2-D field by `(dx, dy)`: `out[x, y] = a[x - dx, y - dy]`,
    /// with `fill` flowing in at the boundary.
    ///
    /// Positive `dx` moves data rightwards/downwards (the usual image
    /// convention).
    pub fn shift2d<T: Elem>(&self, a: &Field<T>, dx: isize, dy: isize, fill: T) -> Field<T> {
        let s = a.shape();
        assert!(s.h > 1 || dy == 0, "vertical shift of a 1-D field");
        self.charge(Prim::News, a.len());
        let mut out = Vec::with_capacity(a.len());
        for y in 0..s.h as isize {
            for x in 0..s.w as isize {
                let sx = x - dx;
                let sy = y - dy;
                if sx >= 0 && sx < s.w as isize && sy >= 0 && sy < s.h as isize {
                    out.push(a.at2(sx as usize, sy as usize));
                } else {
                    out.push(fill);
                }
            }
        }
        Field::from_vec(s, out)
    }

    /// Shifts a 1-D field by `d`: `out[i] = a[i - d]` with boundary `fill`.
    pub fn shift1d<T: Elem>(&self, a: &Field<T>, d: isize, fill: T) -> Field<T> {
        self.charge(Prim::News, a.len());
        let n = a.len() as isize;
        let mut out = Vec::with_capacity(a.len());
        for i in 0..n {
            let j = i - d;
            if j >= 0 && j < n {
                out.push(a.at(j as usize));
            } else {
                out.push(fill);
            }
        }
        Field::from_vec(a.shape(), out)
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::field::{Field, Shape};
    use crate::machine::Machine;

    fn machine() -> Machine {
        Machine::new(CostModel::cm2_8k())
    }

    #[test]
    fn shift_right_and_down() {
        let m = machine();
        let a = Field::from_vec(Shape::two_d(3, 2), vec![1u8, 2, 3, 4, 5, 6]);
        let r = m.shift2d(&a, 1, 0, 0);
        assert_eq!(r.as_slice(), &[0, 1, 2, 0, 4, 5]);
        let d = m.shift2d(&a, 0, 1, 9);
        assert_eq!(d.as_slice(), &[9, 9, 9, 1, 2, 3]);
    }

    #[test]
    fn shift_left_up_diagonal() {
        let m = machine();
        let a = Field::from_vec(Shape::two_d(2, 2), vec![1u8, 2, 3, 4]);
        assert_eq!(m.shift2d(&a, -1, 0, 0).as_slice(), &[2, 0, 4, 0]);
        assert_eq!(m.shift2d(&a, 0, -1, 0).as_slice(), &[3, 4, 0, 0]);
        assert_eq!(m.shift2d(&a, -1, -1, 7).as_slice(), &[4, 7, 7, 7]);
    }

    #[test]
    fn zero_shift_is_identity() {
        let m = machine();
        let a = Field::from_vec(Shape::two_d(2, 3), vec![1u8, 2, 3, 4, 5, 6]);
        assert_eq!(m.shift2d(&a, 0, 0, 0), a);
    }

    #[test]
    fn shift1d_both_ways() {
        let m = machine();
        let a = Field::from_slice(&[1u32, 2, 3, 4]);
        assert_eq!(m.shift1d(&a, 1, 0).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(m.shift1d(&a, -2, 9).as_slice(), &[3, 4, 9, 9]);
    }

    #[test]
    fn large_shift_fills_everything() {
        let m = machine();
        let a = Field::from_slice(&[1u32, 2]);
        assert_eq!(m.shift1d(&a, 5, 8).as_slice(), &[8, 8]);
    }
}
