//! The simulated data-parallel machine: elementwise operations, context
//! masks, and reductions. Grid, scan, router, and sort primitives live in
//! sibling modules (`news`, `scan`, `router`, `sort`) as further `impl`
//! blocks on [`Machine`].

use crate::cost::{CostLedger, CostModel, Prim};
use crate::field::{Elem, Field};
use parking_lot::Mutex;

/// A simulated SIMD/data-parallel machine with a cost ledger.
///
/// Every operation executes the semantics eagerly on the host and charges
/// the configured [`CostModel`] for what the real machine would have spent.
/// Operations take `&self`; the ledger sits behind a mutex so drivers can
/// share the machine across helper structs.
#[derive(Debug)]
pub struct Machine {
    model: CostModel,
    ledger: Mutex<CostLedger>,
}

impl Machine {
    /// Creates a machine with the given cost model and a zeroed ledger.
    pub fn new(model: CostModel) -> Self {
        Self {
            model,
            ledger: Mutex::new(CostLedger::new()),
        }
    }

    /// The machine's cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Simulated seconds elapsed so far.
    pub fn seconds(&self) -> f64 {
        self.ledger.lock().seconds()
    }

    /// Snapshot of the ledger (time + op counts).
    pub fn ledger_snapshot(&self) -> CostLedger {
        self.ledger.lock().clone()
    }

    /// Zeroes the ledger (e.g. between the split and merge stages).
    pub fn reset_ledger(&self) {
        self.ledger.lock().reset();
    }

    /// Charges one `prim` over `n` elements.
    pub(crate) fn charge(&self, prim: Prim, n: usize) {
        let ns = self.model.charge_ns(prim, n);
        self.ledger.lock().charge(prim, ns);
    }

    // ---- elementwise operations -------------------------------------

    /// `out[i] = f(a[i])`.
    pub fn map<T: Elem, U: Elem>(&self, a: &Field<T>, f: impl Fn(T) -> U) -> Field<U> {
        self.charge(Prim::Elementwise, a.len());
        Field::from_vec(a.shape(), a.as_slice().iter().map(|&x| f(x)).collect())
    }

    /// `out[i] = f(a[i], b[i])`.
    pub fn zip<T: Elem, U: Elem, V: Elem>(
        &self,
        a: &Field<T>,
        b: &Field<U>,
        f: impl Fn(T, U) -> V,
    ) -> Field<V> {
        assert_eq!(a.shape(), b.shape(), "zip shape mismatch");
        self.charge(Prim::Elementwise, a.len());
        let data = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| f(x, y))
            .collect();
        Field::from_vec(a.shape(), data)
    }

    /// `out[i] = f(a[i], b[i], c[i])`.
    pub fn zip3<T: Elem, U: Elem, V: Elem, W: Elem>(
        &self,
        a: &Field<T>,
        b: &Field<U>,
        c: &Field<V>,
        f: impl Fn(T, U, V) -> W,
    ) -> Field<W> {
        assert_eq!(a.shape(), b.shape(), "zip3 shape mismatch");
        assert_eq!(a.shape(), c.shape(), "zip3 shape mismatch");
        self.charge(Prim::Elementwise, a.len());
        let data = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .zip(c.as_slice())
            .map(|((&x, &y), &z)| f(x, y, z))
            .collect();
        Field::from_vec(a.shape(), data)
    }

    /// Context-masked update: `dst[i] = f(dst[i], src[i])` where
    /// `mask[i]`. This is the CM's "where" construct.
    pub fn update_where<T: Elem, U: Elem>(
        &self,
        dst: &mut Field<T>,
        mask: &Field<bool>,
        src: &Field<U>,
        f: impl Fn(T, U) -> T,
    ) {
        assert_eq!(dst.shape(), mask.shape(), "update_where shape mismatch");
        assert_eq!(dst.shape(), src.shape(), "update_where shape mismatch");
        self.charge(Prim::Elementwise, dst.len());
        let d = dst.as_mut_slice();
        for (i, cell) in d.iter_mut().enumerate() {
            if mask.at(i) {
                *cell = f(*cell, src.at(i));
            }
        }
    }

    /// `out[i] = if mask[i] { a[i] } else { b[i] }` (CM `merge`).
    pub fn select<T: Elem>(&self, mask: &Field<bool>, a: &Field<T>, b: &Field<T>) -> Field<T> {
        self.zip3(mask, a, b, |m, x, y| if m { x } else { y })
    }

    /// The self-address field `0, 1, 2, …` (CM `self-address!!`).
    pub fn iota(&self, shape: crate::field::Shape) -> Field<u32> {
        self.charge(Prim::Elementwise, shape.len());
        Field::from_vec(shape, (0..shape.len() as u32).collect())
    }

    // ---- reductions --------------------------------------------------

    /// Global fold of the field to a scalar.
    ///
    /// `f` must be associative and commutative (the hardware tree imposes
    /// no order).
    pub fn reduce<T: Elem>(&self, a: &Field<T>, init: T, f: impl Fn(T, T) -> T) -> T {
        self.charge(Prim::Reduce, a.len());
        a.as_slice().iter().fold(init, |acc, &x| f(acc, x))
    }

    /// Global OR of a boolean field.
    pub fn any(&self, a: &Field<bool>) -> bool {
        self.reduce(a, false, |x, y| x | y)
    }

    /// Number of `true` elements (a sum-reduce on the hardware).
    pub fn count_true(&self, a: &Field<bool>) -> usize {
        self.charge(Prim::Reduce, a.len());
        a.as_slice().iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Shape;

    fn machine() -> Machine {
        Machine::new(CostModel::cm2_8k())
    }

    #[test]
    fn map_zip_select() {
        let m = machine();
        let a = Field::from_slice(&[1u32, 2, 3]);
        let b = Field::from_slice(&[10u32, 20, 30]);
        assert_eq!(m.map(&a, |x| x * 2).as_slice(), &[2, 4, 6]);
        assert_eq!(m.zip(&a, &b, |x, y| x + y).as_slice(), &[11, 22, 33]);
        let mask = Field::from_slice(&[true, false, true]);
        assert_eq!(m.select(&mask, &a, &b).as_slice(), &[1, 20, 3]);
    }

    #[test]
    fn update_where_masks() {
        let m = machine();
        let mut dst = Field::from_slice(&[0u32, 0, 0, 0]);
        let mask = Field::from_slice(&[true, false, true, false]);
        let src = Field::from_slice(&[5u32, 6, 7, 8]);
        m.update_where(&mut dst, &mask, &src, |_, s| s);
        assert_eq!(dst.as_slice(), &[5, 0, 7, 0]);
    }

    #[test]
    fn reductions() {
        let m = machine();
        let a = Field::from_slice(&[3u32, 1, 4, 1, 5]);
        assert_eq!(m.reduce(&a, 0, |x, y| x + y), 14);
        assert_eq!(m.reduce(&a, u32::MAX, |x, y| x.min(y)), 1);
        let mask = Field::from_slice(&[true, false, true]);
        assert!(m.any(&mask));
        assert!(!m.any(&Field::from_slice(&[false, false])));
    }

    #[test]
    fn iota_addresses() {
        let m = machine();
        let f = m.iota(Shape::two_d(3, 2));
        assert_eq!(f.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn ledger_advances() {
        let m = machine();
        let before = m.seconds();
        let a = Field::constant(Shape::one_d(100_000), 1u32);
        let _ = m.map(&a, |x| x + 1);
        assert!(m.seconds() > before);
        let snap = m.ledger_snapshot();
        assert_eq!(snap.count(Prim::Elementwise), 1);
        m.reset_ledger();
        assert_eq!(m.seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn zip_shape_mismatch_panics() {
        let m = machine();
        let a = Field::from_slice(&[1u32]);
        let b = Field::from_slice(&[1u32, 2]);
        let _ = m.zip(&a, &b, |x, y| x + y);
    }
}
