//! Parallel prefix (scan) primitives.
//!
//! Scans were the CM's signature primitive (the `scan!!` instruction and
//! CM Fortran's `*-prefix` intrinsics). The merge stage's data-parallel
//! formulation uses segmented scans for per-vertex minima over sorted edge
//! lists; the split stage uses enumerate (an exclusive +-scan over a mask)
//! for compaction.

use crate::cost::Prim;
use crate::field::{Elem, Field};
use crate::machine::Machine;

impl Machine {
    /// Inclusive scan: `out[i] = f(a[0], …, a[i])`.
    ///
    /// `f` must be associative.
    pub fn scan_inclusive<T: Elem>(&self, a: &Field<T>, f: impl Fn(T, T) -> T) -> Field<T> {
        self.charge(Prim::Scan, a.len());
        let mut out = Vec::with_capacity(a.len());
        let mut acc: Option<T> = None;
        for &x in a.as_slice() {
            acc = Some(match acc {
                None => x,
                Some(p) => f(p, x),
            });
            out.push(acc.unwrap());
        }
        Field::from_vec(a.shape(), out)
    }

    /// Exclusive scan with identity `init`:
    /// `out[i] = f(init, a[0], …, a[i-1])`.
    pub fn scan_exclusive<T: Elem>(
        &self,
        a: &Field<T>,
        init: T,
        f: impl Fn(T, T) -> T,
    ) -> Field<T> {
        self.charge(Prim::Scan, a.len());
        let mut out = Vec::with_capacity(a.len());
        let mut acc = init;
        for &x in a.as_slice() {
            out.push(acc);
            acc = f(acc, x);
        }
        Field::from_vec(a.shape(), out)
    }

    /// Segmented inclusive scan: the accumulator resets wherever
    /// `segment_start[i]` is `true`.
    pub fn segmented_scan_inclusive<T: Elem>(
        &self,
        a: &Field<T>,
        segment_start: &Field<bool>,
        f: impl Fn(T, T) -> T,
    ) -> Field<T> {
        assert_eq!(a.shape(), segment_start.shape(), "segment mask mismatch");
        self.charge(Prim::Scan, a.len());
        let mut out = Vec::with_capacity(a.len());
        let mut acc: Option<T> = None;
        for (i, &x) in a.as_slice().iter().enumerate() {
            if segment_start.at(i) {
                acc = None;
            }
            acc = Some(match acc {
                None => x,
                Some(p) => f(p, x),
            });
            out.push(acc.unwrap());
        }
        Field::from_vec(a.shape(), out)
    }

    /// Enumerates the `true` positions of a mask: `out[i]` = number of
    /// `true` entries strictly before `i` (an exclusive +-scan), returned
    /// together with the total count. The standard compaction building
    /// block.
    pub fn enumerate(&self, mask: &Field<bool>) -> (Field<u32>, u32) {
        self.charge(Prim::Scan, mask.len());
        let mut out = Vec::with_capacity(mask.len());
        let mut acc = 0u32;
        for &b in mask.as_slice() {
            out.push(acc);
            acc += b as u32;
        }
        (Field::from_vec(mask.shape(), out), acc)
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::field::Field;
    use crate::machine::Machine;

    fn machine() -> Machine {
        Machine::new(CostModel::cm2_8k())
    }

    #[test]
    fn inclusive_and_exclusive_sum() {
        let m = machine();
        let a = Field::from_slice(&[1u32, 2, 3, 4]);
        assert_eq!(
            m.scan_inclusive(&a, |x, y| x + y).as_slice(),
            &[1, 3, 6, 10]
        );
        assert_eq!(
            m.scan_exclusive(&a, 0, |x, y| x + y).as_slice(),
            &[0, 1, 3, 6]
        );
    }

    #[test]
    fn max_scan() {
        let m = machine();
        let a = Field::from_slice(&[3u32, 1, 4, 1, 5]);
        assert_eq!(
            m.scan_inclusive(&a, |x, y| x.max(y)).as_slice(),
            &[3, 3, 4, 4, 5]
        );
    }

    #[test]
    fn segmented_scan_resets() {
        let m = machine();
        let a = Field::from_slice(&[1u32, 2, 3, 4, 5]);
        let seg = Field::from_slice(&[true, false, true, false, false]);
        assert_eq!(
            m.segmented_scan_inclusive(&a, &seg, |x, y| x + y)
                .as_slice(),
            &[1, 3, 3, 7, 12]
        );
        // Segmented min: the per-segment running minimum.
        let b = Field::from_slice(&[9u32, 2, 7, 8, 1]);
        assert_eq!(
            m.segmented_scan_inclusive(&b, &seg, |x, y| x.min(y))
                .as_slice(),
            &[9, 2, 7, 7, 1]
        );
    }

    #[test]
    fn enumerate_compacts() {
        let m = machine();
        let mask = Field::from_slice(&[false, true, true, false, true]);
        let (idx, total) = m.enumerate(&mask);
        assert_eq!(idx.as_slice(), &[0, 0, 1, 2, 2]);
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_fields() {
        let m = machine();
        let a: Field<u32> = Field::from_slice(&[]);
        assert!(m.scan_inclusive(&a, |x, y| x + y).is_empty());
        let (idx, total) = m.enumerate(&Field::from_slice(&[]));
        assert!(idx.is_empty());
        assert_eq!(total, 0);
    }
}
