//! The general router: combining sends and gathers.
//!
//! `send` with a combining operation (the CM's `send-with-min!!` family)
//! and `get` (gather) are the irregular-communication workhorses of the
//! merge stage: every directed half-edge sends its candidate rank to its
//! source vertex with min-combining, and vertices fetch each other's
//! choices and statistics with gets.

use crate::cost::Prim;
use crate::field::{Elem, Field};
use crate::machine::Machine;

impl Machine {
    /// Combining send: for every active element `i`,
    /// `out[dest[i]] = combine(out[dest[i]], src[i])`.
    ///
    /// `combine` must be associative and commutative (the router combines
    /// colliding messages in arbitrary order); `out` is modified in place
    /// so callers control the identity values.
    ///
    /// # Panics
    /// Panics if an active destination is out of bounds.
    pub fn send_combine<T: Elem>(
        &self,
        dest: &Field<u32>,
        src: &Field<T>,
        mask: Option<&Field<bool>>,
        out: &mut Field<T>,
        combine: impl Fn(T, T) -> T,
    ) {
        assert_eq!(dest.shape(), src.shape(), "send shape mismatch");
        if let Some(m) = mask {
            assert_eq!(m.shape(), src.shape(), "send mask mismatch");
        }
        self.charge(Prim::Send, src.len());
        for i in 0..src.len() {
            if mask.is_none_or(|m| m.at(i)) {
                let d = dest.at(i) as usize;
                let cur = out.at(d);
                out.set(d, combine(cur, src.at(i)));
            }
        }
    }

    /// Gather: `out[i] = table[addr[i]]` for active elements, `default`
    /// otherwise.
    ///
    /// # Panics
    /// Panics if an active address is out of bounds.
    pub fn get<T: Elem>(
        &self,
        table: &Field<T>,
        addr: &Field<u32>,
        mask: Option<&Field<bool>>,
        default: T,
    ) -> Field<T> {
        if let Some(m) = mask {
            assert_eq!(m.shape(), addr.shape(), "get mask mismatch");
        }
        self.charge(Prim::Get, addr.len());
        let mut out = Vec::with_capacity(addr.len());
        for i in 0..addr.len() {
            if mask.is_none_or(|m| m.at(i)) {
                out.push(table.at(addr.at(i) as usize));
            } else {
                out.push(default);
            }
        }
        Field::from_vec(addr.shape(), out)
    }

    /// Scatter without combining (`send-with-overwrite`): later senders in
    /// index order win on collision. Prefer [`Machine::send_combine`] when
    /// collisions are possible — overwrite order is an implementation
    /// artefact on real hardware.
    pub fn scatter<T: Elem>(
        &self,
        dest: &Field<u32>,
        src: &Field<T>,
        mask: Option<&Field<bool>>,
        out: &mut Field<T>,
    ) {
        self.send_combine(dest, src, mask, out, |_, new| new);
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::field::Field;
    use crate::machine::Machine;

    fn machine() -> Machine {
        Machine::new(CostModel::cm2_8k())
    }

    #[test]
    fn send_with_min_combines_collisions() {
        let m = machine();
        let dest = Field::from_slice(&[0u32, 0, 1, 1]);
        let src = Field::from_slice(&[5u32, 3, 9, 2]);
        let mut out = Field::from_slice(&[u32::MAX, u32::MAX]);
        m.send_combine(&dest, &src, None, &mut out, |a, b| a.min(b));
        assert_eq!(out.as_slice(), &[3, 2]);
    }

    #[test]
    fn send_with_add_and_mask() {
        let m = machine();
        let dest = Field::from_slice(&[1u32, 1, 1, 0]);
        let src = Field::from_slice(&[1u64, 2, 4, 8]);
        let mask = Field::from_slice(&[true, false, true, true]);
        let mut out = Field::from_slice(&[0u64, 0]);
        m.send_combine(&dest, &src, Some(&mask), &mut out, |a, b| a + b);
        assert_eq!(out.as_slice(), &[8, 5]);
    }

    #[test]
    fn get_gathers() {
        let m = machine();
        let table = Field::from_slice(&[10u32, 20, 30]);
        let addr = Field::from_slice(&[2u32, 0, 1, 2]);
        let got = m.get(&table, &addr, None, 0);
        assert_eq!(got.as_slice(), &[30, 10, 20, 30]);
    }

    #[test]
    fn get_respects_mask_default() {
        let m = machine();
        let table = Field::from_slice(&[10u32, 20]);
        // Address 99 would be out of bounds, but it is masked off.
        let addr = Field::from_slice(&[99u32, 1]);
        let mask = Field::from_slice(&[false, true]);
        let got = m.get(&table, &addr, Some(&mask), 7);
        assert_eq!(got.as_slice(), &[7, 20]);
    }

    #[test]
    fn scatter_overwrites() {
        let m = machine();
        let dest = Field::from_slice(&[0u32, 0]);
        let src = Field::from_slice(&[1u8, 2]);
        let mut out = Field::from_slice(&[0u8]);
        m.scatter(&dest, &src, None, &mut out);
        assert_eq!(out.as_slice(), &[2]); // index order: later wins
    }

    #[test]
    #[should_panic]
    fn active_oob_address_panics() {
        let m = machine();
        let table = Field::from_slice(&[1u32]);
        let addr = Field::from_slice(&[3u32]);
        let _ = m.get(&table, &addr, None, 0);
    }
}
