//! Sorting and ranking.
//!
//! The CM provided a hardware-assisted sort (`rank!!` + permute). The
//! data-parallel merge stage can use it to deduplicate relabelled edges;
//! the cost model charges `O((n/P)·log n)` router passes, the standard
//! bitonic bound.

use crate::cost::Prim;
use crate::field::{Elem, Field};
use crate::machine::Machine;

impl Machine {
    /// Stable rank of each element under ascending key order: `rank[i]` is
    /// the position element `i` would occupy in the sorted order.
    pub fn rank_by_key<T: Elem, K: Ord>(&self, a: &Field<T>, key: impl Fn(T) -> K) -> Field<u32> {
        self.charge(Prim::Sort, a.len());
        let mut order: Vec<u32> = (0..a.len() as u32).collect();
        order.sort_by_key(|&i| key(a.at(i as usize)));
        let mut rank = vec![0u32; a.len()];
        for (pos, &i) in order.iter().enumerate() {
            rank[i as usize] = pos as u32;
        }
        Field::from_vec(a.shape(), rank)
    }

    /// Sorts a field by key (stable). Equivalent to `rank_by_key` followed
    /// by a permute, charged as a single sort.
    pub fn sort_by_key<T: Elem, K: Ord>(&self, a: &Field<T>, key: impl Fn(T) -> K) -> Field<T> {
        self.charge(Prim::Sort, a.len());
        let mut data = a.as_slice().to_vec();
        data.sort_by_key(|&x| key(x));
        Field::from_vec(a.shape(), data)
    }

    /// Permute: `out[perm[i]] = a[i]`. `perm` must be a permutation.
    pub fn permute<T: Elem>(&self, a: &Field<T>, perm: &Field<u32>, fill: T) -> Field<T> {
        assert_eq!(a.shape(), perm.shape(), "permute shape mismatch");
        self.charge(Prim::Send, a.len());
        let mut out = vec![fill; a.len()];
        let mut hit = vec![false; a.len()];
        for i in 0..a.len() {
            let d = perm.at(i) as usize;
            assert!(!hit[d], "permute: duplicate destination {d}");
            hit[d] = true;
            out[d] = a.at(i);
        }
        Field::from_vec(a.shape(), out)
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::field::Field;
    use crate::machine::Machine;

    fn machine() -> Machine {
        Machine::new(CostModel::cm2_8k())
    }

    #[test]
    fn rank_is_stable() {
        let m = machine();
        let a = Field::from_slice(&[30u32, 10, 30, 20]);
        let r = m.rank_by_key(&a, |x| x);
        // 10 -> 0, 20 -> 1, first 30 -> 2, second 30 -> 3.
        assert_eq!(r.as_slice(), &[2, 0, 3, 1]);
    }

    #[test]
    fn sort_by_key_sorts() {
        let m = machine();
        let a = Field::from_slice(&[(3u32, 'c'), (1, 'a'), (2, 'b')]);
        let s = m.sort_by_key(&a, |(k, _)| k);
        assert_eq!(s.as_slice(), &[(1, 'a'), (2, 'b'), (3, 'c')]);
    }

    #[test]
    fn rank_then_permute_equals_sort() {
        let m = machine();
        let a = Field::from_slice(&[5u32, 1, 4, 2, 3]);
        let r = m.rank_by_key(&a, |x| x);
        let s = m.permute(&a, &r, 0);
        assert_eq!(s.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn permute_rejects_collisions() {
        let m = machine();
        let a = Field::from_slice(&[1u32, 2]);
        let p = Field::from_slice(&[0u32, 0]);
        let _ = m.permute(&a, &p, 0);
    }
}
