//! Merge traces and dendrograms: the hierarchical view of region merging.
//!
//! Every merge the engine performs fuses exactly two regions, so a full
//! run induces a binary merge forest over the initial squares — the same
//! structure Tilton's iterative parallel region growing (the paper's
//! reference \[8\]) exploits for data compression. Recording the events
//! costs O(R) and enables post-hoc analysis without re-running the
//! segmentation:
//!
//! * parallelism profiles (merges per iteration — the quantity the
//!   paper's random-tie-breaking claim is about);
//! * *weight cuts*: replaying only the merges whose union range stayed
//!   within a smaller threshold `w ≤ T` yields a coarser-to-finer family
//!   of partitions from a single run (an approximation of re-running at
//!   `w`, exact for flat-contrast scenes);
//! * region lineage (which squares compose a final region, and when they
//!   joined).

use rg_dsu::DisjointSets;

/// One pairwise merge performed by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeEvent {
    /// Merge iteration (0-based) in which the pair fused.
    pub iteration: u32,
    /// Surviving representative (smaller dense vertex index).
    pub winner: u32,
    /// Absorbed vertex (larger dense index).
    pub loser: u32,
    /// Edge weight at merge time, in 16.16 fixed-point grey levels (the
    /// union range under the pixel-range criterion).
    pub weight_fp16: u64,
}

/// The ordered record of every merge in a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeTrace {
    /// Events in execution order (iteration-major, winner order within an
    /// iteration).
    pub events: Vec<MergeEvent>,
    /// Number of initial regions (dense vertices).
    pub num_vertices: usize,
}

impl MergeTrace {
    /// Creates an empty trace over `num_vertices` initial regions.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            events: Vec::new(),
            num_vertices,
        }
    }

    /// Number of merges recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no merges happened.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges per iteration (zero-merge iterations that produced no event
    /// do not appear; pair with `Segmentation::merges_per_iteration` for
    /// the full profile).
    pub fn merges_per_iteration(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for e in &self.events {
            match out.last_mut() {
                Some((it, n)) if *it == e.iteration => *n += 1,
                _ => out.push((e.iteration, 1)),
            }
        }
        out
    }

    /// Region count after replaying every merge with
    /// `weight_fp16 ≤ (w << 16)` — the weight-cut family.
    pub fn regions_at_cut(&self, w: u32) -> usize {
        self.num_vertices - self.count_until(w)
    }

    /// Labels (representative per vertex, compacted by the caller if
    /// needed) after replaying the merges within the weight cut `w`.
    pub fn labels_at_cut(&self, w: u32) -> Vec<u32> {
        let mut dsu = DisjointSets::new(self.num_vertices);
        let limit = (w as u64) << 16;
        for e in &self.events {
            if e.weight_fp16 <= limit {
                dsu.union_min_rep(e.winner, e.loser);
            }
        }
        (0..self.num_vertices as u32).map(|v| dsu.find(v)).collect()
    }

    /// The "compression curve": for each distinct weight in the trace,
    /// the region count after admitting merges up to that weight,
    /// ascending. Useful for picking a threshold post hoc.
    pub fn compression_curve(&self) -> Vec<(u32, usize)> {
        let mut weights: Vec<u32> = self
            .events
            .iter()
            .map(|e| (e.weight_fp16 >> 16) as u32)
            .collect();
        weights.sort_unstable();
        weights.dedup();
        weights
            .into_iter()
            .map(|w| (w, self.regions_at_cut(w)))
            .collect()
    }

    /// The iteration at which vertex `v` was absorbed (`None` if it
    /// survived as a representative).
    pub fn absorbed_at(&self, v: u32) -> Option<u32> {
        self.events
            .iter()
            .find(|e| e.loser == v)
            .map(|e| e.iteration)
    }

    fn count_until(&self, w: u32) -> usize {
        let limit = (w as u64) << 16;
        // Merges admitted at cut w must still form a forest: a loser dies
        // exactly once globally, so simple counting suffices.
        self.events
            .iter()
            .filter(|e| e.weight_fp16 <= limit)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(iteration: u32, winner: u32, loser: u32, w: u64) -> MergeEvent {
        MergeEvent {
            iteration,
            winner,
            loser,
            weight_fp16: w << 16,
        }
    }

    #[test]
    fn merges_per_iteration_groups() {
        let t = MergeTrace {
            events: vec![ev(0, 0, 1, 1), ev(0, 2, 3, 1), ev(2, 0, 2, 4)],
            num_vertices: 4,
        };
        assert_eq!(t.merges_per_iteration(), vec![(0, 2), (2, 1)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn cuts_partition_consistently() {
        let t = MergeTrace {
            events: vec![ev(0, 0, 1, 2), ev(0, 2, 3, 5), ev(1, 0, 2, 9)],
            num_vertices: 4,
        };
        assert_eq!(t.regions_at_cut(0), 4);
        assert_eq!(t.regions_at_cut(2), 3);
        assert_eq!(t.regions_at_cut(5), 2);
        assert_eq!(t.regions_at_cut(9), 1);
        let l5 = t.labels_at_cut(5);
        assert_eq!(l5, vec![0, 0, 2, 2]);
        let l9 = t.labels_at_cut(9);
        assert_eq!(l9, vec![0, 0, 0, 0]);
    }

    #[test]
    fn compression_curve_monotone() {
        let t = MergeTrace {
            events: vec![ev(0, 0, 1, 2), ev(0, 2, 3, 5), ev(1, 0, 2, 9)],
            num_vertices: 4,
        };
        let curve = t.compression_curve();
        assert_eq!(curve, vec![(2, 3), (5, 2), (9, 1)]);
        for w in curve.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn absorbed_at_lookup() {
        let t = MergeTrace {
            events: vec![ev(0, 0, 3, 1), ev(4, 1, 2, 2)],
            num_vertices: 4,
        };
        assert_eq!(t.absorbed_at(3), Some(0));
        assert_eq!(t.absorbed_at(2), Some(4));
        assert_eq!(t.absorbed_at(0), None);
    }
}
