//! The split stage: bottom-up coalescing of homogeneous squares.
//!
//! *"At first, each pixel is considered a homogeneous square region of size
//! 1×1. Then every group of four adjacent pixels are tested for homogeneity.
//! If the homogeneity criterion is satisfied, the pixels are combined into
//! one larger square region of size 2×2, and so on."*
//!
//! Implementation notes:
//!
//! * The image need not be square or a power of two: the quadtree is taken
//!   over the enclosing power-of-two square, and blocks that are not wholly
//!   inside the image never coalesce (border pixels end up in smaller
//!   squares).
//! * Iteration `k` can only coalesce groups of four *whole* level-(k−1)
//!   squares, so the first unproductive iteration is terminal; like the
//!   paper we report only productive iterations.
//! * [`Config::max_square_log2`] caps square growth; `Some(0)` disables the
//!   stage (the merge-only baseline).
//! * [`split`] and [`split_par`] produce bit-identical results; the latter
//!   parallelises each level over block rows with rayon.

use crate::config::{Config, RegionStats};
use rayon::prelude::*;
use rg_imaging::{Image, Intensity};

/// One homogeneous square produced by the split stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Square {
    /// Column of the top-left pixel.
    pub x: u32,
    /// Row of the top-left pixel.
    pub y: u32,
    /// log2 of the side length (side = `1 << log2`).
    pub log2: u8,
}

impl Square {
    /// Side length in pixels.
    #[inline]
    pub fn side(&self) -> u32 {
        1 << self.log2
    }

    /// The paper's region ID: the linear (row-major) index of the top-left
    /// pixel in the *global* image of width `stride`. IDs are unique,
    /// canonical across all engines (sequential, data-parallel,
    /// message-passing), and their order is the raster order of the squares.
    #[inline]
    pub fn id(&self, stride: u32) -> u32 {
        self.y * stride + self.x
    }
}

/// Output of the split stage.
#[derive(Debug, Clone)]
pub struct SplitResult<P: Intensity> {
    /// The homogeneous squares, sorted by raster order of their top-left
    /// pixel (so the *dense index* of a square orders exactly like its
    /// [`Square::id`]).
    pub squares: Vec<Square>,
    /// Per-square statistics, parallel to `squares`.
    pub stats: Vec<RegionStats<P>>,
    /// For every pixel (row-major), the dense index of its square.
    pub square_of: Vec<u32>,
    /// Number of productive split iterations (≥ 1 coalesce each).
    pub iterations: u32,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

impl<P: Intensity> SplitResult<P> {
    /// Number of square regions found.
    pub fn num_squares(&self) -> usize {
        self.squares.len()
    }
}

impl<P: Intensity> Default for SplitResult<P> {
    fn default() -> Self {
        Self {
            squares: Vec::new(),
            stats: Vec::new(),
            square_of: Vec::new(),
            iterations: 0,
            width: 0,
            height: 0,
        }
    }
}

/// Reusable scratch for [`split_into`]: the per-level stats pyramid, the
/// per-level `is_square` bitmaps, and the maximal-square extraction stack.
///
/// All buffers grow to a high-water mark and are never freed, so running
/// many same-shape images through one scratch performs **zero** heap
/// allocations after the first (warm-up) image.
#[derive(Debug)]
pub struct SplitScratch<P: Intensity> {
    /// `levels[k]`: block grid of optional region stats at level `k` over
    /// the padded power-of-two square. Only the first `top+1` entries are
    /// meaningful for the current run; extra entries from larger past runs
    /// are retained (never freed) for reuse.
    levels: Vec<Vec<Option<RegionStats<P>>>>,
    /// `is_square[k]`: bitmap over the level-`k` block grid.
    is_square: Vec<Vec<bool>>,
    /// Explicit DFS stack for top-down maximal-square extraction.
    stack: Vec<(usize, usize, usize)>,
}

impl<P: Intensity> SplitScratch<P> {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        Self {
            levels: Vec::new(),
            is_square: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Ensures at least `n` level buffers exist (allocating only the outer
    /// `Vec` slots; inner buffers are sized lazily by the fill passes).
    fn ensure_levels(&mut self, n: usize) {
        while self.levels.len() < n {
            self.levels.push(Vec::new());
        }
        while self.is_square.len() < n {
            self.is_square.push(Vec::new());
        }
    }
}

impl<P: Intensity> Default for SplitScratch<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// Fills `scratch.levels[0..=max_level]` with the stats pyramid.
fn build_pyramid_into<P: Intensity>(
    img: &Image<P>,
    max_level: usize,
    parallel: bool,
    levels: &mut [Vec<Option<RegionStats<P>>>],
) {
    let side = img.width().max(img.height()).next_power_of_two();
    let top = (side.trailing_zeros() as usize).min(max_level);

    let base = &mut levels[0];
    base.clear();
    base.resize(side * side, None);
    if parallel {
        base.par_chunks_mut(side).enumerate().for_each(|(y, row)| {
            if y < img.height() {
                for (x, cell) in row.iter_mut().enumerate().take(img.width()) {
                    *cell = Some(RegionStats::of_pixel(img.get(x, y)));
                }
            }
        });
    } else {
        for y in 0..img.height() {
            for x in 0..img.width() {
                base[y * side + x] = Some(RegionStats::of_pixel(img.get(x, y)));
            }
        }
    }

    for k in 1..=top {
        let child_side = side >> (k - 1);
        let this_side = side >> k;
        let (lo, hi) = levels.split_at_mut(k);
        let child = &lo[k - 1];
        let cur = &mut hi[0];
        cur.clear();
        cur.resize(this_side * this_side, None);
        let combine_row = |by: usize, row: &mut [Option<RegionStats<P>>]| {
            for (bx, cell) in row.iter_mut().enumerate() {
                let mut acc: Option<RegionStats<P>> = None;
                for (dy, dx) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
                    if let Some(c) = child[(2 * by + dy) * child_side + (2 * bx + dx)] {
                        acc = Some(match acc {
                            None => c,
                            Some(a) => a.fold(c),
                        });
                    }
                }
                *cell = acc;
            }
        };
        if parallel {
            cur.par_chunks_mut(this_side)
                .enumerate()
                .for_each(|(by, row)| combine_row(by, row));
        } else {
            for (by, row) in cur.chunks_mut(this_side).enumerate() {
                combine_row(by, row);
            }
        }
    }
}

/// Runs the split stage sequentially.
pub fn split<P: Intensity>(img: &Image<P>, config: &Config) -> SplitResult<P> {
    split_impl(img, config, false)
}

/// Runs the split stage with rayon-parallel level passes. Produces exactly
/// the same result as [`split`].
pub fn split_par<P: Intensity>(img: &Image<P>, config: &Config) -> SplitResult<P> {
    split_impl(img, config, true)
}

fn split_impl<P: Intensity>(img: &Image<P>, config: &Config, parallel: bool) -> SplitResult<P> {
    let mut scratch = SplitScratch::new();
    let mut out = SplitResult::default();
    split_into(img, config, parallel, &mut scratch, &mut out);
    out
}

/// Runs the split stage into caller-owned buffers: all intermediate state
/// lives in `scratch` and the result is written into `out` (cleared first).
///
/// Produces exactly the same result as [`split`] / [`split_par`] (selected
/// by `parallel`), but performs **no heap allocation** once `scratch` and
/// `out` have warmed up to the high-water mark of the image shapes seen.
pub fn split_into<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    parallel: bool,
    scratch: &mut SplitScratch<P>,
    out: &mut SplitResult<P>,
) {
    let (w, h) = (img.width(), img.height());
    let side = w.max(h).next_power_of_two();
    let top_possible = side.trailing_zeros() as usize;
    let cap = config
        .max_square_log2
        .map(|m| m as usize)
        .unwrap_or(top_possible)
        .min(top_possible);

    scratch.ensure_levels(cap + 1);
    build_pyramid_into(img, cap, parallel, &mut scratch.levels);

    // is_square[k] : bitmap over the level-k block grid; level 0 squares are
    // exactly the real pixels.
    {
        let l0 = &mut scratch.is_square[0];
        l0.clear();
        l0.resize(side * side, false);
        for y in 0..h {
            for cell in &mut l0[y * side..y * side + w] {
                *cell = true;
            }
        }
    }

    let mut iterations = 0u32;
    // Highest level actually written this run (the first unproductive level
    // is still written before the loop breaks, matching the paper's "first
    // unproductive iteration is terminal" probe).
    let mut top = 0usize;
    for k in 1..=cap {
        let this_side = side >> k;
        let child_side = side >> (k - 1);
        let child_stats = &scratch.levels[k - 1];
        let t = config.threshold;
        let crit = config.criterion;
        let b = 1usize << k;

        let (sq_lo, sq_hi) = scratch.is_square.split_at_mut(k);
        let child_sq = &sq_lo[k - 1];
        let cur = &mut sq_hi[0];
        cur.clear();
        cur.resize(this_side * this_side, false);

        let decide = |bx: usize, by: usize| -> bool {
            // The block must lie wholly inside the image...
            if (bx + 1) * b > w || (by + 1) * b > h {
                return false;
            }
            // ...its four children must currently be whole squares...
            let mut kids = [RegionStats::of_pixel(P::MIN_VALUE); 4];
            for (i, (dy, dx)) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)]
                .into_iter()
                .enumerate()
            {
                let ci = (2 * by + dy) * child_side + (2 * bx + dx);
                if !child_sq[ci] {
                    return false;
                }
                kids[i] = child_stats[ci].expect("whole child square has stats");
            }
            // ...and the combination must be homogeneous.
            crit.combine_ok(&kids, t)
        };

        if parallel {
            cur.par_chunks_mut(this_side)
                .enumerate()
                .for_each(|(by, row)| {
                    for (bx, cell) in row.iter_mut().enumerate() {
                        *cell = decide(bx, by);
                    }
                });
        } else {
            for (by, row) in cur.chunks_mut(this_side).enumerate() {
                for (bx, cell) in row.iter_mut().enumerate() {
                    *cell = decide(bx, by);
                }
            }
        }

        let any = cur.iter().any(|&s| s);
        top = k;
        if any {
            iterations += 1;
        } else {
            break;
        }
    }

    // Extract maximal squares, top-down (a square is maximal when no
    // ancestor block is itself a square).
    let squares = &mut out.squares;
    squares.clear();
    // Seed the traversal with every block of the top processed level (the
    // top level may be below the pyramid apex when the loop ended early or
    // a cap is set).
    let top_grid = side >> top;
    let stack = &mut scratch.stack;
    stack.clear();
    for by in (0..top_grid).rev() {
        for bx in (0..top_grid).rev() {
            stack.push((top, bx, by));
        }
    }
    while let Some((k, bx, by)) = stack.pop() {
        let b = 1usize << k;
        let (x0, y0) = (bx * b, by * b);
        if x0 >= w || y0 >= h {
            continue; // block entirely in the padding
        }
        let this_side = side >> k;
        if scratch.is_square[k][by * this_side + bx] {
            squares.push(Square {
                x: x0 as u32,
                y: y0 as u32,
                log2: k as u8,
            });
        } else if k > 0 {
            // Push in reverse Morton order so pops visit TL, TR, BL, BR.
            for (dy, dx) in [(1usize, 1usize), (1, 0), (0, 1), (0, 0)] {
                stack.push((k - 1, 2 * bx + dx, 2 * by + dy));
            }
        }
    }

    // Canonical order: raster order of the top-left pixel, which makes the
    // dense square index order-isomorphic to Square::id.
    squares.sort_unstable_by_key(|s| (s.y, s.x));

    // Per-square stats and the pixel -> square map.
    let stats = &mut out.stats;
    stats.clear();
    stats.reserve(squares.len());
    let square_of = &mut out.square_of;
    square_of.clear();
    square_of.resize(w * h, u32::MAX);
    for (i, s) in squares.iter().enumerate() {
        let k = s.log2 as usize;
        let this_side = side >> k;
        let st = scratch.levels[k][(s.y as usize >> k) * this_side + (s.x as usize >> k)]
            .expect("emitted square has stats");
        stats.push(st);
        for y in s.y as usize..s.y as usize + s.side() as usize {
            for cell in
                &mut square_of[y * w + s.x as usize..y * w + s.x as usize + s.side() as usize]
            {
                *cell = i as u32;
            }
        }
    }
    debug_assert!(square_of.iter().all(|&q| q != u32::MAX));

    out.iterations = iterations;
    out.width = w;
    out.height = h;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Criterion;
    use rg_imaging::synth;

    fn cfg(t: u32) -> Config {
        Config::with_threshold(t)
    }

    #[test]
    fn figure1_split() {
        // Paper Figure 1: 4×4 image, T = 3 → after one iteration, three 2×2
        // squares coalesce (top-left, bottom-left, bottom-right); the
        // top-right quadrant stays four 1×1 squares. 7 squares total.
        let img = synth::figure1_image();
        let r = split(&img, &cfg(3));
        assert_eq!(r.iterations, 1);
        assert_eq!(r.num_squares(), 7);
        let sides: Vec<(u32, u32, u32)> = r.squares.iter().map(|s| (s.x, s.y, s.side())).collect();
        assert!(sides.contains(&(0, 0, 2)));
        assert!(sides.contains(&(0, 2, 2)));
        assert!(sides.contains(&(2, 2, 2)));
        assert!(sides.contains(&(2, 0, 1)));
        assert!(sides.contains(&(3, 0, 1)));
        assert!(sides.contains(&(2, 1, 1)));
        assert!(sides.contains(&(3, 1, 1)));
        // Stats of the top-left square: {6,7,8,6}.
        let tl = r.squares.iter().position(|s| (s.x, s.y) == (0, 0)).unwrap();
        assert_eq!(r.stats[tl].min, 6);
        assert_eq!(r.stats[tl].max, 8);
        assert_eq!(r.stats[tl].sum, 27);
        assert_eq!(r.stats[tl].count, 4);
    }

    #[test]
    fn uniform_image_becomes_one_square() {
        let img: Image<u8> = Image::new(16, 16, 42);
        let r = split(&img, &cfg(0));
        assert_eq!(r.num_squares(), 1);
        assert_eq!(r.squares[0].side(), 16);
        assert_eq!(r.iterations, 4); // 2,4,8,16
    }

    #[test]
    fn worst_case_checkerboard_one_unproductive_probe() {
        // 1-pixel checkerboard with contrast > T: nothing ever coalesces.
        let img = synth::checkerboard(8, 1, 0, 200);
        let r = split(&img, &cfg(10));
        assert_eq!(r.iterations, 0);
        assert_eq!(r.num_squares(), 64);
        assert!(r.squares.iter().all(|s| s.side() == 1));
    }

    #[test]
    fn cap_limits_square_growth() {
        let img: Image<u8> = Image::new(32, 32, 7);
        let r = split(&img, &cfg(5).max_square_log2(Some(3)));
        assert!(r.squares.iter().all(|s| s.side() == 8));
        assert_eq!(r.num_squares(), 16);
        assert_eq!(r.iterations, 3);
        // Cap 0 = merge-only baseline: every pixel is a square.
        let r0 = split(&img, &cfg(5).max_square_log2(Some(0)));
        assert_eq!(r0.num_squares(), 32 * 32);
        assert_eq!(r0.iterations, 0);
    }

    #[test]
    fn non_pow2_image_border_stays_fine() {
        let img: Image<u8> = Image::new(10, 6, 9);
        let r = split(&img, &cfg(0));
        // Coverage is exact.
        let mut covered = [false; 60];
        for s in &r.squares {
            for y in s.y..s.y + s.side() {
                for x in s.x..s.x + s.side() {
                    assert!(x < 10 && y < 6, "square leaks outside image");
                    let i = (y * 10 + x) as usize;
                    assert!(!covered[i], "double cover at ({x},{y})");
                    covered[i] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
        // The largest possible square in a 10×6 uniform image is 4 (at
        // aligned positions 0 and 4); column 8..10 gives 2s and the bottom
        // rows 4..6 give 2s.
        assert!(r.squares.iter().all(|s| s.side() <= 4));
        assert!(r.squares.iter().any(|s| s.side() == 4));
    }

    #[test]
    fn squares_sorted_by_raster_order_and_ids_increase() {
        let img = synth::rect_collection(64);
        let r = split(&img, &cfg(10));
        for w in r.squares.windows(2) {
            assert!((w[0].y, w[0].x) < (w[1].y, w[1].x));
            assert!(w[0].id(64) < w[1].id(64));
        }
    }

    #[test]
    fn square_of_consistent_with_squares() {
        let img = synth::circle_collection(64);
        let r = split(&img, &cfg(10));
        for (i, s) in r.squares.iter().enumerate() {
            assert_eq!(r.square_of[(s.y as usize) * 64 + s.x as usize], i as u32);
        }
        // Every pixel's square actually contains it.
        for y in 0..64usize {
            for x in 0..64usize {
                let s = r.squares[r.square_of[y * 64 + x] as usize];
                assert!(x >= s.x as usize && x < (s.x + s.side()) as usize);
                assert!(y >= s.y as usize && y < (s.y + s.side()) as usize);
            }
        }
    }

    #[test]
    fn every_square_homogeneous_and_maximal() {
        let img = synth::random_rects(48, 48, 8, 3);
        let t = 12;
        let r = split(&img, &cfg(t));
        for (s, st) in r.squares.iter().zip(&r.stats) {
            // Homogeneous.
            assert!(
                st.range() <= t,
                "square at ({},{}) range {}",
                s.x,
                s.y,
                st.range()
            );
            // Stats correct (recompute brute force).
            let mut lo = u8::MAX;
            let mut hi = u8::MIN;
            let mut sum = 0u64;
            for y in s.y..s.y + s.side() {
                for x in s.x..s.x + s.side() {
                    let p = img.get(x as usize, y as usize);
                    lo = lo.min(p);
                    hi = hi.max(p);
                    sum += p as u64;
                }
            }
            assert_eq!(
                (st.min, st.max, st.sum, st.count),
                (lo, hi, sum, (s.side() as u64).pow(2))
            );
        }
    }

    #[test]
    fn par_matches_seq() {
        for seed in 0..4 {
            let img = synth::random_rects(96, 64, 10, seed);
            for t in [0, 5, 40] {
                let a = split(&img, &cfg(t));
                let b = split_par(&img, &cfg(t));
                assert_eq!(a.squares, b.squares);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.square_of, b.square_of);
                assert_eq!(a.iterations, b.iterations);
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_across_shapes() {
        // One scratch + one output buffer, reused across images of varying
        // shapes and configs, must produce bit-identical results to fresh
        // calls (including after shrinking from a larger image).
        let mut scratch = SplitScratch::new();
        let mut out = SplitResult::default();
        let images = [
            synth::random_rects(96, 64, 10, 1),
            synth::random_rects(32, 32, 6, 2),
            synth::random_rects(96, 64, 10, 3),
            synth::random_rects(17, 9, 4, 4),
        ];
        for img in &images {
            for t in [0u32, 8, 40] {
                for parallel in [false, true] {
                    let fresh = split_impl(img, &cfg(t), parallel);
                    split_into(img, &cfg(t), parallel, &mut scratch, &mut out);
                    assert_eq!(fresh.squares, out.squares);
                    assert_eq!(fresh.stats, out.stats);
                    assert_eq!(fresh.square_of, out.square_of);
                    assert_eq!(fresh.iterations, out.iterations);
                    assert_eq!((fresh.width, fresh.height), (out.width, out.height));
                }
            }
        }
    }

    #[test]
    fn mean_criterion_split() {
        // For singleton pixels the two criteria coincide (max pairwise
        // value difference = range), so the divergence shows at level 2:
        // blocks whose means are close but whose pooled range is wide
        // coalesce under MeanDifference only.
        #[rustfmt::skip]
        let img: Image<u8> = Image::from_vec(4, 4, vec![
            0, 8,  4, 12,
            8, 0, 12,  4,
            4, 12, 0,  8,
            12, 4, 8,  0,
        ]);
        let range_cfg = cfg(8);
        let mean_cfg = cfg(8).criterion(Criterion::MeanDifference);
        // Both coalesce the four 2×2 blocks (internal diffs ≤ 8) ...
        let r = split(&img, &range_cfg);
        assert_eq!(r.num_squares(), 4);
        assert!(r.squares.iter().all(|s| s.side() == 2));
        // ... but only the mean criterion accepts the 4×4 (means all 6,
        // pooled range 12 > 8).
        assert_eq!(split(&img, &mean_cfg).num_squares(), 1);
    }
}
