//! The split stage: bottom-up coalescing of homogeneous squares.
//!
//! *"At first, each pixel is considered a homogeneous square region of size
//! 1×1. Then every group of four adjacent pixels are tested for homogeneity.
//! If the homogeneity criterion is satisfied, the pixels are combined into
//! one larger square region of size 2×2, and so on."*
//!
//! Implementation notes:
//!
//! * Per level `k` the block statistics live in packed structure-of-arrays
//!   planes (`min` / `max` / `sum`, one flat lane each) over the **tight**
//!   floor grid `(w >> k) × (h >> k)` — only blocks wholly inside the image
//!   ever have their stats consumed, and such blocks form exactly that
//!   rectangle, so no `Option` tag, no validity mask and no padding to the
//!   enclosing power-of-two square are needed. The level-to-level fold is a
//!   branch-free 2×2 gather + lane min/max/add (see [`crate::kernels`]).
//! * `is_square` levels are packed `u64` bitsets over the ceil grid
//!   `⌈w/2ᵏ⌉ × ⌈h/2ᵏ⌉`. The "four whole child squares" test runs a word at
//!   a time: two [`crate::kernels::coalesce_pair_words`] calls AND 128
//!   child bits down to one 64-block parent word, and all-zero candidate
//!   words skip the criterion entirely. A partially-outside block can never
//!   have four whole children (induction from level 0 = real pixels), so
//!   the old per-block bounds test is implied by the child bits.
//! * Iteration `k` can only coalesce groups of four *whole* level-(k−1)
//!   squares, so the first unproductive iteration is terminal; like the
//!   paper we report only productive iterations.
//! * [`Config::max_square_log2`] caps square growth; `Some(0)` disables the
//!   stage (the merge-only baseline).
//! * [`split`] and [`split_par`] produce bit-identical results; the latter
//!   parallelises each level over block rows with rayon. Both are
//!   bit-identical to the retained pre-optimisation oracle
//!   [`crate::split_ref::split_reference`] (differential-proptested).

use crate::config::{Config, Criterion, RegionStats};
use crate::kernels::{
    coalesce_pair_words, gather2x2, lane_max4, lane_min4, lane_sum4, range_pair_satisfies,
};
use rayon::prelude::*;
use rg_imaging::{Image, Intensity};

/// One homogeneous square produced by the split stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Square {
    /// Column of the top-left pixel.
    pub x: u32,
    /// Row of the top-left pixel.
    pub y: u32,
    /// log2 of the side length (side = `1 << log2`).
    pub log2: u8,
}

impl Square {
    /// Side length in pixels.
    #[inline]
    pub fn side(&self) -> u32 {
        1 << self.log2
    }

    /// The paper's region ID: the linear (row-major) index of the top-left
    /// pixel in the *global* image of width `stride`. IDs are unique,
    /// canonical across all engines (sequential, data-parallel,
    /// message-passing), and their order is the raster order of the squares.
    #[inline]
    pub fn id(&self, stride: u32) -> u32 {
        self.y * stride + self.x
    }
}

/// Machine-independent work counters of one split run.
///
/// All counts are deterministic functions of the image shape, contents and
/// config — identical between the sequential and rayon paths — which makes
/// them usable as perf-regression gates (`bench_record split`) on any
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitMetrics {
    /// Stats-plane levels materialised, including level 0.
    pub levels_built: u32,
    /// Levels with at least one coalesce (equals `iterations`).
    pub productive_levels: u32,
    /// Homogeneity/coalesce test operations: packed candidate words for the
    /// word-parallel engine, scalar block probes for the reference oracle.
    pub words_tested: u64,
    /// Stats cells written by pyramid folds (level-0 fill included).
    pub cells_folded: u64,
}

/// Output of the split stage.
#[derive(Debug, Clone)]
pub struct SplitResult<P: Intensity> {
    /// The homogeneous squares, sorted by raster order of their top-left
    /// pixel (so the *dense index* of a square orders exactly like its
    /// [`Square::id`]).
    pub squares: Vec<Square>,
    /// Per-square statistics, parallel to `squares`.
    pub stats: Vec<RegionStats<P>>,
    /// For every pixel (row-major), the dense index of its square.
    pub square_of: Vec<u32>,
    /// Number of productive split iterations (≥ 1 coalesce each).
    pub iterations: u32,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Work counters of this run (engine-internal; excluded from
    /// cross-engine conformance).
    pub metrics: SplitMetrics,
}

impl<P: Intensity> SplitResult<P> {
    /// Number of square regions found.
    pub fn num_squares(&self) -> usize {
        self.squares.len()
    }
}

impl<P: Intensity> Default for SplitResult<P> {
    fn default() -> Self {
        Self {
            squares: Vec::new(),
            stats: Vec::new(),
            square_of: Vec::new(),
            iterations: 0,
            width: 0,
            height: 0,
            metrics: SplitMetrics::default(),
        }
    }
}

/// One level of the stats pyramid: packed structure-of-arrays planes over
/// the tight floor grid (no `Option` tags — every cell is a whole in-image
/// block by construction).
#[derive(Debug)]
struct PlaneLevel<P: Intensity> {
    min: Vec<P>,
    max: Vec<P>,
    sum: Vec<u64>,
}

impl<P: Intensity> PlaneLevel<P> {
    fn new() -> Self {
        Self {
            min: Vec::new(),
            max: Vec::new(),
            sum: Vec::new(),
        }
    }

    /// Re-dimensions the planes for `cells` blocks, keeping capacity.
    fn reset(&mut self, cells: usize) {
        self.min.clear();
        self.min.resize(cells, P::MIN_VALUE);
        self.max.clear();
        self.max.resize(cells, P::MIN_VALUE);
        self.sum.clear();
        self.sum.resize(cells, 0);
    }
}

/// Packed `u64` bitset over a 2-D block grid, one bit per block, row-major
/// words. Each row owns `wpr` words: `⌈width/64⌉` data words plus one
/// always-zero spare so the parent level's pair-coalesce may read child
/// word `2j+1` unconditionally.
#[derive(Debug, Default)]
struct BitGrid {
    words: Vec<u64>,
    width: usize,
    height: usize,
    wpr: usize,
}

impl BitGrid {
    /// Re-dimensions (and zeroes) the grid, keeping capacity.
    fn reset(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        self.wpr = width.div_ceil(64) + 1;
        self.words.clear();
        self.words.resize(self.wpr * height, 0);
    }

    #[inline]
    fn get(&self, x: usize, y: usize) -> bool {
        debug_assert!(x < self.width && y < self.height);
        (self.words[y * self.wpr + x / 64] >> (x % 64)) & 1 == 1
    }

    fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }
}

/// Reusable scratch for [`split_into`]: the per-level SoA stats planes, the
/// packed per-level `is_square` bitsets, and the maximal-square extraction
/// stack.
///
/// All buffers grow to a high-water mark and are never freed, so running
/// many same-shape images through one scratch performs **zero** heap
/// allocations after the first (warm-up) image. Sizing is **tight**: a
/// `w × h` image allocates `w·h (1 + 1/4 + 1/16 + …) < 4/3·w·h` stats
/// cells, never the enclosing power-of-two square (a 513×100 image does
/// *not* pay for 1024² cells — pinned by a regression test).
#[derive(Debug)]
pub struct SplitScratch<P: Intensity> {
    /// `levels[k]`: stats planes over the level-`k` floor grid
    /// `(w >> k) × (h >> k)`.
    levels: Vec<PlaneLevel<P>>,
    /// `bits[k]` (`k ≥ 1`): packed `is_square` bitset over the level-`k`
    /// ceil grid. Index 0 is an always-empty placeholder — level-0 squares
    /// are exactly the real pixels and are never materialised.
    bits: Vec<BitGrid>,
    /// Explicit DFS stack for top-down maximal-square extraction.
    stack: Vec<(usize, usize, usize)>,
    /// Per-row bucket offsets for the counting sort of extracted squares
    /// (`h + 1` entries while in use).
    sort_rows: Vec<u32>,
    /// Scatter target of the counting sort (swapped with the output vec).
    sort_tmp: Vec<Square>,
}

impl<P: Intensity> SplitScratch<P> {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        Self {
            levels: Vec::new(),
            bits: Vec::new(),
            stack: Vec::new(),
            sort_rows: Vec::new(),
            sort_tmp: Vec::new(),
        }
    }

    /// Ensures at least `n` level slots exist (outer `Vec`s only; inner
    /// buffers are sized lazily by the fill passes).
    fn ensure_levels(&mut self, n: usize) {
        while self.levels.len() < n {
            self.levels.push(PlaneLevel::new());
        }
        while self.bits.len() < n {
            self.bits.push(BitGrid::default());
        }
    }

    /// Pre-sizes the level-0 planes (the dominant allocation) for a
    /// `width × height` image, so a planned warm-up run takes fewer growth
    /// reallocations.
    pub fn prepare(&mut self, width: usize, height: usize) {
        self.ensure_levels(1);
        let px = width * height;
        let l0 = &mut self.levels[0];
        if l0.min.capacity() < px {
            l0.min.reserve(px - l0.min.len());
        }
        if l0.max.capacity() < px {
            l0.max.reserve(px - l0.max.len());
        }
        if l0.sum.capacity() < px {
            l0.sum.reserve(px - l0.sum.len());
        }
    }

    /// Total stats-plane cells currently allocated across all levels — the
    /// scratch's high-water stats footprint. The padding regression test
    /// pins this to the tight geometric series of the actual rectangle.
    pub fn plane_cells(&self) -> usize {
        self.levels.iter().map(|l| l.min.capacity()).sum()
    }

    /// Total packed bitset words currently allocated across all levels.
    pub fn bitset_words(&self) -> usize {
        self.bits.iter().map(|b| b.words.capacity()).sum()
    }
}

impl<P: Intensity> Default for SplitScratch<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs the split stage sequentially.
pub fn split<P: Intensity>(img: &Image<P>, config: &Config) -> SplitResult<P> {
    split_impl(img, config, false)
}

/// Runs the split stage with rayon-parallel level passes. Produces exactly
/// the same result as [`split`].
pub fn split_par<P: Intensity>(img: &Image<P>, config: &Config) -> SplitResult<P> {
    split_impl(img, config, true)
}

fn split_impl<P: Intensity>(img: &Image<P>, config: &Config, parallel: bool) -> SplitResult<P> {
    let mut scratch = SplitScratch::new();
    let mut out = SplitResult::default();
    split_into(img, config, parallel, &mut scratch, &mut out);
    out
}

/// Dispatches one function over the block rows of `buf` (chunks of
/// `stride`), sequentially or with rayon, visiting only rows `0..rows`.
fn for_rows<T: Send, F>(buf: &mut [T], stride: usize, rows: usize, parallel: bool, f: F)
where
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    if rows == 0 || stride == 0 {
        return;
    }
    if parallel {
        buf.par_chunks_mut(stride).enumerate().for_each(|(y, row)| {
            if y < rows {
                f(y, row);
            }
        });
    } else {
        for (y, row) in buf.chunks_mut(stride).enumerate().take(rows) {
            f(y, row);
        }
    }
}

/// Fills the level-0 planes: `min = max = pixel`, `sum` = widened pixel.
fn fill_level0<P: Intensity>(img: &Image<P>, l0: &mut PlaneLevel<P>, parallel: bool) {
    let (w, h) = (img.width(), img.height());
    l0.reset(w * h);
    l0.min.copy_from_slice(img.pixels());
    l0.max.copy_from_slice(img.pixels());
    for_rows(&mut l0.sum, w, h, parallel, |y, row| {
        for (s, &p) in row.iter_mut().zip(img.row(y)) {
            *s = p.to_u32() as u64;
        }
    });
}

/// Folds the level-`k` stats planes from level `k−1`: three branch-free
/// lane passes (min, max, sum) over the tight floor grid.
fn fold_level<P: Intensity>(
    levels: &mut [PlaneLevel<P>],
    k: usize,
    w: usize,
    h: usize,
    parallel: bool,
) {
    let (fw, fh) = (w >> k, h >> k);
    let cfw = w >> (k - 1);
    let (lo, hi) = levels.split_at_mut(k);
    let child = &lo[k - 1];
    let cur = &mut hi[0];
    cur.reset(fw * fh);
    if fw == 0 || fh == 0 {
        return;
    }
    let cmin = &child.min;
    for_rows(&mut cur.min, fw, fh, parallel, |by, row| {
        for (bx, cell) in row.iter_mut().enumerate() {
            *cell = lane_min4(gather2x2(cmin, cfw, bx, by));
        }
    });
    let cmax = &child.max;
    for_rows(&mut cur.max, fw, fh, parallel, |by, row| {
        for (bx, cell) in row.iter_mut().enumerate() {
            *cell = lane_max4(gather2x2(cmax, cfw, bx, by));
        }
    });
    let csum = &child.sum;
    for_rows(&mut cur.sum, fw, fh, parallel, |by, row| {
        for (bx, cell) in row.iter_mut().enumerate() {
            *cell = lane_sum4(gather2x2(csum, cfw, bx, by));
        }
    });
}

/// Mask selecting the low `lanes` bits of a word.
#[inline]
fn lanes_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// The "four whole child squares" test for 64 parent candidates at once.
/// At level 1 the children are raw pixels, whole by definition inside the
/// floor rect (the caller masks to it).
#[inline]
fn children_ok_word(child_words: &[u64], child_wpr: usize, k: usize, by: usize, j: usize) -> u64 {
    if k == 1 {
        !0
    } else {
        let top = 2 * by * child_wpr + 2 * j;
        let bot = top + child_wpr;
        coalesce_pair_words(child_words[top], child_words[top + 1])
            & coalesce_pair_words(child_words[bot], child_words[bot + 1])
    }
}

/// Decides `is_square` for level `k`, writing the packed bitset. Candidate
/// words that are all-zero after the child coalesce skip the criterion.
#[allow(clippy::too_many_arguments)]
fn decide_level<P: Intensity>(
    levels: &[PlaneLevel<P>],
    bits: &mut [BitGrid],
    k: usize,
    w: usize,
    h: usize,
    crit: Criterion,
    t: u32,
    parallel: bool,
) {
    let (fw, fh) = (w >> k, h >> k);
    let (cw, ch) = ((w + (1 << k) - 1) >> k, (h + (1 << k) - 1) >> k);
    let (bits_lo, bits_hi) = bits.split_at_mut(k);
    let cur = &mut bits_hi[0];
    cur.reset(cw, ch);
    if fw == 0 || fh == 0 {
        return;
    }
    let nw = fw.div_ceil(64);
    let wpr = cur.wpr;
    let (child_words, child_wpr): (&[u64], usize) = if k >= 2 {
        (&bits_lo[k - 1].words, bits_lo[k - 1].wpr)
    } else {
        (&[], 0)
    };

    match crit {
        Criterion::PixelRange => {
            // The block's range is the range of its (already folded)
            // level-k stats: one branch-free compare per lane, 64 lanes
            // per candidate word.
            let (minp, maxp) = (&levels[k].min, &levels[k].max);
            for_rows(&mut cur.words, wpr, fh, parallel, |by, row| {
                for (j, slot) in row.iter_mut().enumerate().take(nw) {
                    let lanes = (fw - 64 * j).min(64);
                    let cok =
                        children_ok_word(child_words, child_wpr, k, by, j) & lanes_mask(lanes);
                    if cok == 0 {
                        continue;
                    }
                    let off = by * fw + 64 * j;
                    let mut rb = 0u64;
                    for i in 0..lanes {
                        let ok =
                            range_pair_satisfies(minp[off + i].to_u32(), maxp[off + i].to_u32(), t);
                        rb |= (ok as u64) << i;
                    }
                    *slot = cok & rb;
                }
            });
        }
        Criterion::MeanDifference => {
            // Pairwise child-mean tests need the four child stats, so walk
            // the surviving candidate bits and gather from level k−1.
            let child = &levels[k - 1];
            let (cmin, cmax, csum) = (&child.min, &child.max, &child.sum);
            let cfw = w >> (k - 1);
            let ccount = 1u64 << (2 * (k - 1));
            for_rows(&mut cur.words, wpr, fh, parallel, |by, row| {
                for (j, slot) in row.iter_mut().enumerate().take(nw) {
                    let lanes = (fw - 64 * j).min(64);
                    let mut cok =
                        children_ok_word(child_words, child_wpr, k, by, j) & lanes_mask(lanes);
                    if cok == 0 {
                        continue;
                    }
                    let mut bits_out = 0u64;
                    while cok != 0 {
                        let i = cok.trailing_zeros() as usize;
                        cok &= cok - 1;
                        let bx = 64 * j + i;
                        let mn = gather2x2(cmin, cfw, bx, by);
                        let mx = gather2x2(cmax, cfw, bx, by);
                        let sm = gather2x2(csum, cfw, bx, by);
                        let kids = [0usize, 1, 2, 3].map(|q| RegionStats {
                            min: mn[q],
                            max: mx[q],
                            sum: sm[q],
                            count: ccount,
                        });
                        if crit.combine_ok(&kids, t) {
                            bits_out |= 1 << i;
                        }
                    }
                    *slot = bits_out;
                }
            });
        }
    }
}

/// Runs the split stage into caller-owned buffers: all intermediate state
/// lives in `scratch` and the result is written into `out` (cleared first).
///
/// Produces exactly the same result as [`split`] / [`split_par`] (selected
/// by `parallel`), but performs **no heap allocation** once `scratch` and
/// `out` have warmed up to the high-water mark of the image shapes seen.
pub fn split_into<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    parallel: bool,
    scratch: &mut SplitScratch<P>,
    out: &mut SplitResult<P>,
) {
    let (w, h) = (img.width(), img.height());
    let top_possible = w.max(h).next_power_of_two().trailing_zeros() as usize;
    let cap = config
        .max_square_log2
        .map(|m| m as usize)
        .unwrap_or(top_possible)
        .min(top_possible);
    let t = config.threshold;
    let crit = config.criterion;

    scratch.ensure_levels(cap + 1);
    let SplitScratch {
        levels,
        bits,
        stack,
        sort_rows,
        sort_tmp,
    } = scratch;
    let mut metrics = SplitMetrics::default();

    fill_level0(img, &mut levels[0], parallel);
    metrics.levels_built = 1;
    metrics.cells_folded += (w * h) as u64;

    let mut iterations = 0u32;
    // Highest level actually probed this run (the first unproductive level
    // still gets its bitset written before the loop breaks, matching the
    // paper's "first unproductive iteration is terminal" probe).
    let mut top = 0usize;
    for k in 1..=cap {
        let (fw, fh) = (w >> k, h >> k);
        top = k;

        // Under the range criterion the level-k fold comes first — the
        // candidate test *is* a range check on the folded stats. The mean
        // criterion tests child pairs instead, so its fold is deferred
        // until the level is known productive (skipping the apex probe).
        let fold_first = matches!(crit, Criterion::PixelRange);
        if fold_first {
            fold_level(levels, k, w, h, parallel);
            metrics.levels_built += 1;
            metrics.cells_folded += (fw * fh) as u64;
        }

        decide_level(levels, bits, k, w, h, crit, t, parallel);
        metrics.words_tested += (fh * fw.div_ceil(64)) as u64;

        if !bits[k].any() {
            break;
        }
        if !fold_first {
            fold_level(levels, k, w, h, parallel);
            metrics.levels_built += 1;
            metrics.cells_folded += (fw * fh) as u64;
        }
        iterations += 1;
    }
    metrics.productive_levels = iterations;

    // Extract maximal squares, top-down (a square is maximal when no
    // ancestor block is itself a square). Seeds cover the ceil grid of the
    // top processed level, so partially-inside border blocks descend.
    let squares = &mut out.squares;
    squares.clear();
    if top == 0 {
        // Merge-only baseline (or 1×1 image): every pixel is a square.
        squares.reserve(w * h);
        for y in 0..h {
            for x in 0..w {
                squares.push(Square {
                    x: x as u32,
                    y: y as u32,
                    log2: 0,
                });
            }
        }
    } else {
        stack.clear();
        let (tcw, tch) = ((w + (1 << top) - 1) >> top, (h + (1 << top) - 1) >> top);
        for by in (0..tch).rev() {
            for bx in (0..tcw).rev() {
                stack.push((top, bx, by));
            }
        }
        while let Some((k, bx, by)) = stack.pop() {
            let (x0, y0) = (bx << k, by << k);
            if x0 >= w || y0 >= h {
                continue; // block entirely outside the image
            }
            if k == 0 {
                squares.push(Square {
                    x: x0 as u32,
                    y: y0 as u32,
                    log2: 0,
                });
            } else if bits[k].get(bx, by) {
                squares.push(Square {
                    x: x0 as u32,
                    y: y0 as u32,
                    log2: k as u8,
                });
            } else {
                // Push in reverse Morton order so pops visit TL, TR, BL, BR.
                for (dy, dx) in [(1usize, 1usize), (1, 0), (0, 1), (0, 0)] {
                    stack.push((k - 1, 2 * bx + dx, 2 * by + dy));
                }
            }
        }

        // Canonical order: raster order of the top-left corner, which makes
        // the dense square index order-isomorphic to `Square::id`. The DFS
        // emits top-block rows top-to-bottom and Z-order inside each block,
        // so corners on any fixed row already appear left-to-right — a
        // stable counting sort on `y` alone restores full raster order in
        // O(n + h) instead of a comparison sort (the dominant extraction
        // cost on fragmented scenes).
        sort_rows.clear();
        sort_rows.resize(h + 1, 0);
        for s in squares.iter() {
            sort_rows[s.y as usize + 1] += 1;
        }
        for y in 0..h {
            sort_rows[y + 1] += sort_rows[y];
        }
        sort_tmp.clear();
        sort_tmp.resize(
            squares.len(),
            Square {
                x: 0,
                y: 0,
                log2: 0,
            },
        );
        for s in squares.iter() {
            let slot = &mut sort_rows[s.y as usize];
            sort_tmp[*slot as usize] = *s;
            *slot += 1;
        }
        std::mem::swap(squares, sort_tmp);
        // Belt-and-braces: if the x-monotonicity invariant ever broke, fall
        // back to the comparison sort rather than emit out of order.
        if !squares
            .windows(2)
            .all(|p| (p[0].y, p[0].x) < (p[1].y, p[1].x))
        {
            debug_assert!(false, "DFS emission lost within-row x order");
            squares.sort_unstable_by_key(|s| (s.y, s.x));
        }
    }

    // Per-square stats (read from the tight planes; count is the constant
    // 4^k of a whole level-k block) and the pixel -> square map.
    let stats = &mut out.stats;
    stats.clear();
    stats.reserve(squares.len());
    let square_of = &mut out.square_of;
    square_of.clear();
    square_of.resize(w * h, u32::MAX);
    for (i, s) in squares.iter().enumerate() {
        let k = s.log2 as usize;
        let fwk = w >> k;
        let idx = ((s.y as usize) >> k) * fwk + ((s.x as usize) >> k);
        let lvl = &levels[k];
        stats.push(RegionStats {
            min: lvl.min[idx],
            max: lvl.max[idx],
            sum: lvl.sum[idx],
            count: 1u64 << (2 * k),
        });
        if s.log2 == 0 {
            // Pixel squares dominate fragmented scenes; skip the loop setup.
            square_of[s.y as usize * w + s.x as usize] = i as u32;
        } else {
            for y in s.y as usize..s.y as usize + s.side() as usize {
                for cell in
                    &mut square_of[y * w + s.x as usize..y * w + s.x as usize + s.side() as usize]
                {
                    *cell = i as u32;
                }
            }
        }
    }
    debug_assert!(square_of.iter().all(|&q| q != u32::MAX));

    out.iterations = iterations;
    out.width = w;
    out.height = h;
    out.metrics = metrics;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Criterion;
    use rg_imaging::synth;

    fn cfg(t: u32) -> Config {
        Config::with_threshold(t)
    }

    #[test]
    fn figure1_split() {
        // Paper Figure 1: 4×4 image, T = 3 → after one iteration, three 2×2
        // squares coalesce (top-left, bottom-left, bottom-right); the
        // top-right quadrant stays four 1×1 squares. 7 squares total.
        let img = synth::figure1_image();
        let r = split(&img, &cfg(3));
        assert_eq!(r.iterations, 1);
        assert_eq!(r.num_squares(), 7);
        let sides: Vec<(u32, u32, u32)> = r.squares.iter().map(|s| (s.x, s.y, s.side())).collect();
        assert!(sides.contains(&(0, 0, 2)));
        assert!(sides.contains(&(0, 2, 2)));
        assert!(sides.contains(&(2, 2, 2)));
        assert!(sides.contains(&(2, 0, 1)));
        assert!(sides.contains(&(3, 0, 1)));
        assert!(sides.contains(&(2, 1, 1)));
        assert!(sides.contains(&(3, 1, 1)));
        // Stats of the top-left square: {6,7,8,6}.
        let tl = r.squares.iter().position(|s| (s.x, s.y) == (0, 0)).unwrap();
        assert_eq!(r.stats[tl].min, 6);
        assert_eq!(r.stats[tl].max, 8);
        assert_eq!(r.stats[tl].sum, 27);
        assert_eq!(r.stats[tl].count, 4);
    }

    #[test]
    fn uniform_image_becomes_one_square() {
        let img: Image<u8> = Image::new(16, 16, 42);
        let r = split(&img, &cfg(0));
        assert_eq!(r.num_squares(), 1);
        assert_eq!(r.squares[0].side(), 16);
        assert_eq!(r.iterations, 4); // 2,4,8,16
    }

    #[test]
    fn worst_case_checkerboard_one_unproductive_probe() {
        // 1-pixel checkerboard with contrast > T: nothing ever coalesces.
        let img = synth::checkerboard(8, 1, 0, 200);
        let r = split(&img, &cfg(10));
        assert_eq!(r.iterations, 0);
        assert_eq!(r.num_squares(), 64);
        assert!(r.squares.iter().all(|s| s.side() == 1));
    }

    #[test]
    fn cap_limits_square_growth() {
        let img: Image<u8> = Image::new(32, 32, 7);
        let r = split(&img, &cfg(5).max_square_log2(Some(3)));
        assert!(r.squares.iter().all(|s| s.side() == 8));
        assert_eq!(r.num_squares(), 16);
        assert_eq!(r.iterations, 3);
        // Cap 0 = merge-only baseline: every pixel is a square.
        let r0 = split(&img, &cfg(5).max_square_log2(Some(0)));
        assert_eq!(r0.num_squares(), 32 * 32);
        assert_eq!(r0.iterations, 0);
    }

    #[test]
    fn non_pow2_image_border_stays_fine() {
        let img: Image<u8> = Image::new(10, 6, 9);
        let r = split(&img, &cfg(0));
        // Coverage is exact.
        let mut covered = [false; 60];
        for s in &r.squares {
            for y in s.y..s.y + s.side() {
                for x in s.x..s.x + s.side() {
                    assert!(x < 10 && y < 6, "square leaks outside image");
                    let i = (y * 10 + x) as usize;
                    assert!(!covered[i], "double cover at ({x},{y})");
                    covered[i] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
        // The largest possible square in a 10×6 uniform image is 4 (at
        // aligned positions 0 and 4); column 8..10 gives 2s and the bottom
        // rows 4..6 give 2s.
        assert!(r.squares.iter().all(|s| s.side() <= 4));
        assert!(r.squares.iter().any(|s| s.side() == 4));
    }

    #[test]
    fn squares_sorted_by_raster_order_and_ids_increase() {
        let img = synth::rect_collection(64);
        let r = split(&img, &cfg(10));
        for w in r.squares.windows(2) {
            assert!((w[0].y, w[0].x) < (w[1].y, w[1].x));
            assert!(w[0].id(64) < w[1].id(64));
        }
    }

    #[test]
    fn square_of_consistent_with_squares() {
        let img = synth::circle_collection(64);
        let r = split(&img, &cfg(10));
        for (i, s) in r.squares.iter().enumerate() {
            assert_eq!(r.square_of[(s.y as usize) * 64 + s.x as usize], i as u32);
        }
        // Every pixel's square actually contains it.
        for y in 0..64usize {
            for x in 0..64usize {
                let s = r.squares[r.square_of[y * 64 + x] as usize];
                assert!(x >= s.x as usize && x < (s.x + s.side()) as usize);
                assert!(y >= s.y as usize && y < (s.y + s.side()) as usize);
            }
        }
    }

    #[test]
    fn every_square_homogeneous_and_maximal() {
        let img = synth::random_rects(48, 48, 8, 3);
        let t = 12;
        let r = split(&img, &cfg(t));
        for (s, st) in r.squares.iter().zip(&r.stats) {
            // Homogeneous.
            assert!(
                st.range() <= t,
                "square at ({},{}) range {}",
                s.x,
                s.y,
                st.range()
            );
            // Stats correct (recompute brute force).
            let mut lo = u8::MAX;
            let mut hi = u8::MIN;
            let mut sum = 0u64;
            for y in s.y..s.y + s.side() {
                for x in s.x..s.x + s.side() {
                    let p = img.get(x as usize, y as usize);
                    lo = lo.min(p);
                    hi = hi.max(p);
                    sum += p as u64;
                }
            }
            assert_eq!(
                (st.min, st.max, st.sum, st.count),
                (lo, hi, sum, (s.side() as u64).pow(2))
            );
        }
    }

    #[test]
    fn par_matches_seq() {
        for seed in 0..4 {
            let img = synth::random_rects(96, 64, 10, seed);
            for t in [0, 5, 40] {
                let a = split(&img, &cfg(t));
                let b = split_par(&img, &cfg(t));
                assert_eq!(a.squares, b.squares);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.square_of, b.square_of);
                assert_eq!(a.iterations, b.iterations);
                assert_eq!(a.metrics, b.metrics);
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_across_shapes() {
        // One scratch + one output buffer, reused across images of varying
        // shapes and configs, must produce bit-identical results to fresh
        // calls (including after shrinking from a larger image).
        let mut scratch = SplitScratch::new();
        let mut out = SplitResult::default();
        let images = [
            synth::random_rects(96, 64, 10, 1),
            synth::random_rects(32, 32, 6, 2),
            synth::random_rects(96, 64, 10, 3),
            synth::random_rects(17, 9, 4, 4),
        ];
        for img in &images {
            for t in [0u32, 8, 40] {
                for parallel in [false, true] {
                    let fresh = split_impl(img, &cfg(t), parallel);
                    split_into(img, &cfg(t), parallel, &mut scratch, &mut out);
                    assert_eq!(fresh.squares, out.squares);
                    assert_eq!(fresh.stats, out.stats);
                    assert_eq!(fresh.square_of, out.square_of);
                    assert_eq!(fresh.iterations, out.iterations);
                    assert_eq!(fresh.metrics, out.metrics);
                    assert_eq!((fresh.width, fresh.height), (out.width, out.height));
                }
            }
        }
    }

    #[test]
    fn mean_criterion_split() {
        // For singleton pixels the two criteria coincide (max pairwise
        // value difference = range), so the divergence shows at level 2:
        // blocks whose means are close but whose pooled range is wide
        // coalesce under MeanDifference only.
        #[rustfmt::skip]
        let img: Image<u8> = Image::from_vec(4, 4, vec![
            0, 8,  4, 12,
            8, 0, 12,  4,
            4, 12, 0,  8,
            12, 4, 8,  0,
        ]);
        let range_cfg = cfg(8);
        let mean_cfg = cfg(8).criterion(Criterion::MeanDifference);
        // Both coalesce the four 2×2 blocks (internal diffs ≤ 8) ...
        let r = split(&img, &range_cfg);
        assert_eq!(r.num_squares(), 4);
        assert!(r.squares.iter().all(|s| s.side() == 2));
        // ... but only the mean criterion accepts the 4×4 (means all 6,
        // pooled range 12 > 8).
        assert_eq!(split(&img, &mean_cfg).num_squares(), 1);
    }

    #[test]
    fn one_by_n_and_n_by_one_degenerate() {
        // Nothing ever coalesces in a 1-pixel-wide strip (no 2×2 block
        // fits), regardless of contents.
        let tall: Image<u8> = Image::new(1, 37, 5);
        let r = split(&tall, &cfg(255));
        assert_eq!(r.iterations, 0);
        assert_eq!(r.num_squares(), 37);
        let wide: Image<u8> = Image::new(129, 1, 5);
        let r = split(&wide, &cfg(255));
        assert_eq!(r.iterations, 0);
        assert_eq!(r.num_squares(), 129);
        let dot: Image<u8> = Image::new(1, 1, 9);
        let r = split(&dot, &cfg(0));
        assert_eq!(r.num_squares(), 1);
        assert_eq!(r.stats[0].count, 1);
    }

    #[test]
    fn metrics_accounting() {
        // Uniform 16×16, T=0: level 0 fill (256 cells) + folds at levels
        // 1..=4 (64+16+4+1), all productive.
        let img: Image<u8> = Image::new(16, 16, 42);
        let r = split(&img, &cfg(0));
        assert_eq!(r.metrics.levels_built, 5);
        assert_eq!(r.metrics.productive_levels, 4);
        assert_eq!(r.metrics.cells_folded, 256 + 64 + 16 + 4 + 1);
        // One candidate word per block row per level: 8 + 4 + 2 + 1.
        assert_eq!(r.metrics.words_tested, 8 + 4 + 2 + 1);
        // Checkerboard: one unproductive probe folds level 1 then stops.
        let cb = split(&synth::checkerboard(8, 1, 0, 200), &cfg(10));
        assert_eq!(cb.metrics.levels_built, 2);
        assert_eq!(cb.metrics.productive_levels, 0);
        assert_eq!(cb.metrics.cells_folded, 64 + 16);
        assert_eq!(cb.metrics.words_tested, 4);
    }

    #[test]
    fn rect_scratch_footprint_is_tight() {
        // The padding regression: a 513×100 image must allocate the tight
        // geometric series of the rectangle (< 4/3 · w·h stats cells), not
        // the 1024×1024 enclosing power-of-two square of the old layout.
        let img: Image<u8> = Image::new(513, 100, 7);
        let mut scratch = SplitScratch::new();
        let mut out = SplitResult::default();
        split_into(&img, &cfg(0), false, &mut scratch, &mut out);
        let cells = scratch.plane_cells();
        assert!(
            cells < 4 * 513 * 100 / 3 + 64,
            "stats planes allocated {cells} cells — padding is back?"
        );
        assert!(
            cells < 1024 * 1024 / 4,
            "stats planes allocated {cells} cells — comparable to the padded square"
        );
        // Packed bitsets are a rounding error next to the old Vec<bool>
        // levels (which held side² bytes at level 1 alone).
        let words = scratch.bitset_words();
        assert!(
            words * 64 < 2 * 513 * 100,
            "bitsets allocated {words} words"
        );
    }
}
