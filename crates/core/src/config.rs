//! Configuration types shared by every engine: the homogeneity criterion,
//! tie-breaking policy, connectivity, and per-region statistics.

use rg_imaging::Intensity;

/// Pixel-adjacency convention used when two regions count as "neighbouring".
///
/// The paper uses 4-connectivity (regions share a boundary *segment*);
/// 8-connectivity (corner touching counts) is provided as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Connectivity {
    /// Regions are adjacent iff they share a horizontal or vertical pixel
    /// boundary (the paper's convention).
    #[default]
    Four,
    /// Diagonal corner adjacency also counts.
    Eight,
}

/// How a tie between equally good merge candidates is broken.
///
/// The paper's key performance device: *"In case of a tie during the merge
/// stage, the tie is broken by selecting a neighbor at random instead of
/// selecting the neighbor with the smallest (largest) ID, since the latter
/// approach imposes a serialization on the order of the merges."*
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer the tied neighbour with the smallest region ID (the
    /// serialising baseline; used in the paper's Figure 2 walkthrough).
    SmallestId,
    /// Prefer the tied neighbour with the largest region ID.
    LargestId,
    /// Pick uniformly at random among tied neighbours, re-randomised each
    /// merge iteration. Deterministic given the seed: the per-candidate
    /// priority is a hash of `(seed, iteration, vertex, neighbour)`, so the
    /// result is independent of evaluation order and identical across the
    /// sequential, rayon, data-parallel, and message-passing engines.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl Default for TieBreak {
    fn default() -> Self {
        TieBreak::Random { seed: 0x5EED }
    }
}

/// The homogeneity criterion governing both stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Criterion {
    /// *Pixel range*: a merge is allowed iff
    /// `max(region ∪ region') − min(region ∪ region') ≤ T`.
    /// This is the criterion the paper evaluates.
    #[default]
    PixelRange,
    /// *Mean difference* (extension): a merge is allowed iff the region
    /// means differ by at most `T` grey levels. For the split stage a block
    /// coalesces iff the four child means pairwise differ by at most `T`.
    MeanDifference,
}

/// Running statistics of a region, maintained across merges.
///
/// `min`/`max` drive the pixel-range criterion; `sum`/`count` drive the
/// mean-difference extension. Folding two regions' stats is O(1), which is
/// what makes the flat-array merge update cheap on the CM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionStats<P: Intensity> {
    /// Minimum intensity in the region.
    pub min: P,
    /// Maximum intensity in the region.
    pub max: P,
    /// Sum of intensities (for the mean-difference extension).
    pub sum: u64,
    /// Number of pixels.
    pub count: u64,
}

impl<P: Intensity> RegionStats<P> {
    /// Stats of a single pixel.
    #[inline]
    pub fn of_pixel(p: P) -> Self {
        Self {
            min: p,
            max: p,
            sum: p.to_u32() as u64,
            count: 1,
        }
    }

    /// Stats of the union of two regions.
    #[inline]
    pub fn fold(self, other: Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }

    /// Intensity range (max − min) widened to u32.
    #[inline]
    pub fn range(&self) -> u32 {
        self.max.to_u32() - self.min.to_u32()
    }

    /// Mean intensity in 16.16 fixed point.
    #[inline]
    pub fn mean_fp16(&self) -> u64 {
        debug_assert!(self.count > 0);
        ((self.sum as u128 * 65_536) / self.count as u128) as u64
    }
}

/// Which merge-stage engine [`crate::merge::Merger`] runs internally.
///
/// Both backends execute the identical iteration structure (choices →
/// mutual merges → edge relabel/de-activation) and produce byte-identical
/// merge histories, summaries, and labels — the differential property tests
/// in `crates/core/tests/prop_tiebreak.rs` enforce it. They differ only in
/// data layout and per-iteration cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeBackend {
    /// Compressed-sparse-row incremental engine (the default): tombstoned
    /// in-place edge slots with periodic compaction, single-level
    /// pointer-jumped endpoint relabelling, a segmented-min choice sweep
    /// (no sorting), SoA region statistics, and persistent scratch buffers
    /// so steady-state iterations are allocation-free.
    #[default]
    Csr,
    /// The original edge-list engine: rebuilds, re-sorts, and re-dedups the
    /// full edge list every iteration. Kept as the differential-testing
    /// oracle and the bench baseline.
    Reference,
}

impl MergeBackend {
    /// Stable lower-case name used in bench records.
    pub fn name(self) -> &'static str {
        match self {
            MergeBackend::Csr => "csr",
            MergeBackend::Reference => "reference",
        }
    }
}

/// Fixed-point scale used by [`Criterion`] weights (16 fractional bits).
pub const WEIGHT_FP_SHIFT: u32 = 16;

/// Pixel-range edge weight in 16.16 fixed point from raw union bounds.
///
/// Scalar kernel shared by every engine: the host [`crate::merge::Merger`]
/// backends, the data-parallel field code (`rg-datapar`), and the
/// message-passing local merges (`rg-msgpass`) all compute weights through
/// these primitives so a change lands everywhere at once.
#[inline]
pub fn range_weight_fp16(union_min: u32, union_max: u32) -> u64 {
    ((union_max - union_min) as u64) << WEIGHT_FP_SHIFT
}

/// `true` iff a pixel-range union with the given bounds satisfies `t`.
#[inline]
pub fn range_satisfies(union_min: u32, union_max: u32, t: u32) -> bool {
    union_max - union_min <= t
}

/// Mean-difference edge weight in 16.16 fixed point from raw sums/counts.
/// Exact in `u128`; zero counts are treated as an infinite-mean sentinel by
/// clamping the denominator (callers de-activate such edges anyway).
#[inline]
pub fn mean_weight_fp16(sum_a: u64, cnt_a: u64, sum_b: u64, cnt_b: u64) -> u64 {
    let num = (sum_a as u128 * cnt_b as u128).abs_diff(sum_b as u128 * cnt_a as u128);
    let den = (cnt_a as u128 * cnt_b as u128).max(1);
    ((num << WEIGHT_FP_SHIFT) / den) as u64
}

/// `true` iff two regions' means differ by at most `t` (exact; `false`
/// when either region is empty).
#[inline]
pub fn mean_satisfies(sum_a: u64, cnt_a: u64, sum_b: u64, cnt_b: u64, t: u32) -> bool {
    if cnt_a == 0 || cnt_b == 0 {
        return false;
    }
    let num = (sum_a as u128 * cnt_b as u128).abs_diff(sum_b as u128 * cnt_a as u128);
    num <= t as u128 * cnt_a as u128 * cnt_b as u128
}

impl Criterion {
    /// Edge weight between two regions, in 16.16 fixed-point grey levels.
    ///
    /// For [`Criterion::PixelRange`] this is the paper's definition: *"the
    /// weight of the edge e is the difference between the maximum and
    /// minimum pixel values in the union of the two regions"*.
    #[inline]
    pub fn weight<P: Intensity>(&self, a: &RegionStats<P>, b: &RegionStats<P>) -> u64 {
        match self {
            Criterion::PixelRange => {
                range_weight_fp16(a.min.min(b.min).to_u32(), a.max.max(b.max).to_u32())
            }
            Criterion::MeanDifference => mean_weight_fp16(a.sum, a.count, b.sum, b.count),
        }
    }

    /// `true` iff merging the two regions satisfies the criterion with
    /// threshold `t` grey levels. Exact (no fixed-point rounding).
    #[inline]
    pub fn satisfies<P: Intensity>(&self, a: &RegionStats<P>, b: &RegionStats<P>, t: u32) -> bool {
        match self {
            Criterion::PixelRange => {
                range_satisfies(a.min.min(b.min).to_u32(), a.max.max(b.max).to_u32(), t)
            }
            Criterion::MeanDifference => mean_satisfies(a.sum, a.count, b.sum, b.count, t),
        }
    }

    /// `true` iff a block whose four (or fewer) child squares have the
    /// given stats may coalesce in the split stage.
    #[inline]
    pub fn combine_ok<P: Intensity>(&self, children: &[RegionStats<P>], t: u32) -> bool {
        match self {
            Criterion::PixelRange => {
                let mut it = children.iter();
                let first = match it.next() {
                    Some(f) => *f,
                    None => return false,
                };
                let total = it.fold(first, |acc, c| acc.fold(*c));
                total.range() <= t
            }
            Criterion::MeanDifference => {
                for i in 0..children.len() {
                    for j in i + 1..children.len() {
                        if !self.satisfies(&children[i], &children[j], t) {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }
}

/// Full configuration of a split-and-merge run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Homogeneity threshold `T`, in grey levels.
    pub threshold: u32,
    /// Tie-breaking policy for the merge stage.
    pub tie_break: TieBreak,
    /// Region adjacency convention.
    pub connectivity: Connectivity,
    /// Homogeneity criterion.
    pub criterion: Criterion,
    /// Optional cap on the split stage: squares never grow beyond
    /// `2^max_square_log2` pixels on a side. `Some(0)` disables the split
    /// stage entirely (every pixel is a region — the merge-only baseline);
    /// `None` lets squares grow to the full image.
    ///
    /// The paper-table experiments set this to the largest square that fits
    /// a CM-5 node's sub-image, which also makes the data-parallel and
    /// message-passing implementations produce identical split results.
    pub max_square_log2: Option<u8>,
    /// With [`TieBreak::Random`], the number of consecutive zero-merge
    /// iterations tolerated before falling back to [`TieBreak::SmallestId`]
    /// for one iteration to guarantee progress.
    pub max_stall: u32,
    /// Which internal merge engine [`crate::merge::Merger`] runs. Both
    /// backends produce byte-identical results; see [`MergeBackend`].
    pub merge_backend: MergeBackend,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            threshold: 10,
            tie_break: TieBreak::default(),
            connectivity: Connectivity::Four,
            criterion: Criterion::PixelRange,
            max_square_log2: None,
            max_stall: 8,
            merge_backend: MergeBackend::Csr,
        }
    }
}

impl Config {
    /// Convenience constructor with everything defaulted except the
    /// threshold.
    pub fn with_threshold(threshold: u32) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }

    /// Builder-style setter for the tie-break policy.
    pub fn tie_break(mut self, tb: TieBreak) -> Self {
        self.tie_break = tb;
        self
    }

    /// Builder-style setter for connectivity.
    pub fn connectivity(mut self, c: Connectivity) -> Self {
        self.connectivity = c;
        self
    }

    /// Builder-style setter for the criterion.
    pub fn criterion(mut self, c: Criterion) -> Self {
        self.criterion = c;
        self
    }

    /// Builder-style setter for the split-square cap.
    pub fn max_square_log2(mut self, m: Option<u8>) -> Self {
        self.max_square_log2 = m;
        self
    }

    /// Builder-style setter for the merge backend.
    pub fn merge_backend(mut self, b: MergeBackend) -> Self {
        self.merge_backend = b;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(min: u8, max: u8, sum: u64, count: u64) -> RegionStats<u8> {
        RegionStats {
            min,
            max,
            sum,
            count,
        }
    }

    #[test]
    fn stats_fold() {
        let a = RegionStats::of_pixel(10u8);
        let b = RegionStats::of_pixel(20u8);
        let c = a.fold(b);
        assert_eq!(c.min, 10);
        assert_eq!(c.max, 20);
        assert_eq!(c.sum, 30);
        assert_eq!(c.count, 2);
        assert_eq!(c.range(), 10);
    }

    #[test]
    fn pixel_range_weight_is_union_range() {
        let a = rs(5, 9, 0, 1);
        let b = rs(7, 12, 0, 1);
        let w = Criterion::PixelRange.weight(&a, &b);
        assert_eq!(w >> WEIGHT_FP_SHIFT, 7); // 12 - 5
        assert!(Criterion::PixelRange.satisfies(&a, &b, 7));
        assert!(!Criterion::PixelRange.satisfies(&a, &b, 6));
    }

    #[test]
    fn mean_difference_exact() {
        // Region a: pixels {10, 20} -> mean 15. Region b: {18} -> mean 18.
        let a = rs(10, 20, 30, 2);
        let b = rs(18, 18, 18, 1);
        assert!(Criterion::MeanDifference.satisfies(&a, &b, 3));
        assert!(!Criterion::MeanDifference.satisfies(&a, &b, 2));
        let w = Criterion::MeanDifference.weight(&a, &b);
        assert_eq!(w, 3 << WEIGHT_FP_SHIFT);
    }

    #[test]
    fn combine_ok_pixel_range() {
        let kids = [rs(5, 6, 0, 1), rs(6, 8, 0, 1), rs(7, 7, 0, 1)];
        assert!(Criterion::PixelRange.combine_ok(&kids, 3));
        assert!(!Criterion::PixelRange.combine_ok(&kids, 2));
        assert!(!Criterion::PixelRange.combine_ok::<u8>(&[], 100));
    }

    #[test]
    fn combine_ok_mean_pairwise() {
        let kids = [rs(0, 0, 10, 1), rs(0, 0, 12, 1), rs(0, 0, 14, 1)];
        // Pairwise mean diffs: 2, 2, 4.
        assert!(Criterion::MeanDifference.combine_ok(&kids, 4));
        assert!(!Criterion::MeanDifference.combine_ok(&kids, 3));
    }

    #[test]
    fn mean_fp16() {
        let a = rs(0, 0, 3, 2); // mean 1.5
        assert_eq!(a.mean_fp16(), 3 * 65_536 / 2);
    }

    #[test]
    fn config_builders() {
        let c = Config::with_threshold(5)
            .tie_break(TieBreak::LargestId)
            .connectivity(Connectivity::Eight)
            .criterion(Criterion::MeanDifference)
            .max_square_log2(Some(4))
            .merge_backend(MergeBackend::Reference);
        assert_eq!(c.threshold, 5);
        assert_eq!(c.tie_break, TieBreak::LargestId);
        assert_eq!(c.connectivity, Connectivity::Eight);
        assert_eq!(c.criterion, Criterion::MeanDifference);
        assert_eq!(c.max_square_log2, Some(4));
        assert_eq!(c.merge_backend, MergeBackend::Reference);
        assert_eq!(Config::default().merge_backend, MergeBackend::Csr);
    }

    #[test]
    fn scalar_primitives_match_stats_paths() {
        // The shared scalar kernels must agree with the RegionStats-based
        // entry points bit for bit — every engine leans on this.
        let a = rs(10, 20, 30, 2);
        let b = rs(18, 25, 43, 2);
        let lo = a.min.min(b.min) as u32;
        let hi = a.max.max(b.max) as u32;
        assert_eq!(
            Criterion::PixelRange.weight(&a, &b),
            range_weight_fp16(lo, hi)
        );
        for t in 0..32 {
            assert_eq!(
                Criterion::PixelRange.satisfies(&a, &b, t),
                range_satisfies(lo, hi, t)
            );
            assert_eq!(
                Criterion::MeanDifference.satisfies(&a, &b, t),
                mean_satisfies(a.sum, a.count, b.sum, b.count, t)
            );
        }
        assert_eq!(
            Criterion::MeanDifference.weight(&a, &b),
            mean_weight_fp16(a.sum, a.count, b.sum, b.count)
        );
        // Empty regions never satisfy the mean criterion.
        assert!(!mean_satisfies(0, 0, 10, 1, 255));
        assert_eq!(MergeBackend::Csr.name(), "csr");
        assert_eq!(MergeBackend::Reference.name(), "reference");
    }
}
