//! Configuration types shared by every engine: the homogeneity criterion,
//! tie-breaking policy, connectivity, and per-region statistics.

use rg_imaging::Intensity;

/// Pixel-adjacency convention used when two regions count as "neighbouring".
///
/// The paper uses 4-connectivity (regions share a boundary *segment*);
/// 8-connectivity (corner touching counts) is provided as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Connectivity {
    /// Regions are adjacent iff they share a horizontal or vertical pixel
    /// boundary (the paper's convention).
    #[default]
    Four,
    /// Diagonal corner adjacency also counts.
    Eight,
}

/// How a tie between equally good merge candidates is broken.
///
/// The paper's key performance device: *"In case of a tie during the merge
/// stage, the tie is broken by selecting a neighbor at random instead of
/// selecting the neighbor with the smallest (largest) ID, since the latter
/// approach imposes a serialization on the order of the merges."*
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer the tied neighbour with the smallest region ID (the
    /// serialising baseline; used in the paper's Figure 2 walkthrough).
    SmallestId,
    /// Prefer the tied neighbour with the largest region ID.
    LargestId,
    /// Pick uniformly at random among tied neighbours, re-randomised each
    /// merge iteration. Deterministic given the seed: the per-candidate
    /// priority is a hash of `(seed, iteration, vertex, neighbour)`, so the
    /// result is independent of evaluation order and identical across the
    /// sequential, rayon, data-parallel, and message-passing engines.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl Default for TieBreak {
    fn default() -> Self {
        TieBreak::Random { seed: 0x5EED }
    }
}

/// The homogeneity criterion governing both stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Criterion {
    /// *Pixel range*: a merge is allowed iff
    /// `max(region ∪ region') − min(region ∪ region') ≤ T`.
    /// This is the criterion the paper evaluates.
    #[default]
    PixelRange,
    /// *Mean difference* (extension): a merge is allowed iff the region
    /// means differ by at most `T` grey levels. For the split stage a block
    /// coalesces iff the four child means pairwise differ by at most `T`.
    MeanDifference,
}

/// Running statistics of a region, maintained across merges.
///
/// `min`/`max` drive the pixel-range criterion; `sum`/`count` drive the
/// mean-difference extension. Folding two regions' stats is O(1), which is
/// what makes the flat-array merge update cheap on the CM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionStats<P: Intensity> {
    /// Minimum intensity in the region.
    pub min: P,
    /// Maximum intensity in the region.
    pub max: P,
    /// Sum of intensities (for the mean-difference extension).
    pub sum: u64,
    /// Number of pixels.
    pub count: u64,
}

impl<P: Intensity> RegionStats<P> {
    /// Stats of a single pixel.
    #[inline]
    pub fn of_pixel(p: P) -> Self {
        Self {
            min: p,
            max: p,
            sum: p.to_u32() as u64,
            count: 1,
        }
    }

    /// Stats of the union of two regions.
    #[inline]
    pub fn fold(self, other: Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }

    /// Intensity range (max − min) widened to u32.
    #[inline]
    pub fn range(&self) -> u32 {
        self.max.to_u32() - self.min.to_u32()
    }

    /// Mean intensity in 16.16 fixed point.
    #[inline]
    pub fn mean_fp16(&self) -> u64 {
        debug_assert!(self.count > 0);
        ((self.sum as u128 * 65_536) / self.count as u128) as u64
    }
}

/// Fixed-point scale used by [`Criterion`] weights (16 fractional bits).
pub const WEIGHT_FP_SHIFT: u32 = 16;

impl Criterion {
    /// Edge weight between two regions, in 16.16 fixed-point grey levels.
    ///
    /// For [`Criterion::PixelRange`] this is the paper's definition: *"the
    /// weight of the edge e is the difference between the maximum and
    /// minimum pixel values in the union of the two regions"*.
    #[inline]
    pub fn weight<P: Intensity>(&self, a: &RegionStats<P>, b: &RegionStats<P>) -> u64 {
        match self {
            Criterion::PixelRange => {
                let lo = a.min.min(b.min).to_u32() as u64;
                let hi = a.max.max(b.max).to_u32() as u64;
                (hi - lo) << WEIGHT_FP_SHIFT
            }
            Criterion::MeanDifference => {
                // |mean_a - mean_b| computed exactly in u128, then scaled.
                let num =
                    (a.sum as u128 * b.count as u128).abs_diff(b.sum as u128 * a.count as u128);
                let den = a.count as u128 * b.count as u128;
                ((num << WEIGHT_FP_SHIFT) / den) as u64
            }
        }
    }

    /// `true` iff merging the two regions satisfies the criterion with
    /// threshold `t` grey levels. Exact (no fixed-point rounding).
    #[inline]
    pub fn satisfies<P: Intensity>(&self, a: &RegionStats<P>, b: &RegionStats<P>, t: u32) -> bool {
        match self {
            Criterion::PixelRange => {
                let lo = a.min.min(b.min).to_u32();
                let hi = a.max.max(b.max).to_u32();
                hi - lo <= t
            }
            Criterion::MeanDifference => {
                let num =
                    (a.sum as u128 * b.count as u128).abs_diff(b.sum as u128 * a.count as u128);
                num <= t as u128 * a.count as u128 * b.count as u128
            }
        }
    }

    /// `true` iff a block whose four (or fewer) child squares have the
    /// given stats may coalesce in the split stage.
    #[inline]
    pub fn combine_ok<P: Intensity>(&self, children: &[RegionStats<P>], t: u32) -> bool {
        match self {
            Criterion::PixelRange => {
                let mut it = children.iter();
                let first = match it.next() {
                    Some(f) => *f,
                    None => return false,
                };
                let total = it.fold(first, |acc, c| acc.fold(*c));
                total.range() <= t
            }
            Criterion::MeanDifference => {
                for i in 0..children.len() {
                    for j in i + 1..children.len() {
                        if !self.satisfies(&children[i], &children[j], t) {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }
}

/// Full configuration of a split-and-merge run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Homogeneity threshold `T`, in grey levels.
    pub threshold: u32,
    /// Tie-breaking policy for the merge stage.
    pub tie_break: TieBreak,
    /// Region adjacency convention.
    pub connectivity: Connectivity,
    /// Homogeneity criterion.
    pub criterion: Criterion,
    /// Optional cap on the split stage: squares never grow beyond
    /// `2^max_square_log2` pixels on a side. `Some(0)` disables the split
    /// stage entirely (every pixel is a region — the merge-only baseline);
    /// `None` lets squares grow to the full image.
    ///
    /// The paper-table experiments set this to the largest square that fits
    /// a CM-5 node's sub-image, which also makes the data-parallel and
    /// message-passing implementations produce identical split results.
    pub max_square_log2: Option<u8>,
    /// With [`TieBreak::Random`], the number of consecutive zero-merge
    /// iterations tolerated before falling back to [`TieBreak::SmallestId`]
    /// for one iteration to guarantee progress.
    pub max_stall: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            threshold: 10,
            tie_break: TieBreak::default(),
            connectivity: Connectivity::Four,
            criterion: Criterion::PixelRange,
            max_square_log2: None,
            max_stall: 8,
        }
    }
}

impl Config {
    /// Convenience constructor with everything defaulted except the
    /// threshold.
    pub fn with_threshold(threshold: u32) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }

    /// Builder-style setter for the tie-break policy.
    pub fn tie_break(mut self, tb: TieBreak) -> Self {
        self.tie_break = tb;
        self
    }

    /// Builder-style setter for connectivity.
    pub fn connectivity(mut self, c: Connectivity) -> Self {
        self.connectivity = c;
        self
    }

    /// Builder-style setter for the criterion.
    pub fn criterion(mut self, c: Criterion) -> Self {
        self.criterion = c;
        self
    }

    /// Builder-style setter for the split-square cap.
    pub fn max_square_log2(mut self, m: Option<u8>) -> Self {
        self.max_square_log2 = m;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(min: u8, max: u8, sum: u64, count: u64) -> RegionStats<u8> {
        RegionStats {
            min,
            max,
            sum,
            count,
        }
    }

    #[test]
    fn stats_fold() {
        let a = RegionStats::of_pixel(10u8);
        let b = RegionStats::of_pixel(20u8);
        let c = a.fold(b);
        assert_eq!(c.min, 10);
        assert_eq!(c.max, 20);
        assert_eq!(c.sum, 30);
        assert_eq!(c.count, 2);
        assert_eq!(c.range(), 10);
    }

    #[test]
    fn pixel_range_weight_is_union_range() {
        let a = rs(5, 9, 0, 1);
        let b = rs(7, 12, 0, 1);
        let w = Criterion::PixelRange.weight(&a, &b);
        assert_eq!(w >> WEIGHT_FP_SHIFT, 7); // 12 - 5
        assert!(Criterion::PixelRange.satisfies(&a, &b, 7));
        assert!(!Criterion::PixelRange.satisfies(&a, &b, 6));
    }

    #[test]
    fn mean_difference_exact() {
        // Region a: pixels {10, 20} -> mean 15. Region b: {18} -> mean 18.
        let a = rs(10, 20, 30, 2);
        let b = rs(18, 18, 18, 1);
        assert!(Criterion::MeanDifference.satisfies(&a, &b, 3));
        assert!(!Criterion::MeanDifference.satisfies(&a, &b, 2));
        let w = Criterion::MeanDifference.weight(&a, &b);
        assert_eq!(w, 3 << WEIGHT_FP_SHIFT);
    }

    #[test]
    fn combine_ok_pixel_range() {
        let kids = [rs(5, 6, 0, 1), rs(6, 8, 0, 1), rs(7, 7, 0, 1)];
        assert!(Criterion::PixelRange.combine_ok(&kids, 3));
        assert!(!Criterion::PixelRange.combine_ok(&kids, 2));
        assert!(!Criterion::PixelRange.combine_ok::<u8>(&[], 100));
    }

    #[test]
    fn combine_ok_mean_pairwise() {
        let kids = [rs(0, 0, 10, 1), rs(0, 0, 12, 1), rs(0, 0, 14, 1)];
        // Pairwise mean diffs: 2, 2, 4.
        assert!(Criterion::MeanDifference.combine_ok(&kids, 4));
        assert!(!Criterion::MeanDifference.combine_ok(&kids, 3));
    }

    #[test]
    fn mean_fp16() {
        let a = rs(0, 0, 3, 2); // mean 1.5
        assert_eq!(a.mean_fp16(), 3 * 65_536 / 2);
    }

    #[test]
    fn config_builders() {
        let c = Config::with_threshold(5)
            .tie_break(TieBreak::LargestId)
            .connectivity(Connectivity::Eight)
            .criterion(Criterion::MeanDifference)
            .max_square_log2(Some(4));
        assert_eq!(c.threshold, 5);
        assert_eq!(c.tie_break, TieBreak::LargestId);
        assert_eq!(c.connectivity, Connectivity::Eight);
        assert_eq!(c.criterion, Criterion::MeanDifference);
        assert_eq!(c.max_square_log2, Some(4));
    }
}
