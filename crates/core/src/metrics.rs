//! Segmentation comparison metrics.
//!
//! Quantitative comparison of two labelings of the same image — used to
//! measure how far the sequential baselines drift from the parallel
//! algorithm on scenes where the partition is not unique (gradients,
//! noise), and to assert exact agreement (metric values at their ideal)
//! where it is.
//!
//! * [`rand_index`] — probability that a random pixel pair is treated the
//!   same way (together/apart) by both segmentations; 1.0 = identical
//!   partitions.
//! * [`variation_of_information`] — the information-theoretic distance
//!   `H(A|B) + H(B|A)` in bits; 0.0 = identical partitions; metric (obeys
//!   the triangle inequality).
//! * [`ConfusionTable`] — the underlying sparse contingency table, exposed
//!   for custom measures.

use std::collections::HashMap;

/// Sparse contingency table between two labelings.
#[derive(Debug, Clone)]
pub struct ConfusionTable {
    /// `(label_a, label_b) → joint pixel count`.
    pub joint: HashMap<(u32, u32), u64>,
    /// Pixel count per label of the first segmentation.
    pub count_a: HashMap<u32, u64>,
    /// Pixel count per label of the second segmentation.
    pub count_b: HashMap<u32, u64>,
    /// Total pixels.
    pub n: u64,
}

impl ConfusionTable {
    /// Builds the table from two parallel label buffers.
    ///
    /// # Panics
    /// Panics if the buffers have different lengths or are empty.
    pub fn build(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "label buffers must align");
        assert!(!a.is_empty(), "empty labelings have no metrics");
        let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
        let mut count_a: HashMap<u32, u64> = HashMap::new();
        let mut count_b: HashMap<u32, u64> = HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            *joint.entry((x, y)).or_insert(0) += 1;
            *count_a.entry(x).or_insert(0) += 1;
            *count_b.entry(y).or_insert(0) += 1;
        }
        Self {
            joint,
            count_a,
            count_b,
            n: a.len() as u64,
        }
    }
}

/// Number of unordered pairs from `c` elements.
fn pairs(c: u64) -> u128 {
    (c as u128) * (c as u128 - 1) / 2
}

/// Rand index between two labelings: fraction of pixel pairs on which the
/// segmentations agree (both join or both separate). 1.0 iff the
/// partitions are identical.
pub fn rand_index(a: &[u32], b: &[u32]) -> f64 {
    let t = ConfusionTable::build(a, b);
    let total = pairs(t.n);
    if total == 0 {
        return 1.0;
    }
    let sum_joint: u128 = t.joint.values().map(|&c| pairs(c)).sum();
    let sum_a: u128 = t.count_a.values().map(|&c| pairs(c)).sum();
    let sum_b: u128 = t.count_b.values().map(|&c| pairs(c)).sum();
    // Agreements = pairs together in both + pairs apart in both.
    let together_both = sum_joint;
    let apart_both = total - sum_a - sum_b + sum_joint;
    (together_both + apart_both) as f64 / total as f64
}

/// Variation of information between two labelings, in bits. 0.0 iff the
/// partitions are identical; symmetric; a true metric on partitions.
pub fn variation_of_information(a: &[u32], b: &[u32]) -> f64 {
    let t = ConfusionTable::build(a, b);
    let n = t.n as f64;
    let mut h_a = 0.0;
    for &c in t.count_a.values() {
        let p = c as f64 / n;
        h_a -= p * p.log2();
    }
    let mut h_b = 0.0;
    for &c in t.count_b.values() {
        let p = c as f64 / n;
        h_b -= p * p.log2();
    }
    let mut mi = 0.0;
    for (&(x, y), &c) in &t.joint {
        let pxy = c as f64 / n;
        let px = t.count_a[&x] as f64 / n;
        let py = t.count_b[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).log2();
    }
    // VI = H(A) + H(B) - 2 I(A;B); clamp tiny negative fp residue.
    (h_a + h_b - 2.0 * mi).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_perfectly() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 9, 9, 0, 0]; // same partition, different names
        assert_eq!(rand_index(&a, &b), 1.0);
        assert!(variation_of_information(&a, &b) < 1e-12);
    }

    #[test]
    fn disjoint_partitions_score_poorly() {
        // a: all together; b: all apart.
        let a = vec![0; 6];
        let b = vec![0, 1, 2, 3, 4, 5];
        let ri = rand_index(&a, &b);
        // Pairs together in both: 0. Pairs apart in both: 0. RI = 0.
        assert_eq!(ri, 0.0);
        let vi = variation_of_information(&a, &b);
        assert!((vi - (6.0f64).log2()).abs() < 1e-9); // H(b) = log2 6
    }

    #[test]
    fn vi_is_symmetric() {
        let a = vec![0, 0, 1, 1, 1, 2];
        let b = vec![0, 1, 1, 1, 2, 2];
        let d1 = variation_of_information(&a, &b);
        let d2 = variation_of_information(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
        assert_eq!(rand_index(&a, &b), rand_index(&b, &a));
    }

    #[test]
    fn refinement_behaviour() {
        // b refines a (splits region 0 in two): RI < 1 but still high,
        // VI equals the conditional entropy of the refinement.
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 2, 2, 1, 1, 1, 1];
        let ri = rand_index(&a, &b);
        assert!(ri > 0.7 && ri < 1.0);
        let vi = variation_of_information(&a, &b);
        assert!(vi > 0.0 && vi < 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = rand_index(&[0, 1], &[0]);
    }

    #[test]
    fn single_pixel() {
        assert_eq!(rand_index(&[0], &[0]), 1.0);
        assert_eq!(variation_of_information(&[0], &[3]), 0.0);
    }
}
