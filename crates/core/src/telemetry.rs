//! Engine-agnostic telemetry: the measurement substrate behind every
//! paper table and figure.
//!
//! The paper's evaluation is built entirely on per-stage timings and
//! per-iteration merge counts measured on the CM-2/CM-5. This module gives
//! the reproduction a single, trustworthy way to collect the same numbers
//! from all four engines:
//!
//! * [`Telemetry`] — the sink trait. Engines emit structured events (stage
//!   spans, per-merge-iteration counters, tie-break stall/fallback counts,
//!   communication volume and round counters) through a `&mut dyn
//!   Telemetry`; they never format or time anything ad hoc.
//! * [`NullTelemetry`] — the zero-cost default. Every trait method has an
//!   empty default body and [`Telemetry::enabled`] returns `false`, so
//!   engines skip even the `Instant::now()` calls when nobody is listening.
//! * [`Recorder`] — an in-memory sink that accumulates a
//!   [`TelemetryReport`], which serializes to/from JSON through
//!   [`crate::json`] (this workspace builds offline; the JSON layer is
//!   in-tree).
//!
//! The cross-engine conformance test locks the substrate down: for a fixed
//! seed and configuration, all four engines must report identical
//! `merges_per_iteration`, split iteration counts, and final region counts
//! in their telemetry records.
//!
//! ## Event model
//!
//! A run is bracketed by [`Telemetry::run_start`] / [`Telemetry::run_end`].
//! In between the engine emits, in order:
//!
//! 1. one [`StageSpan`] per pipeline stage ([`Stage::Split`],
//!    [`Stage::Graph`], [`Stage::Merge`], [`Stage::Label`]), carrying the
//!    host wall-clock seconds and, for the simulated engines, the
//!    simulated seconds on the modelled machine;
//! 2. [`Telemetry::split_done`] with the split iteration count and square
//!    count;
//! 3. one [`MergeIterationRecord`] per merge iteration (merges performed,
//!    whether the iteration was a stall, whether the stall guard forced a
//!    smallest-ID fallback, and — for host engines — the backend's
//!    remaining active-edge count and whether the CSR backend compacted);
//! 4. [`Telemetry::merge_done`] with the final region count;
//! 5. optionally a [`CommRecord`] (message-passing engine) and any number
//!    of named [`Telemetry::counter`]s (e.g. the data-parallel engine's
//!    per-primitive operation counts).
//!
//! ## Hierarchical spans
//!
//! On top of the flat aggregate events, engines emit *hierarchical* span
//! begin/end events ([`Telemetry::span_begin`] / [`Telemetry::span_end`])
//! forming the tree
//!
//! ```text
//! run
//! └─ stage:{split,graph,merge,label}
//!    └─ iter:<n>                  (inside stage:merge)
//!       ├─ choice                 (host engines: candidate selection)
//!       ├─ apply                  (host engines: mutual-merge apply)
//!       ├─ compact                (host engines: relabel/filter/squeeze)
//!       └─ comm_round:<k>         (message-passing engine: one exchange)
//! ```
//!
//! Streaming sinks ([`crate::journal::JsonlSink`]) timestamp these events
//! on receipt, so a hung merge loop is visible mid-flight; the
//! [`SpanGuard`] RAII helper closes spans on scope exit so engines cannot
//! leak one open even on early return or panic unwind.
//!
//! ## Histogram metrics
//!
//! [`Histogram`] is a fixed-bucket log₂ histogram (65 buckets covering the
//! full `u64` range) that engines fill locally and flush once via
//! [`Telemetry::histogram`]: per-iteration wall time, merges per
//! iteration, region-size distribution at convergence, and per-round
//! message sizes. Histograms serialize into the JSON report.

use crate::config::{Config, Connectivity, Criterion, TieBreak};
use crate::json::{Json, JsonError};

/// A pipeline stage, as the paper's tables slice time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Bottom-up coalescing of maximal homogeneous squares.
    Split,
    /// Region-adjacency-graph construction (the paper folds this into the
    /// merge stage; telemetry keeps it separate and reports both views).
    Graph,
    /// Iterative mutual-choice merging.
    Merge,
    /// Final per-pixel label resolution/compaction.
    Label,
}

impl Stage {
    /// Stable lower-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Split => "split",
            Stage::Graph => "graph",
            Stage::Merge => "merge",
            Stage::Label => "label",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        match name {
            "split" => Some(Stage::Split),
            "graph" => Some(Stage::Graph),
            "merge" => Some(Stage::Merge),
            "label" => Some(Stage::Label),
            _ => None,
        }
    }
}

/// A node in the hierarchical span tree (see the module docs for the
/// hierarchy). Spans are emitted as begin/end event pairs; streaming sinks
/// timestamp them on receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A batch of images streamed through one pipeline (outermost span of
    /// the batch runtime; see [`crate::batch`]).
    Batch,
    /// One image of a batch (0-based index), nested in [`SpanKind::Batch`].
    BatchImage(u32),
    /// The whole run (outermost span, or nested in a
    /// [`SpanKind::BatchImage`] under the batch runtime).
    Run,
    /// One pipeline stage.
    Stage(Stage),
    /// One merge iteration (0-based), nested in [`Stage::Merge`].
    MergeIteration(u32),
    /// Candidate-selection phase of a merge iteration (host engines).
    Choice,
    /// Mutual-merge apply phase of a merge iteration (host engines).
    Apply,
    /// End-of-step relabel/filter/squeeze phase of a merge iteration
    /// (host engines).
    Compact,
    /// One communication exchange of a merge iteration (message-passing
    /// engine; the index is the exchange ordinal within the iteration).
    CommRound(u32),
    /// A tiled sharded run: per-tile driver runs plus the stitch pass
    /// (outermost span of the tiled runtime; see [`crate::tiles`]).
    Tiled,
    /// One tile of a tiled run (0-based raster index), nested in
    /// [`SpanKind::Tiled`]; each wraps a full per-tile `run` subtree.
    Tile(u32),
    /// The cross-tile stitch pass (seam RAG + boundary merge + global
    /// relabel), nested in [`SpanKind::Tiled`] after the tile spans.
    Stitch,
}

impl SpanKind {
    /// Stable label used in JSONL journals and trace exports, e.g.
    /// `"run"`, `"stage:merge"`, `"iter:3"`, `"comm_round:1"`.
    pub fn label(self) -> String {
        match self {
            SpanKind::Batch => "batch".to_string(),
            SpanKind::BatchImage(i) => format!("image:{i}"),
            SpanKind::Run => "run".to_string(),
            SpanKind::Stage(s) => format!("stage:{}", s.name()),
            SpanKind::MergeIteration(i) => format!("iter:{i}"),
            SpanKind::Choice => "choice".to_string(),
            SpanKind::Apply => "apply".to_string(),
            SpanKind::Compact => "compact".to_string(),
            SpanKind::CommRound(k) => format!("comm_round:{k}"),
            SpanKind::Tiled => "tiled".to_string(),
            SpanKind::Tile(i) => format!("tile:{i}"),
            SpanKind::Stitch => "stitch".to_string(),
        }
    }

    /// Inverse of [`SpanKind::label`].
    pub fn parse(label: &str) -> Option<SpanKind> {
        match label {
            "batch" => return Some(SpanKind::Batch),
            "run" => return Some(SpanKind::Run),
            "choice" => return Some(SpanKind::Choice),
            "apply" => return Some(SpanKind::Apply),
            "compact" => return Some(SpanKind::Compact),
            "tiled" => return Some(SpanKind::Tiled),
            "stitch" => return Some(SpanKind::Stitch),
            _ => {}
        }
        if let Some(name) = label.strip_prefix("stage:") {
            return Stage::from_name(name).map(SpanKind::Stage);
        }
        if let Some(n) = label.strip_prefix("image:") {
            return n.parse().ok().map(SpanKind::BatchImage);
        }
        if let Some(n) = label.strip_prefix("iter:") {
            return n.parse().ok().map(SpanKind::MergeIteration);
        }
        if let Some(n) = label.strip_prefix("comm_round:") {
            return n.parse().ok().map(SpanKind::CommRound);
        }
        if let Some(n) = label.strip_prefix("tile:") {
            return n.parse().ok().map(SpanKind::Tile);
        }
        None
    }

    /// Whether `self` may open directly inside `parent` (`None` = top
    /// level). This is the strict-nesting schema journal validation
    /// enforces.
    pub fn may_nest_in(self, parent: Option<SpanKind>) -> bool {
        match self {
            SpanKind::Batch => parent.is_none(),
            SpanKind::BatchImage(_) => parent == Some(SpanKind::Batch),
            SpanKind::Run => {
                parent.is_none()
                    || matches!(
                        parent,
                        Some(SpanKind::BatchImage(_)) | Some(SpanKind::Tile(_))
                    )
            }
            SpanKind::Stage(_) => parent == Some(SpanKind::Run),
            SpanKind::MergeIteration(_) => parent == Some(SpanKind::Stage(Stage::Merge)),
            SpanKind::Choice | SpanKind::Apply | SpanKind::Compact | SpanKind::CommRound(_) => {
                matches!(parent, Some(SpanKind::MergeIteration(_)))
            }
            SpanKind::Tiled => parent.is_none() || matches!(parent, Some(SpanKind::BatchImage(_))),
            SpanKind::Tile(_) | SpanKind::Stitch => parent == Some(SpanKind::Tiled),
        }
    }
}

/// RAII helper bracketing a hierarchical span: emits
/// [`Telemetry::span_begin`] on construction and the matching
/// [`Telemetry::span_end`] on drop, so a span cannot be leaked open by an
/// early return, `?`, or panic unwind. When the sink reports
/// `enabled() == false` neither event is emitted.
///
/// The guard exclusively borrows the sink; use [`SpanGuard::tel`] to emit
/// events *inside* the span (including opening nested guards).
pub struct SpanGuard<'a> {
    tel: &'a mut dyn Telemetry,
    kind: SpanKind,
    enabled: bool,
}

impl<'a> SpanGuard<'a> {
    /// Opens the span (no-op on a disabled sink).
    pub fn enter(tel: &'a mut dyn Telemetry, kind: SpanKind) -> Self {
        let enabled = tel.enabled();
        if enabled {
            tel.span_begin(kind);
        }
        Self { tel, kind, enabled }
    }

    /// The underlying sink, for emitting events inside the span.
    pub fn tel(&mut self) -> &mut dyn Telemetry {
        self.tel
    }

    /// Which span this guard brackets.
    pub fn kind(&self) -> SpanKind {
        self.kind
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.enabled {
            self.tel.span_end(self.kind);
        }
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds zeros, bucket
/// `i ≥ 1` holds values in `[2^(i−1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram over `u64` values.
///
/// Recording is allocation-free and O(1) (a `leading_zeros` and two adds),
/// cheap enough to stay always-on in engine hot loops once telemetry is
/// enabled. Merging two histograms is exact (bucket-wise addition), which
/// lets the message-passing driver fold per-node histograms into one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value: 0 for 0, else `64 − leading_zeros(v)`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self` (exact).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Upper bound of the bucket containing the `q`-quantile (a cheap
    /// order-of-magnitude percentile; `q` in `[0, 1]`).
    pub fn quantile_bucket_hi(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i >= 64 { u64::MAX } else { (1u64 << i) - 1 });
            }
        }
        Some(u64::MAX)
    }

    /// Serializes to a JSON object (sparse bucket list).
    ///
    /// The in-tree JSON layer is `f64`-backed, so `sum`/`min`/`max` are
    /// clamped to 2⁵³ (the largest exactly-representable integer); bucket
    /// indices and counts are always exact.
    pub fn to_json(&self) -> Json {
        // Largest u64 that survives an f64 round trip.
        fn j64(v: u64) -> Json {
            v.min(1u64 << 53).into()
        }
        let mut pairs: Vec<(&str, Json)> =
            vec![("count", self.count.into()), ("sum", j64(self.sum))];
        if self.count > 0 {
            pairs.push(("min", j64(self.min)));
            pairs.push(("max", j64(self.max)));
        }
        pairs.push((
            "buckets",
            Json::Arr(
                self.nonzero_buckets()
                    .map(|(i, c)| Json::Arr(vec![(i as u64).into(), c.into()]))
                    .collect(),
            ),
        ));
        Json::obj(pairs)
    }

    /// Parses a histogram from [`Histogram::to_json`] output.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let bad = |what: &str| JsonError {
            message: format!("histogram: bad or missing {what}"),
            offset: 0,
        };
        let mut h = Histogram::new();
        h.count = v
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("count"))?;
        h.sum = v
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("sum"))?;
        if h.count > 0 {
            h.min = v
                .get("min")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("min"))?;
            h.max = v
                .get("max")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("max"))?;
        }
        for pair in v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("buckets"))?
        {
            let items = pair.as_arr().ok_or_else(|| bad("bucket pair"))?;
            let (i, c) = match items {
                [i, c] => (
                    i.as_u64().ok_or_else(|| bad("bucket index"))?,
                    c.as_u64().ok_or_else(|| bad("bucket count"))?,
                ),
                _ => return Err(bad("bucket pair arity")),
            };
            if i as usize >= HISTOGRAM_BUCKETS {
                return Err(bad("bucket index range"));
            }
            h.counts[i as usize] = c;
        }
        Ok(h)
    }
}

/// One timed stage of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpan {
    /// Which stage.
    pub stage: Stage,
    /// Host wall-clock seconds spent in the stage.
    pub wall_seconds: f64,
    /// Simulated seconds on the modelled machine (`None` for the host
    /// engines, which run on real silicon).
    pub sim_seconds: Option<f64>,
}

/// One merge iteration's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeIterationRecord {
    /// Iteration index, starting at 0.
    pub iteration: u32,
    /// Region pairs merged this iteration.
    pub merges: u32,
    /// `true` when the stall guard forced a smallest-ID iteration
    /// (only possible under [`TieBreak::Random`]).
    pub used_fallback: bool,
    /// Active edges remaining after the iteration. Host engines report it
    /// from the merge backend; the simulated engines report `None`. The
    /// CSR backend's count may include parallel duplicate edges retained
    /// between compactions, so this field is informational and excluded
    /// from cross-engine conformance comparisons.
    pub active_edges: Option<u64>,
    /// Whether the CSR backend compacted its slot array this iteration
    /// (`None` when the engine does not run an in-core backend).
    pub compacted: Option<bool>,
}

/// Aggregate communication counters for a message-passing run.
#[derive(Debug, Clone, PartialEq)]
pub struct CommRecord {
    /// Communication scheme label ("LP" / "Async").
    pub scheme: String,
    /// Node count.
    pub nodes: usize,
    /// Total communication rounds executed (LP executes `Q−1` per
    /// exchange whether or not a pair has traffic; Async counts one round
    /// per exchange).
    pub rounds: u64,
    /// Total point-to-point messages sent across all nodes.
    pub messages: u64,
    /// Total point-to-point payload bytes sent across all nodes.
    pub bytes: u64,
}

/// One injected-fault (or recovery) event observed during a chaos run.
///
/// The message-passing engine forwards these from the CMMD fault-injection
/// layer: every drop, duplication, corruption, delay, stall, retry, dead
/// link, and — when the run could not be salvaged — the final `"degraded"`
/// marker recording the fallback to the host pipeline. Timestamps are
/// *virtual* nanoseconds on the sending node's clock, so a fault stream is
/// deterministic for a fixed seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Fault kind label: `"drop"`, `"dup"`, `"corrupt"`, `"delay"`,
    /// `"stall"`, `"retry"`, `"link_dead"`, `"peer_down"`, `"degraded"`.
    pub kind: String,
    /// Sending (or affected) node rank.
    pub src: u32,
    /// Destination rank (equal to `src` for node-local faults).
    pub dst: u32,
    /// Per-link message sequence number (0 for node-local faults).
    pub seq: u64,
    /// Virtual time of the fault, nanoseconds.
    pub ts_ns: f64,
}

/// Which side of a causal flow edge a [`FlowRecord`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// A logical point-to-point send, recorded by the source rank.
    Send,
    /// The matching receive, recorded by the destination rank.
    Recv,
    /// Participation in a control-network collective; all ranks record one
    /// with the same per-node ordinal, so participants pair across ranks.
    Collective,
}

impl FlowKind {
    /// The journal tag for this kind: `"send"`, `"recv"`, or `"coll"`.
    pub fn label(self) -> &'static str {
        match self {
            FlowKind::Send => "send",
            FlowKind::Recv => "recv",
            FlowKind::Collective => "coll",
        }
    }

    /// Parses a [`FlowKind::label`] string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "send" => Some(FlowKind::Send),
            "recv" => Some(FlowKind::Recv),
            "coll" => Some(FlowKind::Collective),
            _ => None,
        }
    }
}

/// One causal flow event from a traced message-passing run.
///
/// Sends and receives are correlated by `(stream, src, dst, seq)` — the
/// sequence number counts *logical* messages per link, so the pairing is
/// stable even when the chaos transport retransmits frames underneath.
/// Collective participations pair across ranks by their per-node ordinal.
/// `t_ns` is the virtual clock at operation completion; `wait_ns` is the
/// idle portion (blocked on the sender's arrival timestamp, waiting at a
/// collective rendezvous, or chaos retry timeouts on a send), which is what
/// the critical-path analysis in [`crate::analyze`] attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Send, receive, or collective participation.
    pub kind: FlowKind,
    /// Program-point tag (e.g. `"boundary"`, `"merge:stats"`).
    pub stream: String,
    /// Source rank (for collectives: the recording rank).
    pub src: u32,
    /// Destination rank (for collectives: the recording rank).
    pub dst: u32,
    /// Correlation sequence number (per-link message ordinal or per-node
    /// collective ordinal).
    pub seq: u64,
    /// Logical payload bytes.
    pub bytes: u64,
    /// Virtual time at operation completion, nanoseconds.
    pub t_ns: f64,
    /// Idle portion of the operation, nanoseconds.
    pub wait_ns: f64,
}

impl FlowRecord {
    /// The rank that recorded this event (source for sends and
    /// collectives, destination for receives).
    pub fn rank(&self) -> u32 {
        match self.kind {
            FlowKind::Send | FlowKind::Collective => self.src,
            FlowKind::Recv => self.dst,
        }
    }
}

/// The telemetry sink every engine reports into.
///
/// All methods have empty defaults so sinks implement only what they need;
/// [`NullTelemetry`] implements nothing and costs nothing.
pub trait Telemetry {
    /// `false` when events will be discarded — engines use this to skip
    /// timing syscalls entirely on the null sink.
    fn enabled(&self) -> bool {
        true
    }

    /// A run begins. `engine` is a stable label such as `"seq"`,
    /// `"rayon"`, `"datapar:CM-2 (8K procs)"`, or `"msgpass:Async:32"`.
    fn run_start(&mut self, _engine: &str, _width: usize, _height: usize, _config: &Config) {}

    /// A hierarchical span opens (see [`SpanKind`]). Streaming sinks
    /// timestamp the event on receipt; prefer [`SpanGuard`] over calling
    /// this directly so the matching [`Telemetry::span_end`] cannot be
    /// forgotten.
    fn span_begin(&mut self, _kind: SpanKind) {}

    /// The innermost open span closes. `kind` must match the most recent
    /// unclosed [`Telemetry::span_begin`] (spans are strictly nested).
    fn span_end(&mut self, _kind: SpanKind) {}

    /// A pipeline stage completed.
    fn stage(&mut self, _span: StageSpan) {}

    /// The split stage's outcome.
    fn split_done(&mut self, _iterations: u32, _num_squares: usize) {}

    /// One merge iteration completed.
    fn merge_iteration(&mut self, _rec: MergeIterationRecord) {}

    /// The merge stage's outcome.
    fn merge_done(&mut self, _num_regions: usize) {}

    /// Aggregate communication counters (message-passing engine only).
    fn comm(&mut self, _rec: CommRecord) {}

    /// One injected-fault event from a chaos run (message-passing engine
    /// only; never emitted on fault-free runs).
    fn fault(&mut self, _rec: FaultRecord) {}

    /// One causal flow event (traced message-passing runs only): a
    /// point-to-point send/receive edge or a collective participation,
    /// correlated by `(stream, src, dst, seq)`.
    fn flow(&mut self, _rec: FlowRecord) {}

    /// A named scalar counter (e.g. `"merge.send.ops"` from the
    /// data-parallel cost ledger).
    fn counter(&mut self, _name: &str, _value: f64) {}

    /// A named histogram, emitted once per run (e.g.
    /// `"merge.iter_wall_us"`, `"region_size_px"`).
    fn histogram(&mut self, _name: &str, _hist: &Histogram) {}

    /// The run is complete.
    fn run_end(&mut self) {}
}

/// The zero-cost default sink: discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTelemetry;

impl Telemetry for NullTelemetry {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// Snapshot of the [`Config`] carried in a report (everything that affects
/// the partition or the iteration counts).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigRecord {
    /// Homogeneity threshold `T`.
    pub threshold: u32,
    /// Tie-break policy name: `"smallest"`, `"largest"`, or `"random"`.
    pub tie_break: String,
    /// RNG seed when the policy is `"random"`.
    pub seed: Option<u64>,
    /// 4 or 8.
    pub connectivity: u8,
    /// `"range"` or `"mean"`.
    pub criterion: String,
    /// The split-square cap, if any.
    pub max_square_log2: Option<u8>,
    /// Stall tolerance before the smallest-ID fallback.
    pub max_stall: u32,
}

impl ConfigRecord {
    /// Captures the telemetry-relevant fields of a [`Config`].
    pub fn of(config: &Config) -> Self {
        let (tie_break, seed) = match config.tie_break {
            TieBreak::SmallestId => ("smallest".to_string(), None),
            TieBreak::LargestId => ("largest".to_string(), None),
            TieBreak::Random { seed } => ("random".to_string(), Some(seed)),
        };
        Self {
            threshold: config.threshold,
            tie_break,
            seed,
            connectivity: match config.connectivity {
                Connectivity::Four => 4,
                Connectivity::Eight => 8,
            },
            criterion: match config.criterion {
                Criterion::PixelRange => "range".to_string(),
                Criterion::MeanDifference => "mean".to_string(),
            },
            max_square_log2: config.max_square_log2,
            max_stall: config.max_stall,
        }
    }

    /// Serializes to a JSON object (shared by the report and the journal).
    pub fn to_json(&self) -> Json {
        let mut c: Vec<(&str, Json)> = vec![
            ("threshold", self.threshold.into()),
            ("tie_break", self.tie_break.as_str().into()),
        ];
        if let Some(seed) = self.seed {
            c.push(("seed", seed.into()));
        }
        c.push(("connectivity", u64::from(self.connectivity).into()));
        c.push(("criterion", self.criterion.as_str().into()));
        if let Some(cap) = self.max_square_log2 {
            c.push(("max_square_log2", u64::from(cap).into()));
        }
        c.push(("max_stall", self.max_stall.into()));
        Json::obj(c)
    }

    /// Parses a [`ConfigRecord`] from [`ConfigRecord::to_json`] output.
    pub fn from_json(c: &Json) -> Result<Self, JsonError> {
        let missing = |what: &str| JsonError {
            message: format!("config record missing {what}"),
            offset: 0,
        };
        Ok(ConfigRecord {
            threshold: c
                .get("threshold")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("threshold"))? as u32,
            tie_break: c
                .get("tie_break")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("tie_break"))?
                .to_string(),
            seed: c.get("seed").and_then(Json::as_u64),
            connectivity: c
                .get("connectivity")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("connectivity"))? as u8,
            criterion: c
                .get("criterion")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("criterion"))?
                .to_string(),
            max_square_log2: c
                .get("max_square_log2")
                .and_then(Json::as_u64)
                .map(|x| x as u8),
            max_stall: c
                .get("max_stall")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("max_stall"))? as u32,
        })
    }
}

/// A completed run's telemetry, ready for serialization or comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Engine label (see [`Telemetry::run_start`]).
    pub engine: String,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Configuration snapshot.
    pub config: Option<ConfigRecord>,
    /// Stage spans in emission order.
    pub stages: Vec<StageSpan>,
    /// Productive split iterations.
    pub split_iterations: u32,
    /// Squares at the end of the split stage.
    pub num_squares: usize,
    /// Per-iteration merge records.
    pub merge_iterations: Vec<MergeIterationRecord>,
    /// Zero-merge (stalled) iterations — only [`TieBreak::Random`] stalls.
    pub stall_iterations: u32,
    /// Iterations where the stall guard forced smallest-ID tie-breaking.
    pub fallback_iterations: u32,
    /// Regions at the end of the merge stage.
    pub num_regions: usize,
    /// Communication counters, when the engine communicates.
    pub comm: Option<CommRecord>,
    /// Named scalar counters in emission order.
    pub counters: Vec<(String, f64)>,
    /// Named histograms in emission order (see [`Histogram`]).
    pub histograms: Vec<(String, Histogram)>,
    /// Injected-fault events in emission order (chaos runs only; empty on
    /// fault-free runs, keeping their serialized reports byte-stable).
    pub faults: Vec<FaultRecord>,
    /// `true` when the run could not be completed on the faulted fabric
    /// and fell back to the host pipeline (unsurvivable chaos schedule).
    pub degraded: bool,
}

/// The cross-engine-comparable subset of a [`TelemetryReport`]: the
/// observable segmentation history, normalised by dropping everything that
/// legitimately varies between engines — timings, comm counters, engine
/// labels, named counters/histograms, and the host-engine backend
/// internals ([`MergeIterationRecord::active_edges`] /
/// [`MergeIterationRecord::compacted`], which the simulated engines derive
/// as `None`).
///
/// Two engines conform iff their `conformance_view()`s are equal; the
/// cross-engine tests assert exactly that instead of hand-rolling the
/// exclusions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceView {
    /// Configuration snapshot.
    pub config: Option<ConfigRecord>,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Productive split iterations.
    pub split_iterations: u32,
    /// Squares at the end of the split stage.
    pub num_squares: usize,
    /// Per-iteration merge records with backend-internal fields
    /// (`active_edges`, `compacted`) normalised to `None`.
    pub merge_iterations: Vec<MergeIterationRecord>,
    /// Zero-merge iterations.
    pub stall_iterations: u32,
    /// Stall-guard fallback iterations.
    pub fallback_iterations: u32,
    /// Regions at the end of the merge stage.
    pub num_regions: usize,
}

impl TelemetryReport {
    /// The `merges_per_iteration` vector the paper's analysis uses.
    pub fn merges_per_iteration(&self) -> Vec<u32> {
        self.merge_iterations.iter().map(|r| r.merges).collect()
    }

    /// Total merge iterations.
    pub fn total_merge_iterations(&self) -> u32 {
        self.merge_iterations.len() as u32
    }

    /// Wall or simulated seconds of a stage (simulated preferred when
    /// present — that is what the paper's tables report).
    pub fn stage_seconds(&self, stage: Stage) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.sim_seconds.unwrap_or(s.wall_seconds))
    }

    /// Merge-stage seconds as the paper reports them: graph setup folded
    /// into the merge stage.
    pub fn merge_seconds_as_reported(&self) -> Option<f64> {
        match (
            self.stage_seconds(Stage::Graph),
            self.stage_seconds(Stage::Merge),
        ) {
            (Some(g), Some(m)) => Some(g + m),
            (None, Some(m)) => Some(m),
            _ => None,
        }
    }

    /// A named counter's value.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A named histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The engine-invariant view used by cross-engine conformance tests
    /// (see [`ConformanceView`] for what is normalised away).
    pub fn conformance_view(&self) -> ConformanceView {
        ConformanceView {
            config: self.config.clone(),
            width: self.width,
            height: self.height,
            split_iterations: self.split_iterations,
            num_squares: self.num_squares,
            merge_iterations: self
                .merge_iterations
                .iter()
                .map(|r| MergeIterationRecord {
                    active_edges: None,
                    compacted: None,
                    ..*r
                })
                .collect(),
            stall_iterations: self.stall_iterations,
            fallback_iterations: self.fallback_iterations,
            num_regions: self.num_regions,
        }
    }

    /// A copy with every wall-clock time zeroed — the canonical form used
    /// by golden-file snapshots (wall times vary run to run; simulated
    /// times and all counters are deterministic). Wall-clock histograms
    /// (names ending in `_wall_us`) are dropped for the same reason.
    pub fn without_wall_times(&self) -> Self {
        let mut r = self.clone();
        for s in &mut r.stages {
            s.wall_seconds = 0.0;
        }
        r.histograms.retain(|(name, _)| !name.ends_with("_wall_us"));
        r
    }

    /// Serializes the report to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("engine", self.engine.as_str().into()),
            ("width", self.width.into()),
            ("height", self.height.into()),
        ];
        if let Some(cfg) = &self.config {
            pairs.push(("config", cfg.to_json()));
        }
        pairs.push((
            "stages",
            Json::Arr(
                self.stages
                    .iter()
                    .map(|s| {
                        let mut o: Vec<(&str, Json)> = vec![
                            ("stage", s.stage.name().into()),
                            ("wall_seconds", s.wall_seconds.into()),
                        ];
                        if let Some(sim) = s.sim_seconds {
                            o.push(("sim_seconds", sim.into()));
                        }
                        Json::obj(o)
                    })
                    .collect(),
            ),
        ));
        pairs.push((
            "split",
            Json::obj(vec![
                ("iterations", self.split_iterations.into()),
                ("num_squares", self.num_squares.into()),
            ]),
        ));
        let mut merge_fields: Vec<(&str, Json)> = vec![
            ("iterations", (self.merge_iterations.len() as u64).into()),
            (
                "merges_per_iteration",
                Json::Arr(
                    self.merge_iterations
                        .iter()
                        .map(|r| Json::from(r.merges))
                        .collect(),
                ),
            ),
            (
                "fallback_iterations_at",
                Json::Arr(
                    self.merge_iterations
                        .iter()
                        .filter(|r| r.used_fallback)
                        .map(|r| Json::from(r.iteration))
                        .collect(),
                ),
            ),
        ];
        // Backend counters are emitted only when the engine reported them
        // (the host engines do, the simulated engines don't) — absent
        // fields parse back to `None`, keeping pre-existing golden
        // snapshots byte-stable.
        let has_backend_counters = !self.merge_iterations.is_empty()
            && self
                .merge_iterations
                .iter()
                .all(|r| r.active_edges.is_some());
        if has_backend_counters {
            merge_fields.push((
                "active_edges_per_iteration",
                Json::Arr(
                    self.merge_iterations
                        .iter()
                        .map(|r| Json::from(r.active_edges.unwrap_or(0)))
                        .collect(),
                ),
            ));
            merge_fields.push((
                "compacted_at",
                Json::Arr(
                    self.merge_iterations
                        .iter()
                        .filter(|r| r.compacted == Some(true))
                        .map(|r| Json::from(r.iteration))
                        .collect(),
                ),
            ));
        }
        merge_fields.push(("stall_iterations", self.stall_iterations.into()));
        merge_fields.push(("fallback_iterations", self.fallback_iterations.into()));
        merge_fields.push(("num_regions", self.num_regions.into()));
        pairs.push(("merge", Json::obj(merge_fields)));
        if let Some(c) = &self.comm {
            pairs.push((
                "comm",
                Json::obj(vec![
                    ("scheme", c.scheme.as_str().into()),
                    ("nodes", c.nodes.into()),
                    ("rounds", c.rounds.into()),
                    ("messages", c.messages.into()),
                    ("bytes", c.bytes.into()),
                ]),
            ));
        }
        pairs.push((
            "counters",
            Json::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
        // Histograms are emitted only when present, keeping reports from
        // engines that record none byte-identical to the pre-histogram
        // schema.
        if !self.histograms.is_empty() {
            pairs.push((
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ));
        }
        // Fault fields exist only on chaos runs: fault-free reports stay
        // byte-identical to the pre-chaos schema.
        if !self.faults.is_empty() {
            pairs.push((
                "faults",
                Json::Arr(
                    self.faults
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("kind", f.kind.as_str().into()),
                                ("src", u64::from(f.src).into()),
                                ("dst", u64::from(f.dst).into()),
                                ("seq", f.seq.into()),
                                ("ts_ns", f.ts_ns.into()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if self.degraded {
            pairs.push(("degraded", self.degraded.into()));
        }
        Json::obj(pairs)
    }

    /// Pretty JSON text (two-space indent, trailing newline).
    pub fn to_json_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a report back from a JSON value produced by
    /// [`TelemetryReport::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let missing = |what: &str| JsonError {
            message: format!("telemetry report missing {what}"),
            offset: 0,
        };
        let engine = v
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("engine"))?
            .to_string();
        let width = v
            .get("width")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("width"))? as usize;
        let height = v
            .get("height")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("height"))? as usize;

        let config = match v.get("config") {
            None => None,
            Some(c) => Some(ConfigRecord::from_json(c)?),
        };

        let mut stages = Vec::new();
        for s in v
            .get("stages")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("stages"))?
        {
            let name = s
                .get("stage")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("stages[].stage"))?;
            stages.push(StageSpan {
                stage: Stage::from_name(name).ok_or_else(|| JsonError {
                    message: format!("unknown stage {name:?}"),
                    offset: 0,
                })?,
                wall_seconds: s
                    .get("wall_seconds")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| missing("stages[].wall_seconds"))?,
                sim_seconds: s.get("sim_seconds").and_then(Json::as_f64),
            });
        }

        let split = v.get("split").ok_or_else(|| missing("split"))?;
        let split_iterations = split
            .get("iterations")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("split.iterations"))? as u32;
        let num_squares = split
            .get("num_squares")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("split.num_squares"))? as usize;

        let merge = v.get("merge").ok_or_else(|| missing("merge"))?;
        let merges: Vec<u32> = merge
            .get("merges_per_iteration")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("merge.merges_per_iteration"))?
            .iter()
            .map(|m| m.as_u64().map(|x| x as u32))
            .collect::<Option<Vec<u32>>>()
            .ok_or_else(|| missing("merge.merges_per_iteration[]"))?;
        let fallback_at: Vec<u32> = merge
            .get("fallback_iterations_at")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|m| m.as_u64().map(|x| x as u32))
            .collect();
        // Optional backend counters (present only for host-engine reports).
        let active_per_iter: Option<Vec<u64>> = merge
            .get("active_edges_per_iteration")
            .and_then(Json::as_arr)
            .map(|arr| arr.iter().filter_map(Json::as_u64).collect());
        let compacted_at: Vec<u32> = merge
            .get("compacted_at")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|m| m.as_u64().map(|x| x as u32))
            .collect();
        let merge_iterations = merges
            .iter()
            .enumerate()
            .map(|(i, &m)| MergeIterationRecord {
                iteration: i as u32,
                merges: m,
                used_fallback: fallback_at.contains(&(i as u32)),
                active_edges: active_per_iter.as_ref().and_then(|a| a.get(i).copied()),
                compacted: active_per_iter
                    .as_ref()
                    .map(|_| compacted_at.contains(&(i as u32))),
            })
            .collect();
        let stall_iterations = merge
            .get("stall_iterations")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("merge.stall_iterations"))?
            as u32;
        let fallback_iterations = merge
            .get("fallback_iterations")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("merge.fallback_iterations"))?
            as u32;
        let num_regions = merge
            .get("num_regions")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("merge.num_regions"))? as usize;

        let comm = match v.get("comm") {
            None => None,
            Some(c) => Some(CommRecord {
                scheme: c
                    .get("scheme")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("comm.scheme"))?
                    .to_string(),
                nodes: c
                    .get("nodes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("comm.nodes"))? as usize,
                rounds: c
                    .get("rounds")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("comm.rounds"))?,
                messages: c
                    .get("messages")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("comm.messages"))?,
                bytes: c
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("comm.bytes"))?,
            }),
        };

        let counters = match v.get("counters") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|f| (k.clone(), f))
                        .ok_or_else(|| missing("counters values"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };

        let histograms = match v.get("histograms") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| Histogram::from_json(val).map(|h| (k.clone(), h)))
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };

        let faults = match v.get("faults").and_then(Json::as_arr) {
            None => Vec::new(),
            Some(arr) => arr
                .iter()
                .map(|f| {
                    Ok(FaultRecord {
                        kind: f
                            .get("kind")
                            .and_then(Json::as_str)
                            .ok_or_else(|| missing("faults[].kind"))?
                            .to_string(),
                        src: f
                            .get("src")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| missing("faults[].src"))?
                            as u32,
                        dst: f
                            .get("dst")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| missing("faults[].dst"))?
                            as u32,
                        seq: f
                            .get("seq")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| missing("faults[].seq"))?,
                        ts_ns: f
                            .get("ts_ns")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| missing("faults[].ts_ns"))?,
                    })
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
        };
        let degraded = v.get("degraded").and_then(Json::as_bool).unwrap_or(false);

        Ok(Self {
            engine,
            width,
            height,
            config,
            stages,
            split_iterations,
            num_squares,
            merge_iterations,
            stall_iterations,
            fallback_iterations,
            num_regions,
            comm,
            counters,
            histograms,
            faults,
            degraded,
        })
    }

    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// An in-memory [`Telemetry`] sink that builds a [`TelemetryReport`].
///
/// The recorder also tracks span begin/end balance: [`Recorder::open_spans`]
/// is the current open-span stack and [`Recorder::span_mismatches`] counts
/// `span_end` events that did not match the innermost open span (always 0
/// for well-behaved engines — the engine tests assert so).
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    report: TelemetryReport,
    finished: bool,
    open_spans: Vec<SpanKind>,
    span_mismatches: u32,
    spans_seen: u64,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated report (valid once the engine has called
    /// [`Telemetry::run_end`]; callable at any time for inspection).
    pub fn report(&self) -> &TelemetryReport {
        &self.report
    }

    /// Consumes the recorder, returning the report.
    pub fn into_report(self) -> TelemetryReport {
        self.report
    }

    /// `true` once [`Telemetry::run_end`] has been observed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The currently open span stack (outermost first).
    pub fn open_spans(&self) -> &[SpanKind] {
        &self.open_spans
    }

    /// `span_end` events that did not match the innermost open span.
    pub fn span_mismatches(&self) -> u32 {
        self.span_mismatches
    }

    /// Total `span_begin` events observed.
    pub fn spans_seen(&self) -> u64 {
        self.spans_seen
    }
}

impl Telemetry for Recorder {
    fn run_start(&mut self, engine: &str, width: usize, height: usize, config: &Config) {
        self.report = TelemetryReport {
            engine: engine.to_string(),
            width,
            height,
            config: Some(ConfigRecord::of(config)),
            ..TelemetryReport::default()
        };
        self.finished = false;
        self.open_spans.clear();
        self.span_mismatches = 0;
        self.spans_seen = 0;
    }

    fn span_begin(&mut self, kind: SpanKind) {
        self.open_spans.push(kind);
        self.spans_seen += 1;
    }

    fn span_end(&mut self, kind: SpanKind) {
        if self.open_spans.last() == Some(&kind) {
            self.open_spans.pop();
        } else {
            self.span_mismatches += 1;
        }
    }

    fn stage(&mut self, span: StageSpan) {
        self.report.stages.push(span);
    }

    fn split_done(&mut self, iterations: u32, num_squares: usize) {
        self.report.split_iterations = iterations;
        self.report.num_squares = num_squares;
    }

    fn merge_iteration(&mut self, rec: MergeIterationRecord) {
        if rec.merges == 0 {
            self.report.stall_iterations += 1;
        }
        if rec.used_fallback {
            self.report.fallback_iterations += 1;
        }
        self.report.merge_iterations.push(rec);
    }

    fn merge_done(&mut self, num_regions: usize) {
        self.report.num_regions = num_regions;
    }

    fn comm(&mut self, rec: CommRecord) {
        self.report.comm = Some(rec);
    }

    fn fault(&mut self, rec: FaultRecord) {
        if rec.kind == "degraded" {
            self.report.degraded = true;
        }
        self.report.faults.push(rec);
    }

    fn counter(&mut self, name: &str, value: f64) {
        // Counters are a *current value* track: re-emitting a name (the
        // message-passing engine updates cumulative `comm.*` counters per
        // iteration) overwrites in place, so the report holds the final
        // value once per name and its JSON object keys stay unique.
        // Streaming sinks see every intermediate emission.
        match self.report.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.report.counters.push((name.to_string(), value)),
        }
    }

    fn histogram(&mut self, name: &str, hist: &Histogram) {
        self.report
            .histograms
            .push((name.to_string(), hist.clone()));
    }

    fn run_end(&mut self) {
        self.finished = true;
    }
}

/// A [`Telemetry`] sink that forwards every event to each wrapped sink —
/// the way the CLI records a report, streams a JSONL journal, and captures
/// an in-memory event log from a single run.
pub struct Fanout<'a> {
    sinks: Vec<&'a mut dyn Telemetry>,
}

impl<'a> Fanout<'a> {
    /// Wraps the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn Telemetry>) -> Self {
        Self { sinks }
    }
}

impl Telemetry for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn run_start(&mut self, engine: &str, width: usize, height: usize, config: &Config) {
        for s in &mut self.sinks {
            s.run_start(engine, width, height, config);
        }
    }

    fn span_begin(&mut self, kind: SpanKind) {
        for s in &mut self.sinks {
            s.span_begin(kind);
        }
    }

    fn span_end(&mut self, kind: SpanKind) {
        for s in &mut self.sinks {
            s.span_end(kind);
        }
    }

    fn stage(&mut self, span: StageSpan) {
        for s in &mut self.sinks {
            s.stage(span);
        }
    }

    fn split_done(&mut self, iterations: u32, num_squares: usize) {
        for s in &mut self.sinks {
            s.split_done(iterations, num_squares);
        }
    }

    fn merge_iteration(&mut self, rec: MergeIterationRecord) {
        for s in &mut self.sinks {
            s.merge_iteration(rec);
        }
    }

    fn merge_done(&mut self, num_regions: usize) {
        for s in &mut self.sinks {
            s.merge_done(num_regions);
        }
    }

    fn comm(&mut self, rec: CommRecord) {
        for s in &mut self.sinks {
            s.comm(rec.clone());
        }
    }

    fn fault(&mut self, rec: FaultRecord) {
        for s in &mut self.sinks {
            s.fault(rec.clone());
        }
    }

    fn flow(&mut self, rec: FlowRecord) {
        for s in &mut self.sinks {
            s.flow(rec.clone());
        }
    }

    fn counter(&mut self, name: &str, value: f64) {
        for s in &mut self.sinks {
            s.counter(name, value);
        }
    }

    fn histogram(&mut self, name: &str, hist: &Histogram) {
        for s in &mut self.sinks {
            s.histogram(name, hist);
        }
    }

    fn run_end(&mut self) {
        for s in &mut self.sinks {
            s.run_end();
        }
    }
}

/// Reconstructs the per-iteration records of a merge run from its
/// `merges_per_iteration` vector by replaying the engine's stall-guard
/// state machine (see [`crate::merge::Merger::step`]): under
/// [`TieBreak::Random`], after `max_stall` consecutive zero-merge
/// iterations the next iteration falls back to smallest-ID.
///
/// The simulated engines record only the per-iteration merge counts on the
/// "device" side; this derivation recovers the stall/fallback annotations
/// identically to what the host engines emit live — the conformance test
/// asserts so.
pub fn derive_merge_iterations(
    merges_per_iteration: &[u32],
    tie: TieBreak,
    max_stall: u32,
) -> Vec<MergeIterationRecord> {
    let random = matches!(tie, TieBreak::Random { .. });
    let mut stalls = 0u32;
    merges_per_iteration
        .iter()
        .enumerate()
        .map(|(i, &merges)| {
            let used_fallback = random && stalls >= max_stall;
            if merges == 0 {
                stalls += 1;
            } else {
                stalls = 0;
            }
            MergeIterationRecord {
                iteration: i as u32,
                merges,
                used_fallback,
                // The simulated engines replay device-side merge counts
                // only; backend edge counters are host-engine data.
                active_edges: None,
                compacted: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        let mut rec = Recorder::new();
        let cfg = Config::with_threshold(10)
            .tie_break(TieBreak::Random { seed: 7 })
            .max_square_log2(Some(4));
        rec.run_start("datapar:CM-2 (8K procs)", 64, 64, &cfg);
        rec.stage(StageSpan {
            stage: Stage::Split,
            wall_seconds: 0.001,
            sim_seconds: Some(0.2),
        });
        rec.stage(StageSpan {
            stage: Stage::Graph,
            wall_seconds: 0.0005,
            sim_seconds: Some(0.05),
        });
        rec.stage(StageSpan {
            stage: Stage::Merge,
            wall_seconds: 0.002,
            sim_seconds: Some(9.5),
        });
        rec.split_done(4, 436);
        for (i, &m) in [5u32, 3, 0, 2].iter().enumerate() {
            rec.merge_iteration(MergeIterationRecord {
                iteration: i as u32,
                merges: m,
                used_fallback: i == 3,
                active_edges: None,
                compacted: None,
            });
        }
        rec.merge_done(2);
        rec.comm(CommRecord {
            scheme: "LP".to_string(),
            nodes: 32,
            rounds: 744,
            messages: 1234,
            bytes: 98765,
        });
        rec.counter("merge.send.ops", 42.0);
        rec.run_end();
        rec.into_report()
    }

    #[test]
    fn recorder_accumulates() {
        let r = sample_report();
        assert_eq!(r.engine, "datapar:CM-2 (8K procs)");
        assert_eq!(r.merges_per_iteration(), vec![5, 3, 0, 2]);
        assert_eq!(r.total_merge_iterations(), 4);
        assert_eq!(r.stall_iterations, 1);
        assert_eq!(r.fallback_iterations, 1);
        assert_eq!(r.num_regions, 2);
        assert_eq!(r.num_squares, 436);
        assert_eq!(r.stage_seconds(Stage::Split), Some(0.2));
        assert_eq!(r.merge_seconds_as_reported(), Some(9.55));
        assert_eq!(r.counter("merge.send.ops"), Some(42.0));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.config.as_ref().unwrap().tie_break, "random");
        assert_eq!(r.config.as_ref().unwrap().seed, Some(7));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.to_json_pretty();
        let back = TelemetryReport::parse(&text).unwrap();
        assert_eq!(back, r);
        // Compact form round-trips too.
        let back2 = TelemetryReport::parse(&r.to_json().to_compact()).unwrap();
        assert_eq!(back2, r);
    }

    #[test]
    fn backend_counters_round_trip() {
        // Host-engine style report: every iteration carries backend
        // counters; they must survive the JSON round trip exactly.
        let mut rec = Recorder::new();
        let cfg = Config::with_threshold(5);
        rec.run_start("seq", 8, 8, &cfg);
        rec.stage(StageSpan {
            stage: Stage::Merge,
            wall_seconds: 0.1,
            sim_seconds: None,
        });
        for (i, (m, act, comp)) in [(4u32, 30u64, false), (2, 12, true), (1, 0, false)]
            .into_iter()
            .enumerate()
        {
            rec.merge_iteration(MergeIterationRecord {
                iteration: i as u32,
                merges: m,
                used_fallback: false,
                active_edges: Some(act),
                compacted: Some(comp),
            });
        }
        rec.merge_done(3);
        rec.run_end();
        let r = rec.into_report();
        let text = r.to_json_pretty();
        assert!(text.contains("active_edges_per_iteration"), "{text}");
        assert!(text.contains("compacted_at"), "{text}");
        let back = TelemetryReport::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.merge_iterations[1].active_edges, Some(12));
        assert_eq!(back.merge_iterations[1].compacted, Some(true));
        assert_eq!(back.merge_iterations[2].compacted, Some(false));
        // A report without the counters omits the fields entirely (golden
        // snapshots for the simulated engines stay byte-stable).
        let simulated = sample_report();
        assert!(!simulated
            .to_json_pretty()
            .contains("active_edges_per_iteration"));
        let back = TelemetryReport::parse(&simulated.to_json_pretty()).unwrap();
        assert!(back
            .merge_iterations
            .iter()
            .all(|m| m.active_edges.is_none()));
    }

    #[test]
    fn without_wall_times_is_canonical() {
        let r = sample_report().without_wall_times();
        assert!(r.stages.iter().all(|s| s.wall_seconds == 0.0));
        // Simulated seconds survive.
        assert_eq!(r.stage_seconds(Stage::Merge), Some(9.5));
        // Canonical forms of two different runs of the same workload would
        // be identical text; at minimum it's self-stable:
        assert_eq!(
            r.to_json_pretty(),
            TelemetryReport::parse(&r.to_json_pretty())
                .unwrap()
                .to_json_pretty()
        );
    }

    #[test]
    fn null_telemetry_is_disabled() {
        let t = NullTelemetry;
        assert!(!t.enabled());
        // And a Recorder is enabled.
        assert!(Recorder::new().enabled());
    }

    #[test]
    fn derive_replays_stall_guard() {
        // max_stall = 2: iterations 0,1 stall; 2 stalls reached, so
        // iteration 2 uses the fallback; then a fresh stall run begins.
        let recs = derive_merge_iterations(&[0, 0, 3, 0, 1], TieBreak::Random { seed: 1 }, 2);
        let fallbacks: Vec<bool> = recs.iter().map(|r| r.used_fallback).collect();
        assert_eq!(fallbacks, vec![false, false, true, false, false]);
        // Non-random policies never fall back.
        let recs = derive_merge_iterations(&[0, 0, 3], TieBreak::SmallestId, 0);
        assert!(recs.iter().all(|r| !r.used_fallback));
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(TelemetryReport::parse("{}").is_err());
        assert!(TelemetryReport::parse("[1,2]").is_err());
        assert!(TelemetryReport::parse("not json").is_err());
        let e = TelemetryReport::parse(r#"{"engine":"seq"}"#).unwrap_err();
        assert!(e.message.contains("width"), "{e}");
    }

    #[test]
    fn stage_names_round_trip() {
        for s in [Stage::Split, Stage::Graph, Stage::Merge, Stage::Label] {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn span_kind_labels_round_trip() {
        let kinds = [
            SpanKind::Run,
            SpanKind::Stage(Stage::Split),
            SpanKind::Stage(Stage::Merge),
            SpanKind::MergeIteration(0),
            SpanKind::MergeIteration(4321),
            SpanKind::Choice,
            SpanKind::Apply,
            SpanKind::Compact,
            SpanKind::CommRound(7),
        ];
        for k in kinds {
            assert_eq!(SpanKind::parse(&k.label()), Some(k), "{}", k.label());
        }
        assert_eq!(SpanKind::parse("bogus"), None);
        assert_eq!(SpanKind::parse("stage:bogus"), None);
        assert_eq!(SpanKind::parse("iter:x"), None);
    }

    #[test]
    fn span_nesting_rules() {
        use SpanKind::*;
        assert!(Run.may_nest_in(None));
        assert!(!Run.may_nest_in(Some(Run)));
        assert!(Stage(super::Stage::Merge).may_nest_in(Some(Run)));
        assert!(!Stage(super::Stage::Merge).may_nest_in(None));
        assert!(MergeIteration(3).may_nest_in(Some(Stage(super::Stage::Merge))));
        assert!(!MergeIteration(3).may_nest_in(Some(Stage(super::Stage::Split))));
        for k in [Choice, Apply, Compact, CommRound(0)] {
            assert!(k.may_nest_in(Some(MergeIteration(9))));
            assert!(!k.may_nest_in(Some(Run)));
        }
    }

    #[test]
    fn span_guard_balances_even_on_early_exit() {
        let mut rec = Recorder::new();
        rec.run_start("seq", 4, 4, &Config::with_threshold(1));
        let run_early = |tel: &mut dyn Telemetry, bail: bool| {
            let mut g = SpanGuard::enter(tel, SpanKind::Run);
            {
                let mut s = SpanGuard::enter(g.tel(), SpanKind::Stage(Stage::Merge));
                if bail {
                    return; // guards drop in order: stage, then run
                }
                s.tel().merge_done(1);
            }
        };
        run_early(&mut rec, true);
        assert!(rec.open_spans().is_empty(), "{:?}", rec.open_spans());
        assert_eq!(rec.span_mismatches(), 0);
        run_early(&mut rec, false);
        assert!(rec.open_spans().is_empty());
        assert_eq!(rec.span_mismatches(), 0);
        assert_eq!(rec.spans_seen(), 4);
        // A guard on a disabled sink emits nothing.
        let mut null = NullTelemetry;
        let g = SpanGuard::enter(&mut null, SpanKind::Run);
        assert_eq!(g.kind(), SpanKind::Run);
        drop(g);
    }

    #[test]
    fn recorder_counts_span_mismatches() {
        let mut rec = Recorder::new();
        rec.span_begin(SpanKind::Run);
        rec.span_end(SpanKind::Choice); // mismatch
        rec.span_end(SpanKind::Run);
        assert_eq!(rec.span_mismatches(), 1);
        assert!(rec.open_spans().is_empty());
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_lo(1), 1);
        assert_eq!(Histogram::bucket_lo(11), 1024);
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 2), (2, 2), (3, 2), (4, 1), (11, 1), (64, 1)]
        );
        // Median of 10 values: the 5th smallest (3) lives in bucket 2.
        assert_eq!(h.quantile_bucket_hi(0.5), Some(3));
        assert_eq!(h.quantile_bucket_hi(1.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 9, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 2, 65_536] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_json_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 17, 4096, 1u64 << 40] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        // Empty histograms round-trip too (no min/max fields).
        let e = Histogram::new();
        assert_eq!(Histogram::from_json(&e.to_json()).unwrap(), e);
        assert!(Histogram::from_json(&Json::Null).is_err());
        // Stats beyond 2^53 (f64-exact range) clamp but still parse; the
        // bucket data stays exact.
        let mut big = Histogram::new();
        big.record(u64::MAX);
        let parsed = Histogram::from_json(&big.to_json()).unwrap();
        assert_eq!(parsed.count(), 1);
        assert_eq!(parsed.max(), Some(1u64 << 53));
        assert_eq!(parsed.nonzero_buckets().collect::<Vec<_>>(), vec![(64, 1)]);
    }

    #[test]
    fn report_histograms_round_trip_and_canonicalise() {
        let mut rec = Recorder::new();
        rec.run_start("seq", 8, 8, &Config::with_threshold(5));
        rec.stage(StageSpan {
            stage: Stage::Merge,
            wall_seconds: 0.1,
            sim_seconds: None,
        });
        rec.merge_done(3);
        let mut sizes = Histogram::new();
        sizes.record(12);
        sizes.record(52);
        let mut wall = Histogram::new();
        wall.record(900);
        rec.histogram("region_size_px", &sizes);
        rec.histogram("merge.iter_wall_us", &wall);
        rec.run_end();
        let r = rec.into_report();
        let text = r.to_json_pretty();
        assert!(text.contains("histograms"), "{text}");
        let back = TelemetryReport::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.histogram("region_size_px"), Some(&sizes));
        // Canonical form drops wall-clock histograms but keeps the rest.
        let canon = r.without_wall_times();
        assert!(canon.histogram("merge.iter_wall_us").is_none());
        assert_eq!(canon.histogram("region_size_px"), Some(&sizes));
        // Reports without histograms keep the pre-histogram schema.
        assert!(!sample_report().to_json_pretty().contains("histograms"));
    }

    #[test]
    fn conformance_view_normalises_backend_fields() {
        let mut a = sample_report();
        let mut b = sample_report();
        // Perturb everything conformance should ignore.
        b.engine = "rayon".into();
        b.stages[0].wall_seconds = 99.0;
        b.comm = None;
        b.counters.clear();
        b.histograms.push(("x".into(), Histogram::new()));
        for m in &mut b.merge_iterations {
            m.active_edges = Some(123);
            m.compacted = Some(true);
        }
        assert_eq!(a.conformance_view(), b.conformance_view());
        // But it must catch an observable divergence.
        a.merge_iterations[1].merges += 1;
        assert_ne!(a.conformance_view(), b.conformance_view());
    }

    #[test]
    fn fanout_forwards_to_every_sink() {
        let mut r1 = Recorder::new();
        let mut r2 = Recorder::new();
        {
            let mut fan = Fanout::new(vec![&mut r1, &mut r2]);
            assert!(fan.enabled());
            let cfg = Config::with_threshold(5);
            fan.run_start("seq", 8, 8, &cfg);
            fan.span_begin(SpanKind::Run);
            fan.split_done(1, 4);
            fan.merge_iteration(MergeIterationRecord {
                iteration: 0,
                merges: 2,
                used_fallback: false,
                active_edges: Some(3),
                compacted: Some(false),
            });
            fan.merge_done(2);
            fan.counter("x", 1.0);
            let mut h = Histogram::new();
            h.record(7);
            fan.histogram("h", &h);
            fan.comm(CommRecord {
                scheme: "LP".into(),
                nodes: 2,
                rounds: 1,
                messages: 1,
                bytes: 8,
            });
            fan.span_end(SpanKind::Run);
            fan.run_end();
        }
        assert_eq!(r1.report(), r2.report());
        assert!(r1.is_finished() && r2.is_finished());
        assert_eq!(r1.report().num_regions, 2);
        assert_eq!(r1.spans_seen(), 1);
        // A fanout over only disabled sinks is disabled.
        let mut n1 = NullTelemetry;
        let mut n2 = NullTelemetry;
        assert!(!Fanout::new(vec![&mut n1, &mut n2]).enabled());
    }
}
