//! The retained pre-optimisation split implementation: the differential
//! oracle for the packed engine in [`crate::split`] and the baseline of
//! the `bench_record split` suite.
//!
//! This is the original layout, kept verbatim on purpose: an
//! `Option<RegionStats>` pyramid and `Vec<bool>` `is_square` levels, both
//! padded to the enclosing power-of-two square
//! (`next_power_of_two(max(w, h))²`), with a branchy scalar per-block
//! coalesce test. Do **not** optimise it — its entire value is being the
//! simple, obviously-correct program the word-parallel engine must match
//! bit for bit (`prop_split_packed.rs`) and be measured against
//! (`BENCH_split.json`).

use crate::config::{Config, RegionStats};
use crate::split::{SplitMetrics, SplitResult, Square};
use rg_imaging::{Image, Intensity};

/// Runs the original (padded, Option-pyramid) split stage sequentially.
///
/// Produces output bit-identical to [`crate::split::split`] — squares,
/// stats, `square_of`, `iterations` — with its own [`SplitMetrics`]: here
/// `words_tested` counts *scalar block probes* (one per candidate block)
/// and `cells_folded` counts padded pyramid cells written, so the two
/// engines' counters quantify the work the packing saves.
pub fn split_reference<P: Intensity>(img: &Image<P>, config: &Config) -> SplitResult<P> {
    let (w, h) = (img.width(), img.height());
    let side = w.max(h).next_power_of_two();
    let top_possible = side.trailing_zeros() as usize;
    let cap = config
        .max_square_log2
        .map(|m| m as usize)
        .unwrap_or(top_possible)
        .min(top_possible);
    let mut metrics = SplitMetrics::default();

    // Stats pyramid over the padded square, every level up to the cap.
    let mut levels: Vec<Vec<Option<RegionStats<P>>>> = Vec::with_capacity(cap + 1);
    {
        let mut base = vec![None; side * side];
        for y in 0..h {
            for x in 0..w {
                base[y * side + x] = Some(RegionStats::of_pixel(img.get(x, y)));
            }
        }
        metrics.cells_folded += (side * side) as u64;
        metrics.levels_built += 1;
        levels.push(base);
    }
    for k in 1..=cap {
        let child_side = side >> (k - 1);
        let this_side = side >> k;
        let mut cur = vec![None; this_side * this_side];
        let child = &levels[k - 1];
        for by in 0..this_side {
            for bx in 0..this_side {
                let mut acc: Option<RegionStats<P>> = None;
                for (dy, dx) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
                    if let Some(c) = child[(2 * by + dy) * child_side + (2 * bx + dx)] {
                        acc = Some(match acc {
                            None => c,
                            Some(a) => a.fold(c),
                        });
                    }
                }
                cur[by * this_side + bx] = acc;
            }
        }
        metrics.cells_folded += (this_side * this_side) as u64;
        metrics.levels_built += 1;
        levels.push(cur);
    }

    // is_square[k]: bool map over the padded level-k block grid; level-0
    // squares are exactly the real pixels.
    let mut is_square: Vec<Vec<bool>> = Vec::with_capacity(cap + 1);
    {
        let mut l0 = vec![false; side * side];
        for y in 0..h {
            for cell in &mut l0[y * side..y * side + w] {
                *cell = true;
            }
        }
        is_square.push(l0);
    }

    let mut iterations = 0u32;
    let mut top = 0usize;
    for k in 1..=cap {
        let this_side = side >> k;
        let child_side = side >> (k - 1);
        let child_stats = &levels[k - 1];
        let child_sq = &is_square[k - 1];
        let b = 1usize << k;
        let mut cur = vec![false; this_side * this_side];
        let mut any = false;
        for by in 0..this_side {
            'blocks: for bx in 0..this_side {
                // The block must lie wholly inside the image...
                if (bx + 1) * b > w || (by + 1) * b > h {
                    continue;
                }
                // ...its four children must currently be whole squares...
                let mut kids = [RegionStats::of_pixel(P::MIN_VALUE); 4];
                for (i, (dy, dx)) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)]
                    .into_iter()
                    .enumerate()
                {
                    let ci = (2 * by + dy) * child_side + (2 * bx + dx);
                    if !child_sq[ci] {
                        continue 'blocks;
                    }
                    kids[i] = child_stats[ci].expect("whole child square has stats");
                }
                // ...and the combination must be homogeneous.
                if config.criterion.combine_ok(&kids, config.threshold) {
                    cur[by * this_side + bx] = true;
                    any = true;
                }
            }
        }
        metrics.words_tested += (this_side * this_side) as u64;
        is_square.push(cur);
        top = k;
        if any {
            iterations += 1;
        } else {
            break;
        }
    }
    metrics.productive_levels = iterations;

    // Extract maximal squares, top-down over the padded grid.
    let mut squares = Vec::new();
    let top_grid = side >> top;
    let mut stack = Vec::new();
    for by in (0..top_grid).rev() {
        for bx in (0..top_grid).rev() {
            stack.push((top, bx, by));
        }
    }
    while let Some((k, bx, by)) = stack.pop() {
        let b = 1usize << k;
        let (x0, y0) = (bx * b, by * b);
        if x0 >= w || y0 >= h {
            continue; // block entirely in the padding
        }
        let this_side = side >> k;
        if is_square[k][by * this_side + bx] {
            squares.push(Square {
                x: x0 as u32,
                y: y0 as u32,
                log2: k as u8,
            });
        } else if k > 0 {
            for (dy, dx) in [(1usize, 1usize), (1, 0), (0, 1), (0, 0)] {
                stack.push((k - 1, 2 * bx + dx, 2 * by + dy));
            }
        }
    }
    squares.sort_unstable_by_key(|s| (s.y, s.x));

    let mut stats = Vec::with_capacity(squares.len());
    let mut square_of = vec![u32::MAX; w * h];
    for (i, s) in squares.iter().enumerate() {
        let k = s.log2 as usize;
        let this_side = side >> k;
        let st = levels[k][(s.y as usize >> k) * this_side + (s.x as usize >> k)]
            .expect("emitted square has stats");
        stats.push(st);
        for y in s.y as usize..s.y as usize + s.side() as usize {
            for cell in
                &mut square_of[y * w + s.x as usize..y * w + s.x as usize + s.side() as usize]
            {
                *cell = i as u32;
            }
        }
    }
    debug_assert!(square_of.iter().all(|&q| q != u32::MAX));

    SplitResult {
        squares,
        stats,
        square_of,
        iterations,
        width: w,
        height: h,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split;
    use rg_imaging::synth;

    #[test]
    fn reference_matches_packed_on_fixed_scenes() {
        let images = [
            synth::figure1_image(),
            synth::nested_rects(64),
            synth::random_rects(96, 64, 10, 2),
            synth::checkerboard(8, 1, 0, 200),
        ];
        for img in &images {
            for t in [0u32, 3, 10, 40] {
                let cfg = Config::with_threshold(t);
                let a = split_reference(img, &cfg);
                let b = split(img, &cfg);
                assert_eq!(a.squares, b.squares);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.square_of, b.square_of);
                assert_eq!(a.iterations, b.iterations);
            }
        }
    }

    #[test]
    fn reference_counters_dominate_packed() {
        // The whole point of the packing: on the same scene the reference
        // path folds more (padded) cells and issues far more (scalar) test
        // ops than the packed engine's word probes.
        let img = synth::random_rects(96, 64, 10, 5);
        let cfg = Config::with_threshold(10);
        let r = split_reference(&img, &cfg);
        let p = split(&img, &cfg);
        assert!(r.metrics.cells_folded > p.metrics.cells_folded);
        assert!(r.metrics.words_tested > p.metrics.words_tested);
    }
}
