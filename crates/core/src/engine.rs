//! Top-level segmentation pipeline: split → RAG → merge → labels.

use crate::config::Config;
use crate::graph::Rag;
use crate::hierarchy::MergeTrace;
use crate::merge::{MergeSummary, Merger};
use crate::split::SplitResult;
use crate::telemetry::{NullTelemetry, Telemetry};
use rayon::prelude::*;
use rg_imaging::{Image, Intensity};
use std::time::Instant;

/// A wall-clock stopwatch that avoids the syscall when telemetry is off.
pub(crate) struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    pub(crate) fn start(enabled: bool) -> Self {
        Self {
            start: enabled.then(Instant::now),
        }
    }

    /// Seconds since construction (0.0 when disabled), restarting the
    /// stopwatch for the next stage.
    pub(crate) fn lap(&mut self) -> f64 {
        match &mut self.start {
            Some(t) => {
                let dt = t.elapsed().as_secs_f64();
                *t = Instant::now();
                dt
            }
            None => 0.0,
        }
    }
}

/// A completed segmentation.
///
/// `Default` yields an empty (zero-size) segmentation — the recyclable
/// output buffer for [`crate::pipeline::Pipeline::run_into`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Segmentation {
    /// Per-pixel compact region label in `0..num_regions`, numbered by
    /// first appearance in raster order (canonical across engines).
    pub labels: Vec<u32>,
    /// Number of regions found at the end of the merge stage.
    pub num_regions: usize,
    /// Number of square regions found at the end of the split stage.
    pub num_squares: usize,
    /// Productive split iterations.
    pub split_iterations: u32,
    /// Merge iterations executed.
    pub merge_iterations: u32,
    /// Merges performed per merge iteration.
    pub merges_per_iteration: Vec<u32>,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

impl Segmentation {
    /// Label of pixel `(x, y)`.
    #[inline]
    pub fn label(&self, x: usize, y: usize) -> u32 {
        self.labels[y * self.width + x]
    }

    /// `true` for a degenerate (zero-pixel) segmentation — e.g. a freshly
    /// `Default`-constructed recyclable buffer that has not been run yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Largest compact label, or `None` for a degenerate (empty)
    /// segmentation.
    ///
    /// Prefer this over `labels.iter().max().unwrap()`, which panics on
    /// empty label buffers; a degenerate segmentation simply has 0 regions.
    #[inline]
    pub fn max_label(&self) -> Option<u32> {
        self.labels.iter().copied().max()
    }

    /// Number of regions derived from the label buffer itself (`max + 1`,
    /// or 0 when degenerate). Equals [`Segmentation::num_regions`] for any
    /// well-formed segmentation; never panics.
    #[inline]
    pub fn derived_num_regions(&self) -> usize {
        self.max_label().map_or(0, |m| m as usize + 1)
    }
}

/// Runs the full split-and-merge pipeline sequentially.
pub fn segment<P: Intensity>(img: &Image<P>, config: &Config) -> Segmentation {
    run_pipeline(img, config, false, &mut NullTelemetry)
}

/// Like [`segment`], reporting stage spans and per-iteration merge
/// counters into the given [`Telemetry`] sink.
pub fn segment_with_telemetry<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    tel: &mut dyn Telemetry,
) -> Segmentation {
    run_pipeline(img, config, false, tel)
}

/// Like [`segment_par`], reporting into the given [`Telemetry`] sink.
pub fn segment_par_with_telemetry<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    tel: &mut dyn Telemetry,
) -> Segmentation {
    run_pipeline(img, config, true, tel)
}

/// Like [`segment`], additionally recording the [`MergeTrace`] — the full
/// merge dendrogram for hierarchical analysis (see [`crate::hierarchy`]).
pub fn segment_with_trace<P: Intensity>(
    img: &Image<P>,
    config: &Config,
) -> (Segmentation, MergeTrace) {
    segment_with_trace_telemetry(img, config, &mut NullTelemetry)
}

/// Like [`segment_with_trace`], reporting the full stage span sequence into
/// the given [`Telemetry`] sink (identical to [`segment_with_telemetry`]'s —
/// trace recording rides the unified stage driver, it no longer bypasses
/// telemetry).
pub fn segment_with_trace_telemetry<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    tel: &mut dyn Telemetry,
) -> (Segmentation, MergeTrace) {
    use crate::driver::{run_driver, TraceHook};
    let mut ws = crate::pipeline::Workspace::new();
    let mut out = Segmentation::default();
    let mut backend = crate::pipeline::HostBackend::new(img, config, false, &mut ws).with_trace();
    run_driver(&mut backend, tel, &mut out);
    let trace = backend.take_trace().expect("trace was enabled");
    (out, trace)
}

/// Runs the full pipeline with rayon parallelism. Produces exactly the same
/// segmentation as [`segment`].
pub fn segment_par<P: Intensity>(img: &Image<P>, config: &Config) -> Segmentation {
    run_pipeline(img, config, true, &mut NullTelemetry)
}

/// One-shot pipeline body: delegates to the plan/workspace layer
/// ([`crate::pipeline::run_host_into`]) with a throwaway workspace, so the
/// one-shot entry points and the reusable [`crate::pipeline::HostPipeline`]
/// share a single implementation (identical output and telemetry by
/// construction).
fn run_pipeline<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    parallel: bool,
    tel: &mut dyn Telemetry,
) -> Segmentation {
    let mut ws = crate::pipeline::Workspace::new();
    let mut out = Segmentation::default();
    crate::pipeline::run_host_into(img, config, parallel, tel, &mut ws, &mut out);
    out
}

/// Runs the merge stage over an existing split result, returning the merge
/// summary and the raw (uncompacted) per-pixel labels.
///
/// A bench/analysis helper, not an engine entry point: it opens no telemetry
/// spans — the span structure belongs to [`crate::driver::run_driver`].
pub fn merge_from_split<P: Intensity>(
    split_result: &SplitResult<P>,
    config: &Config,
    parallel: bool,
) -> (MergeSummary, Vec<u32>) {
    let rag = if parallel {
        Rag::from_split_par(split_result, config.connectivity)
    } else {
        Rag::from_split(split_result, config.connectivity)
    };
    let stride = split_result.width as u32;
    let ids: Vec<u64> = split_result
        .squares
        .iter()
        .map(|s| s.id(stride) as u64)
        .collect();
    let mut merger = Merger::new(rag, ids, config, parallel);
    let summary = merger.run();
    let by_vertex = merger.labels_by_vertex();
    let labels: Vec<u32> = if parallel {
        split_result
            .square_of
            .par_iter()
            .map(|&q| by_vertex[q as usize])
            .collect()
    } else {
        split_result
            .square_of
            .iter()
            .map(|&q| by_vertex[q as usize])
            .collect()
    };
    (summary, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TieBreak;
    use rg_imaging::synth;

    #[test]
    fn figure_image_end_to_end() {
        let img = synth::figure1_image();
        let cfg = Config::with_threshold(3).tie_break(TieBreak::SmallestId);
        let seg = segment(&img, &cfg);
        assert_eq!(seg.num_squares, 7);
        assert_eq!(seg.split_iterations, 1);
        assert_eq!(seg.merge_iterations, 3);
        assert_eq!(seg.num_regions, 2);
        // Region 0 is the high-intensity body, region 1 the bright corner.
        let expect = vec![
            0, 0, 1, 1, //
            0, 0, 0, 1, //
            0, 0, 0, 0, //
            0, 0, 0, 0,
        ];
        assert_eq!(seg.labels, expect);
        assert_eq!(seg.label(2, 0), 1);
        assert_eq!(seg.label(2, 1), 0);
    }

    #[test]
    fn paper_images_reach_expected_region_counts() {
        for pi in synth::PaperImage::ALL {
            // 64² scaled versions keep the test fast; counts are identical
            // by construction for the shapes that survive scaling.
            let img = pi.generate();
            let cfg = Config::with_threshold(synth::DEFAULT_THRESHOLD);
            let seg = segment(&img, &cfg);
            assert_eq!(
                seg.num_regions,
                pi.expected_final_regions(),
                "{pi:?} ({})",
                pi.description()
            );
        }
    }

    #[test]
    fn par_equals_seq_on_paper_images() {
        for pi in [synth::PaperImage::Image1, synth::PaperImage::Image3] {
            let img = pi.generate();
            for tie in [TieBreak::SmallestId, TieBreak::Random { seed: 11 }] {
                let cfg = Config::with_threshold(10).tie_break(tie);
                let a = segment(&img, &cfg);
                let b = segment_par(&img, &cfg);
                assert_eq!(a, b, "{pi:?} {tie:?}");
            }
        }
    }

    #[test]
    fn merge_only_baseline_agrees_on_partition() {
        // Disabling the split stage must not change the *final* partition
        // on scenes whose regions are flat (every intensity either merges
        // or doesn't, independent of grouping order).
        let img = synth::rect_collection(64);
        let with_split = segment(&img, &Config::with_threshold(10));
        let merge_only = segment(&img, &Config::with_threshold(10).max_square_log2(Some(0)));
        assert_eq!(with_split.num_regions, merge_only.num_regions);
        assert_eq!(with_split.labels, merge_only.labels);
        assert_eq!(merge_only.num_squares, 64 * 64);
        // The split stage saves merge iterations (the paper's motivation).
        assert!(with_split.merge_iterations <= merge_only.merge_iterations);
    }

    #[test]
    fn telemetry_matches_segmentation() {
        use crate::telemetry::{Recorder, Stage};
        let img = synth::nested_rects(64);
        let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 3 });
        let mut rec_seq = Recorder::new();
        let seg = segment_with_telemetry(&img, &cfg, &mut rec_seq);
        let mut rec_par = Recorder::new();
        let seg_par = segment_par_with_telemetry(&img, &cfg, &mut rec_par);
        assert_eq!(seg, seg_par);

        for (rec, engine) in [(&rec_seq, "seq"), (&rec_par, "rayon")] {
            let r = rec.report();
            assert!(rec.is_finished());
            assert_eq!(r.engine, engine);
            assert_eq!(r.width, 64);
            assert_eq!(r.height, 64);
            assert_eq!(r.merges_per_iteration(), seg.merges_per_iteration);
            assert_eq!(r.total_merge_iterations(), seg.merge_iterations);
            assert_eq!(r.split_iterations, seg.split_iterations);
            assert_eq!(r.num_squares, seg.num_squares);
            assert_eq!(r.num_regions, seg.num_regions);
            // All four stages present, in pipeline order, wall-clocked.
            let stages: Vec<Stage> = r.stages.iter().map(|s| s.stage).collect();
            assert_eq!(
                stages,
                vec![Stage::Split, Stage::Graph, Stage::Merge, Stage::Label]
            );
            assert!(r.stages.iter().all(|s| s.sim_seconds.is_none()));
            assert!(r.stages.iter().all(|s| s.wall_seconds >= 0.0));
        }
    }

    #[test]
    fn labels_are_dense_and_sized() {
        let img = synth::circle_collection(128);
        let seg = segment(&img, &Config::with_threshold(10));
        assert_eq!(seg.labels.len(), 128 * 128);
        // `derived_num_regions` is the panic-free form of the old
        // `labels.iter().max().unwrap() + 1` pattern.
        assert_eq!(seg.derived_num_regions(), seg.num_regions);
        assert_eq!(seg.num_regions, 11);
    }

    #[test]
    fn degenerate_segmentation_reports_zero_regions() {
        // A Default segmentation (the recyclable `run_into` buffer before
        // any run) is degenerate: the old `labels.iter().max().unwrap()`
        // pattern panicked on it; the accessors return 0 regions instead.
        let seg = Segmentation::default();
        assert!(seg.is_empty());
        assert_eq!(seg.max_label(), None);
        assert_eq!(seg.derived_num_regions(), 0);
        assert_eq!(seg.num_regions, 0);

        // Minimal legal images stay well-formed end to end on both host
        // engines (single pixel, single row, single column).
        for (w, h) in [(1usize, 1usize), (7, 1), (1, 7)] {
            let img = rg_imaging::Image::new(w, h, 42u8);
            let cfg = Config::with_threshold(10);
            for seg in [segment(&img, &cfg), segment_par(&img, &cfg)] {
                assert_eq!(seg.labels.len(), w * h, "{w}x{h}");
                assert_eq!(seg.num_regions, 1, "{w}x{h}");
                assert_eq!(seg.derived_num_regions(), 1, "{w}x{h}");
                assert!(!seg.is_empty());
            }
        }
    }
}
