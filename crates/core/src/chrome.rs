//! Chrome `trace_event` export: turns a journal event stream into the
//! Trace Event Format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) (open the file with *Open trace
//! file*).
//!
//! The export maps the journal's span tree onto duration events and its
//! counters onto counter tracks:
//!
//! * each *run* becomes one **process lane** (`pid` = run ordinal, process
//!   name = engine label), so a journal holding several engines' runs —
//!   e.g. `trace_convert a.jsonl b.jsonl` or one file with concatenated
//!   runs — renders as side-by-side lanes;
//! * span begin/end ([`EventKind::SpanBegin`] / [`EventKind::SpanEnd`])
//!   become `ph:"B"` / `ph:"E"` duration events on the run's main thread
//!   (`tid` 0, named `pipeline`);
//! * [`EventKind::MergeIteration`] feeds the `merges` and `active_edges`
//!   **counter tracks** (`ph:"C"`), [`EventKind::Counter`] feeds a track
//!   per counter name (the message-passing engine's cumulative
//!   `comm.bytes` among them);
//! * stage aggregates, split/merge outcomes, histograms, and `run_end`
//!   become instant events (`ph:"i"`) carrying their payload in `args`;
//! * causal flow records ([`EventKind::Flow`]) render on **per-rank thread
//!   lanes** (`tid` = rank + 1, named `rank N`): each matched send/recv
//!   pair becomes a flow arrow (`ph:"s"` → `ph:"f"`, bound by the string
//!   id `stream:src>dst:seq`), collective rendezvous waits become
//!   instants, and every rank feeds a `util:rankN` counter track with its
//!   cumulative busy share of the virtual clock.
//!
//! Timestamps are the journal's `t_us` (already microseconds, the unit the
//! format requires); flow events instead use their own **virtual** clock
//! (`t_ns / 1000`), so rank lanes show simulated time while the pipeline
//! lane shows host time. [`validate_chrome_trace`] checks a produced
//! document against the subset of the format this module emits — the CI
//! trace job and the schema tests run it on real engine output.

use std::collections::HashSet;

use crate::journal::{Event, EventKind};
use crate::json::Json;
use crate::telemetry::FlowKind;

/// The fixed `tid` every run's events land on (one thread lane per run).
const MAIN_TID: u64 = 0;

fn ev_base(ph: &str, name: &str, pid: u64, ts: u64) -> Vec<(&'static str, Json)> {
    vec![
        ("name", name.into()),
        ("ph", ph.into()),
        ("pid", pid.into()),
        ("tid", MAIN_TID.into()),
        ("ts", ts.into()),
    ]
}

fn metadata(name: &str, pid: u64, arg_name: &str) -> Json {
    Json::obj(vec![
        ("name", name.into()),
        ("ph", "M".into()),
        ("pid", pid.into()),
        ("tid", MAIN_TID.into()),
        ("ts", 0u64.into()),
        ("args", Json::obj(vec![("name", arg_name.into())])),
    ])
}

fn counter(name: &str, pid: u64, ts: u64, value: f64) -> Json {
    let mut o = ev_base("C", name, pid, ts);
    o.push(("args", Json::obj(vec![("value", value.into())])));
    Json::obj(o)
}

fn instant(name: &str, pid: u64, ts: u64, args: Vec<(&'static str, Json)>) -> Json {
    let mut o = ev_base("i", name, pid, ts);
    o.push(("s", "t".into())); // thread-scoped instant
    o.push(("args", Json::obj(args)));
    Json::obj(o)
}

/// Like [`ev_base`] but on an explicit rank lane with a fractional
/// (virtual-clock) timestamp — the base of every flow-record event.
fn lane_base(ph: &str, name: &str, pid: u64, tid: u64, ts: f64) -> Vec<(&'static str, Json)> {
    vec![
        ("name", name.into()),
        ("ph", ph.into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("ts", ts.into()),
    ]
}

/// Appends one run's trace events (process lane `pid`) to `out`.
///
/// The output is always `B`/`E`-balanced even when the journal is not: a
/// truncated journal (e.g. a run that panicked mid-flight) leaves spans
/// open, and those are closed here at the last observed timestamp; span
/// ends with no matching open begin are dropped. This keeps post-mortem
/// traces loadable and [`validate_chrome_trace`]-clean.
fn push_run(out: &mut Vec<Json>, events: &[Event], pid: u64) {
    let mut open_spans: Vec<String> = Vec::new();
    let mut last_ts = 0u64;
    // Flow-lane state: which ranks already have a named lane, each rank's
    // cumulative wait (for the utilization counter), and which flow ids
    // have an emitted `s` half (an `f` with no prior `s` would break the
    // binding, so unmatched receives fall back to instants).
    let mut rank_lanes: Vec<u32> = Vec::new();
    let mut rank_wait: Vec<(u32, f64)> = Vec::new();
    let mut sent_ids: HashSet<String> = HashSet::new();
    for ev in events {
        let ts = ev.t_us;
        last_ts = last_ts.max(ts);
        match &ev.kind {
            EventKind::RunStart {
                engine,
                width,
                height,
                ..
            } => {
                out.push(metadata("process_name", pid, engine));
                out.push(metadata("thread_name", pid, "pipeline"));
                out.push(instant(
                    "run_start",
                    pid,
                    ts,
                    vec![
                        ("engine", engine.as_str().into()),
                        ("width", (*width).into()),
                        ("height", (*height).into()),
                    ],
                ));
            }
            EventKind::SpanBegin { span } => {
                open_spans.push(span.label());
                out.push(Json::obj(ev_base("B", &span.label(), pid, ts)));
            }
            EventKind::SpanEnd { span } => {
                // Only emit an E that matches the innermost open B; an
                // orphan end (malformed journal) is dropped to keep the
                // trace balanced.
                if open_spans.last().map(String::as_str) == Some(span.label().as_str()) {
                    open_spans.pop();
                    out.push(Json::obj(ev_base("E", &span.label(), pid, ts)));
                }
            }
            EventKind::Stage { span } => {
                let mut args: Vec<(&'static str, Json)> =
                    vec![("wall_seconds", span.wall_seconds.into())];
                if let Some(sim) = span.sim_seconds {
                    args.push(("sim_seconds", sim.into()));
                }
                out.push(instant(
                    &format!("stage_done:{}", span.stage.name()),
                    pid,
                    ts,
                    args,
                ));
            }
            EventKind::SplitDone {
                iterations,
                num_squares,
            } => {
                out.push(instant(
                    "split_done",
                    pid,
                    ts,
                    vec![
                        ("iterations", (*iterations).into()),
                        ("num_squares", (*num_squares).into()),
                    ],
                ));
            }
            EventKind::MergeIteration { rec } => {
                out.push(counter("merges", pid, ts, f64::from(rec.merges)));
                if let Some(a) = rec.active_edges {
                    out.push(counter("active_edges", pid, ts, a as f64));
                }
            }
            EventKind::MergeDone { num_regions } => {
                out.push(instant(
                    "merge_done",
                    pid,
                    ts,
                    vec![("num_regions", (*num_regions).into())],
                ));
            }
            EventKind::Comm { rec } => {
                out.push(instant(
                    "comm_totals",
                    pid,
                    ts,
                    vec![
                        ("scheme", rec.scheme.as_str().into()),
                        ("nodes", rec.nodes.into()),
                        ("rounds", rec.rounds.into()),
                        ("messages", rec.messages.into()),
                        ("bytes", rec.bytes.into()),
                    ],
                ));
            }
            EventKind::Fault { rec } => {
                out.push(instant(
                    &format!("fault:{}", rec.kind),
                    pid,
                    ts,
                    vec![
                        ("src", rec.src.into()),
                        ("dst", rec.dst.into()),
                        ("seq", rec.seq.into()),
                        ("ts_ns", rec.ts_ns.into()),
                    ],
                ));
            }
            EventKind::Counter { name, value } => {
                out.push(counter(name, pid, ts, *value));
            }
            EventKind::Histogram { name, hist } => {
                let mut args: Vec<(&'static str, Json)> = vec![
                    ("count", hist.count().into()),
                    ("sum", hist.sum().min(1u64 << 53).into()),
                ];
                if let Some(m) = hist.mean() {
                    args.push(("mean", m.into()));
                }
                if let Some(m) = hist.max() {
                    args.push(("max", m.min(1u64 << 53).into()));
                }
                out.push(instant(&format!("hist:{name}"), pid, ts, args));
            }
            EventKind::RunEnd { dropped } => {
                out.push(instant(
                    "run_end",
                    pid,
                    ts,
                    vec![("dropped", (*dropped).into())],
                ));
            }
            EventKind::Flow { rec } => {
                let rank = rec.rank();
                let tid = u64::from(rank) + 1;
                if !rank_lanes.contains(&rank) {
                    rank_lanes.push(rank);
                    let mut m = lane_base("M", "thread_name", pid, tid, 0.0);
                    m.push((
                        "args",
                        Json::obj(vec![("name", format!("rank {rank}").into())]),
                    ));
                    out.push(Json::obj(m));
                }
                let vts = rec.t_ns / 1000.0; // virtual ns -> us
                let id = format!("{}:{}>{}:{}", rec.stream, rec.src, rec.dst, rec.seq);
                let name = format!("msg:{}", rec.stream);
                match rec.kind {
                    FlowKind::Send => {
                        let mut o = lane_base("s", &name, pid, tid, vts);
                        sent_ids.insert(id.clone());
                        o.push(("id", id.into()));
                        o.push((
                            "args",
                            Json::obj(vec![
                                ("bytes", rec.bytes.into()),
                                ("retry_wait_ns", rec.wait_ns.into()),
                            ]),
                        ));
                        out.push(Json::obj(o));
                    }
                    FlowKind::Recv => {
                        if sent_ids.contains(&id) {
                            let mut o = lane_base("f", &name, pid, tid, vts);
                            o.push(("bp", "e".into())); // bind to enclosing slice
                            o.push(("id", id.into()));
                            o.push((
                                "args",
                                Json::obj(vec![
                                    ("bytes", rec.bytes.into()),
                                    ("wait_ns", rec.wait_ns.into()),
                                ]),
                            ));
                            out.push(Json::obj(o));
                        } else {
                            // Truncated journal lost the send half; keep the
                            // trace loadable with an instant instead.
                            let mut o = lane_base("i", &name, pid, tid, vts);
                            o.push(("s", "t".into()));
                            o.push((
                                "args",
                                Json::obj(vec![
                                    ("bytes", rec.bytes.into()),
                                    ("wait_ns", rec.wait_ns.into()),
                                ]),
                            ));
                            out.push(Json::obj(o));
                        }
                    }
                    FlowKind::Collective => {
                        if rec.wait_ns > 0.0 {
                            let mut o =
                                lane_base("i", &format!("coll_wait:{}", rec.stream), pid, tid, vts);
                            o.push(("s", "t".into()));
                            o.push(("args", Json::obj(vec![("wait_ns", rec.wait_ns.into())])));
                            out.push(Json::obj(o));
                        }
                    }
                }
                // Utilization counter: busy share of this rank's virtual
                // clock so far.
                let w = match rank_wait.iter_mut().find(|(r, _)| *r == rank) {
                    Some((_, w)) => w,
                    None => {
                        rank_wait.push((rank, 0.0));
                        &mut rank_wait.last_mut().expect("just pushed").1
                    }
                };
                *w += rec.wait_ns;
                if rec.t_ns > 0.0 {
                    let util = 100.0 * (rec.t_ns - *w).max(0.0) / rec.t_ns;
                    let mut o = lane_base("C", &format!("util:rank{rank}"), pid, tid, vts);
                    o.push(("args", Json::obj(vec![("value", util.into())])));
                    out.push(Json::obj(o));
                }
            }
        }
    }
    // Close anything the journal left open (truncated / panicked run) at
    // the last observed timestamp, innermost first.
    while let Some(label) = open_spans.pop() {
        out.push(Json::obj(ev_base("E", &label, pid, last_ts)));
    }
}

/// Splits a journal stream into runs (each *top-level* `run_start` opens
/// a new one); events before the first boundary form a run of their own.
///
/// A `run_start` emitted while spans are open is **not** a boundary: the
/// batch (`batch` > `image:<i>`) and tiled (`tiled` > `tile:<i>`) runtimes
/// wrap many driver runs in outer spans, and cutting there would slice
/// those spans across chunks, breaking span balance in every piece.
pub fn split_runs(events: &[Event]) -> Vec<&[Event]> {
    let mut depth = 0usize;
    let mut starts: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::RunStart { .. } if depth == 0 => starts.push(i),
            EventKind::SpanBegin { .. } => depth += 1,
            EventKind::SpanEnd { .. } => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    if starts.first() != Some(&0) {
        starts.insert(0, 0);
    }
    starts
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let end = starts.get(k + 1).copied().unwrap_or(events.len());
            &events[s..end]
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// Converts journal events into a Chrome Trace Event Format document.
///
/// Each run in the stream gets its own process lane (`pid` = run ordinal,
/// starting at 1). The result is the JSON-object flavour of the format:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
pub fn chrome_trace(events: &[Event]) -> Json {
    chrome_trace_multi(&split_runs(events))
}

/// Converts several journals (one per process lane) into one document —
/// the per-engine side-by-side view.
pub fn chrome_trace_multi(runs: &[&[Event]]) -> Json {
    let mut out = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        push_run(&mut out, run, i as u64 + 1);
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", "ms".into()),
    ])
}

/// Validates a document against the subset of the Trace Event Format this
/// module emits: the top-level shape, per-event required fields, known
/// phase codes, per-`pid` `B`/`E` balance with LIFO matching by name, and
/// flow binding (every `ph:"f"` finish must name an id with a prior
/// `ph:"s"` start in the same process lane).
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    // Per-pid stack of open duration-event names.
    let mut open: Vec<(u64, Vec<String>)> = Vec::new();
    // Flow ids with an emitted start half, per pid.
    let mut flow_starts: HashSet<(u64, String)> = HashSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |what: &str| format!("traceEvents[{i}]: {what}");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("missing pid"))?;
        ev.get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("missing tid"))?;
        ev.get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing ts"))?;
        let stack = match open.iter_mut().find(|(p, _)| *p == pid) {
            Some((_, s)) => s,
            None => {
                open.push((pid, Vec::new()));
                &mut open.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => match stack.pop() {
                Some(top) if top == name => {}
                Some(top) => {
                    return Err(ctx(&format!(
                        "E {name:?} does not match open B {top:?} (pid {pid})"
                    )))
                }
                None => return Err(ctx(&format!("E {name:?} with no open B (pid {pid})"))),
            },
            "C" => {
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ctx("counter event missing args.value"))?;
            }
            "i" => {
                ev.get("args").ok_or_else(|| ctx("instant missing args"))?;
            }
            "M" => {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("metadata missing args.name"))?;
            }
            "s" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("flow start missing id"))?;
                flow_starts.insert((pid, id.to_string()));
            }
            "f" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("flow finish missing id"))?;
                if !flow_starts.contains(&(pid, id.to_string())) {
                    return Err(ctx(&format!(
                        "flow finish id {id:?} has no prior start (pid {pid})"
                    )));
                }
            }
            other => return Err(ctx(&format!("unknown phase {other:?}"))),
        }
    }
    for (pid, stack) in &open {
        if let Some(top) = stack.last() {
            return Err(format!(
                "pid {pid}: {} duration event(s) left open (innermost {top:?})",
                stack.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, TieBreak};
    use crate::telemetry::{MergeIterationRecord, SpanKind, Stage, StageSpan, Telemetry};

    fn traced_run(engine: &str) -> Vec<Event> {
        let cfg = Config::with_threshold(8).tie_break(TieBreak::SmallestId);
        let mut log = crate::journal::EventLog::in_memory();
        let tel: &mut dyn Telemetry = &mut log;
        tel.run_start(engine, 32, 32, &cfg);
        tel.span_begin(SpanKind::Run);
        tel.span_begin(SpanKind::Stage(Stage::Merge));
        tel.span_begin(SpanKind::MergeIteration(0));
        tel.merge_iteration(MergeIterationRecord {
            iteration: 0,
            merges: 4,
            used_fallback: false,
            active_edges: Some(10),
            compacted: None,
        });
        tel.span_end(SpanKind::MergeIteration(0));
        tel.span_end(SpanKind::Stage(Stage::Merge));
        tel.stage(StageSpan {
            stage: Stage::Merge,
            wall_seconds: 0.25,
            sim_seconds: Some(0.5),
        });
        tel.counter("comm.bytes", 1024.0);
        tel.merge_done(3);
        tel.span_end(SpanKind::Run);
        tel.run_end();
        log.into_events()
    }

    #[test]
    fn export_validates_and_has_expected_tracks() {
        let events = traced_run("seq");
        let doc = chrome_trace(&events);
        validate_chrome_trace(&doc).unwrap();
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = arr
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"process_name"));
        assert!(names.contains(&"run"));
        assert!(names.contains(&"stage:merge"));
        assert!(names.contains(&"iter:0"));
        assert!(names.contains(&"merges"));
        assert!(names.contains(&"active_edges"));
        assert!(names.contains(&"comm.bytes"));
        assert!(names.contains(&"run_end"));
        // The document parses back from text (what the CLI writes).
        let reparsed = Json::parse(&doc.to_pretty()).unwrap();
        validate_chrome_trace(&reparsed).unwrap();
    }

    #[test]
    fn multiple_runs_get_distinct_process_lanes() {
        let mut stream = traced_run("seq");
        stream.extend(traced_run("rayon"));
        let runs = split_runs(&stream);
        assert_eq!(runs.len(), 2);
        let doc = chrome_trace(&stream);
        validate_chrome_trace(&doc).unwrap();
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let pids: std::collections::BTreeSet<u64> = arr
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn truncated_journal_exports_balanced_trace() {
        let mut events = traced_run("seq");
        // Cut the journal mid-flight: drop the trailing run_end, span ends.
        events.truncate(4); // run_start, B run, B stage:merge, B iter:0
        let doc = chrome_trace(&events);
        // Auto-closed spans keep the export valid post-mortem.
        validate_chrome_trace(&doc).unwrap();
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let ends: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(ends, vec!["iter:0", "stage:merge", "run"]);
    }

    fn flow_event(kind: FlowKind, src: u32, dst: u32, t_ns: f64, wait_ns: f64) -> Event {
        Event {
            t_us: 0,
            kind: EventKind::Flow {
                rec: crate::telemetry::FlowRecord {
                    kind,
                    stream: "boundary".to_string(),
                    src,
                    dst,
                    seq: 0,
                    bytes: 64,
                    t_ns,
                    wait_ns,
                },
            },
        }
    }

    #[test]
    fn flow_records_export_as_bound_arrows_on_rank_lanes() {
        let mut events = traced_run("msgpass");
        let end = events.pop().expect("run_end"); // keep flows inside the run
        events.push(flow_event(FlowKind::Send, 0, 1, 100.0, 0.0));
        events.push(flow_event(FlowKind::Recv, 0, 1, 130.0, 20.0));
        events.push(flow_event(FlowKind::Collective, 1, 1, 150.0, 5.0));
        events.push(end);
        let doc = chrome_trace(&events);
        validate_chrome_trace(&doc).unwrap();
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phase_of = |ph: &str| -> Vec<&Json> {
            arr.iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .collect()
        };
        let starts = phase_of("s");
        let finishes = phase_of("f");
        assert_eq!(starts.len(), 1);
        assert_eq!(finishes.len(), 1);
        assert_eq!(
            starts[0].get("id").and_then(Json::as_str),
            Some("boundary:0>1:0")
        );
        assert_eq!(
            finishes[0].get("id").and_then(Json::as_str),
            Some("boundary:0>1:0")
        );
        // Send on rank 0's lane (tid 1), recv on rank 1's (tid 2).
        assert_eq!(starts[0].get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(finishes[0].get("tid").and_then(Json::as_u64), Some(2));
        let names: Vec<&str> = arr
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"coll_wait:boundary"));
        assert!(names.contains(&"util:rank0"));
        assert!(names.contains(&"util:rank1"));
        // The rank lanes are named.
        let lane_names: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(lane_names.contains(&"rank 0"));
        assert!(lane_names.contains(&"rank 1"));
    }

    #[test]
    fn orphan_recv_degrades_to_instant_and_still_validates() {
        // A truncated journal that lost the send half: no `f` without `s`.
        let events = vec![flow_event(FlowKind::Recv, 0, 1, 130.0, 20.0)];
        let doc = chrome_trace(&events);
        validate_chrome_trace(&doc).unwrap();
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!arr
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("f")));
    }

    #[test]
    fn validator_rejects_unbound_flow_finish() {
        let doc = Json::obj(vec![(
            "traceEvents",
            Json::Arr(vec![Json::obj(vec![
                ("name", "msg:x".into()),
                ("ph", "f".into()),
                ("pid", 1u64.into()),
                ("tid", 1u64.into()),
                ("ts", 0u64.into()),
                ("id", "x:0>1:0".into()),
            ])]),
        )]);
        let err = validate_chrome_trace(&doc).unwrap_err();
        assert!(err.contains("no prior start"), "{err}");
    }

    #[test]
    fn validator_rejects_unbalanced_durations() {
        let doc = Json::obj(vec![(
            "traceEvents",
            Json::Arr(vec![Json::obj(vec![
                ("name", "run".into()),
                ("ph", "B".into()),
                ("pid", 1u64.into()),
                ("tid", 0u64.into()),
                ("ts", 0u64.into()),
            ])]),
        )]);
        assert!(validate_chrome_trace(&doc).is_err());
        assert!(validate_chrome_trace(&Json::obj(vec![])).is_err());
    }
}
