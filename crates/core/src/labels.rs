//! Label post-processing: dense compaction and visualisation helpers.

use rg_imaging::Image;

/// Renumbers arbitrary labels into `0..n` by order of first appearance.
///
/// First-appearance (raster) order makes compact labels canonical: two
/// segmentations induce the same partition iff their compacted label
/// buffers are equal — the property every cross-engine test relies on.
pub fn compact_first_appearance(raw: &[u32]) -> (Vec<u32>, usize) {
    let mut map = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(raw.len());
    for &r in raw {
        let next = map.len() as u32;
        let id = *map.entry(r).or_insert(next);
        out.push(id);
    }
    (out, map.len())
}

/// Pixel counts per compact label.
pub fn region_sizes(labels: &[u32], num_regions: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; num_regions];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    sizes
}

/// Renders compact labels as a grey image with well-separated grey levels
/// (multiplicative hashing spreads consecutive labels across the range),
/// for writing segmentations out as PGM.
pub fn labels_to_image(labels: &[u32], width: usize, height: usize) -> Image<u8> {
    assert_eq!(labels.len(), width * height, "label buffer size mismatch");
    Image::from_fn(width, height, |x, y| {
        let l = labels[y * width + x];
        // Fibonacci hashing onto 8 bits, avoiding pure black.
        (((l as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8) | 0x10
    })
}

/// `true` iff two label buffers induce the same partition of the pixels
/// (possibly under different numbering).
pub fn same_partition(a: &[u32], b: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    compact_first_appearance(a).0 == compact_first_appearance(b).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_first_appearance_order() {
        let raw = vec![7, 7, 3, 9, 3, 7];
        let (c, n) = compact_first_appearance(&raw);
        assert_eq!(c, vec![0, 0, 1, 2, 1, 0]);
        assert_eq!(n, 3);
    }

    #[test]
    fn region_sizes_sum_to_total() {
        let labels = vec![0, 1, 1, 2, 2, 2];
        let sizes = region_sizes(&labels, 3);
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn same_partition_ignores_numbering() {
        let a = vec![0, 0, 1, 1];
        let b = vec![5, 5, 2, 2];
        let c = vec![0, 1, 1, 1];
        assert!(same_partition(&a, &b));
        assert!(!same_partition(&a, &c));
        assert!(!same_partition(&a, &[0, 0, 1]));
    }

    #[test]
    fn labels_image_distinct_regions_distinct_grey() {
        let labels = vec![0, 1, 2, 3];
        let img = labels_to_image(&labels, 2, 2);
        let mut greys: Vec<u8> = img.pixels().to_vec();
        greys.sort_unstable();
        greys.dedup();
        assert_eq!(greys.len(), 4);
    }
}
