//! Batch runtime: stream many images through pooled pipeline workspaces.
//!
//! The one-shot entry points pay plan + arena setup per image; the batch
//! runtime amortizes it. Each worker owns one reusable
//! [`Pipeline`](crate::pipeline::Pipeline) (plan + workspace) and one
//! recyclable [`Segmentation`] buffer, so a same-shape image stream runs
//! **allocation-free in steady state** on the host engines.
//!
//! ## Telemetry
//!
//! With an enabled sink the batch emits the span hierarchy
//! `batch > image:<i> > run > ...` — each image's full run tree nests in
//! its [`SpanKind::BatchImage`] span. Telemetry-enabled batches always run
//! on **one** worker regardless of [`BatchOptions::jobs`], keeping the
//! journal's strict span nesting valid (a multi-worker batch would
//! interleave image subtrees). Throughput runs use a disabled sink
//! ([`NullTelemetry`]) and honour `jobs`.
//!
//! ## Ordering
//!
//! Images are dispatched in index order. With `jobs > 1` the per-image
//! callback may observe completions out of order (the image index is
//! passed alongside each result); the results themselves are bit-identical
//! to a sequential run — every engine is deterministic per image.
//!
//! ## Failure isolation
//!
//! A panicking pipeline (or per-image callback) fails **that image only**:
//! the panic is caught, the worker rebuilds its pipeline and recycled
//! buffer, and the batch continues. Failed image indices are reported in
//! [`BatchSummary::failed`]; their regions are not counted and their
//! callback is not invoked (or not counted, if the callback itself
//! panicked). The shared callback mutex recovers from poisoning, so one
//! worker's panic can no longer cascade into every other worker dying on
//! a poisoned lock.

use crate::engine::Segmentation;
use crate::pipeline::Pipeline;
use crate::telemetry::{NullTelemetry, SpanGuard, SpanKind, Telemetry};
use rg_imaging::Image;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Locks `m`, recovering the data if a previous holder panicked — batch
/// state stays usable after an isolated per-image failure.
fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared per-image callback slot of a multi-worker batch.
type SharedSink<'a> = Mutex<&'a mut (dyn FnMut(usize, &Segmentation) + Send)>;

/// A seeded chaos schedule for a batch: which fault-injection plan the
/// pipelines were built with. Carried on [`BatchOptions`] so the batch
/// runtime knows the run must stay deterministic — chaos batches are
/// forced to a single worker exactly like telemetry-enabled ones (the
/// fault schedule and any host-fallback re-runs must replay identically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The fault-plan seed.
    pub seed: u64,
    /// Fault profile name (e.g. `"storm"`; see the CMMD fault module).
    pub profile: String,
}

/// Options for [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker count (each worker owns one pipeline + workspace). Clamped
    /// to at least 1; forced to 1 when telemetry is enabled (see module
    /// docs) or when a chaos schedule is armed.
    pub jobs: usize,
    /// The chaos schedule the pipelines carry, if any (see [`ChaosSpec`]).
    pub chaos: Option<ChaosSpec>,
}

impl BatchOptions {
    /// Default options: one worker, no chaos.
    pub fn new() -> Self {
        Self {
            jobs: 1,
            chaos: None,
        }
    }

    /// Sets the worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Arms a chaos schedule (forces single-worker execution).
    pub fn chaos(mut self, seed: u64, profile: &str) -> Self {
        self.chaos = Some(ChaosSpec {
            seed,
            profile: profile.to_string(),
        });
        self
    }
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate outcome of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of images processed (attempted, including failures).
    pub images: usize,
    /// Sum of per-image region counts over the successful images.
    pub total_regions: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Indices of images whose pipeline or callback panicked, ascending.
    /// Empty for a fully successful batch.
    pub failed: Vec<usize>,
}

impl BatchSummary {
    /// Batch throughput in images per second (0 for an instant batch).
    pub fn images_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.images as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// `true` when every image segmented and delivered without a panic.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Streams `images` through pooled pipelines, invoking `each(index, seg)`
/// once per image with the index-tagged result (borrowed from the worker's
/// recycled buffer — clone it to keep it).
///
/// `make_pipeline` is called once per worker; the pipelines it returns
/// define the engine. See the module docs for telemetry and ordering
/// semantics.
pub fn run_batch<M, F>(
    images: &[Image<u8>],
    opts: &BatchOptions,
    make_pipeline: M,
    tel: &mut dyn Telemetry,
    mut each: F,
) -> BatchSummary
where
    M: Fn() -> Box<dyn Pipeline + Send> + Sync,
    F: FnMut(usize, &Segmentation) + Send,
{
    let t0 = Instant::now();
    let enabled = tel.enabled();
    let jobs = if enabled || opts.chaos.is_some() {
        1
    } else {
        opts.jobs.max(1)
    };
    let mut total_regions = 0u64;
    let mut failed: Vec<usize> = Vec::new();

    if jobs <= 1 {
        let mut pipe = make_pipeline();
        let mut out = Segmentation::default();
        if enabled {
            let mut batch_span = SpanGuard::enter(&mut *tel, SpanKind::Batch);
            let tel = batch_span.tel();
            for (i, img) in images.iter().enumerate() {
                let mut img_span = SpanGuard::enter(&mut *tel, SpanKind::BatchImage(i as u32));
                let ran = catch_unwind(AssertUnwindSafe(|| {
                    pipe.run_into(img, img_span.tel(), &mut out)
                }));
                drop(img_span);
                if ran.is_err() {
                    failed.push(i);
                    pipe = make_pipeline();
                    out = Segmentation::default();
                    continue;
                }
                if catch_unwind(AssertUnwindSafe(|| each(i, &out))).is_err() {
                    failed.push(i);
                    continue;
                }
                total_regions += out.num_regions as u64;
            }
        } else {
            for (i, img) in images.iter().enumerate() {
                let ran = catch_unwind(AssertUnwindSafe(|| {
                    pipe.run_into(img, &mut NullTelemetry, &mut out)
                }));
                if ran.is_err() {
                    failed.push(i);
                    pipe = make_pipeline();
                    out = Segmentation::default();
                    continue;
                }
                if catch_unwind(AssertUnwindSafe(|| each(i, &out))).is_err() {
                    failed.push(i);
                    continue;
                }
                total_regions += out.num_regions as u64;
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let regions = AtomicU64::new(0);
        let failures: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let sink: SharedSink = Mutex::new(&mut each);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(images.len()) {
                scope.spawn(|| {
                    let mut pipe = make_pipeline();
                    let mut out = Segmentation::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= images.len() {
                            break;
                        }
                        let ran = catch_unwind(AssertUnwindSafe(|| {
                            pipe.run_into(&images[i], &mut NullTelemetry, &mut out)
                        }));
                        if ran.is_err() {
                            lock_recover(&failures).push(i);
                            pipe = make_pipeline();
                            out = Segmentation::default();
                            continue;
                        }
                        // The lock lives inside the catch: if the callback
                        // panics, the guard drop poisons the mutex and the
                        // next `lock_recover` heals it.
                        let delivered =
                            catch_unwind(AssertUnwindSafe(|| (lock_recover(&sink))(i, &out)));
                        if delivered.is_err() {
                            lock_recover(&failures).push(i);
                            continue;
                        }
                        regions.fetch_add(out.num_regions as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        total_regions = regions.load(Ordering::Relaxed);
        failed = failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        failed.sort_unstable();
    }

    BatchSummary {
        images: images.len(),
        total_regions,
        wall_seconds: t0.elapsed().as_secs_f64(),
        failed,
    }
}

/// [`run_batch`] collecting every result: returns the segmentations in
/// image order plus the summary.
pub fn run_batch_collect<M>(
    images: &[Image<u8>],
    opts: &BatchOptions,
    make_pipeline: M,
    tel: &mut dyn Telemetry,
) -> (Vec<Segmentation>, BatchSummary)
where
    M: Fn() -> Box<dyn Pipeline + Send> + Sync,
{
    let mut results: Vec<Segmentation> = vec![Segmentation::default(); images.len()];
    let summary = {
        // `slots` borrows `results`; the block ends the borrow before the
        // vector is moved out.
        let slots = Mutex::new(&mut results);
        run_batch(images, opts, make_pipeline, tel, |i, seg| {
            lock_recover(&slots)[i] = seg.clone();
        })
    };
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::segment;
    use crate::pipeline::HostPipeline;
    use crate::telemetry::Recorder;
    use rg_imaging::synth;

    fn demo_images(n: usize) -> Vec<Image<u8>> {
        (0..n)
            .map(|i| synth::random_rects(64, 64, 6, i as u64))
            .collect()
    }

    #[test]
    fn batch_matches_per_image_segment() {
        let images = demo_images(5);
        let cfg = Config::with_threshold(10);
        for jobs in [1, 3] {
            let (results, summary) = run_batch_collect(
                &images,
                &BatchOptions::new().jobs(jobs),
                || Box::new(HostPipeline::<u8>::new(cfg, false)),
                &mut NullTelemetry,
            );
            assert_eq!(summary.images, images.len());
            let mut expect_regions = 0u64;
            for (img, got) in images.iter().zip(&results) {
                let want = segment(img, &cfg);
                assert_eq!(&want, got, "jobs={jobs}");
                expect_regions += want.num_regions as u64;
            }
            assert_eq!(summary.total_regions, expect_regions);
        }
    }

    #[test]
    fn enabled_telemetry_forces_single_worker_and_nests_spans() {
        use crate::journal::{validate_journal, EventLog};
        let images = demo_images(3);
        let cfg = Config::with_threshold(10);
        let mut log = EventLog::in_memory();
        let summary = run_batch(
            &images,
            &BatchOptions::new().jobs(4),
            || Box::new(HostPipeline::<u8>::new(cfg, false)),
            &mut log,
            |_i, _seg| {},
        );
        assert_eq!(summary.images, 3);
        // The journal nests batch > image:<i> > run and validates strictly.
        validate_journal(log.events()).expect("batch journal must validate");
        let labels: Vec<String> = log
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                crate::journal::EventKind::SpanBegin { span } => Some(span.label()),
                _ => None,
            })
            .collect();
        assert_eq!(labels[0], "batch");
        assert_eq!(labels[1], "image:0");
        assert_eq!(labels[2], "run");
        assert!(labels.contains(&"image:2".to_string()));
    }

    #[test]
    fn recorder_sees_every_image_run(/* last-run semantics documented */) {
        let images = demo_images(2);
        let cfg = Config::with_threshold(10);
        let mut rec = Recorder::new();
        run_batch(
            &images,
            &BatchOptions::new(),
            || Box::new(HostPipeline::<u8>::new(cfg, false)),
            &mut rec,
            |_, _| {},
        );
        // A Recorder resets per run_start: after the batch it holds the
        // final image's report.
        let want = segment(&images[1], &cfg);
        assert_eq!(rec.report().num_regions, want.num_regions);
        assert!(rec.is_finished());
    }

    /// A pipeline that panics on images whose seed pixel matches `bad`,
    /// standing in for a real per-image engine fault.
    struct PanicOn {
        inner: HostPipeline<u8>,
        bad: u8,
    }

    impl Pipeline for PanicOn {
        fn engine(&self) -> &str {
            "panic-on"
        }
        fn plan(&self) -> Option<&crate::pipeline::ExecutionPlan> {
            self.inner.plan()
        }
        fn run_into(&mut self, img: &Image<u8>, tel: &mut dyn Telemetry, out: &mut Segmentation) {
            assert_ne!(img.pixels()[0], self.bad, "deliberate per-image fault");
            self.inner.run_into(img, tel, out);
        }
    }

    #[test]
    fn panicking_image_fails_alone_and_batch_continues() {
        // Image 2 carries the poison marker in its first pixel; every
        // other image must still segment, on one worker and on several
        // (the multi-worker case is the historical cascade: a poisoned
        // sink mutex killed every remaining worker).
        let mut images = demo_images(6);
        let marker = 251u8;
        for (i, img) in images.iter_mut().enumerate() {
            let first = &mut img.pixels_mut()[0];
            *first = if i == 2 {
                marker
            } else {
                marker.wrapping_add(1)
            };
        }
        let cfg = Config::with_threshold(10);
        for jobs in [1, 4] {
            let (results, summary) = run_batch_collect(
                &images,
                &BatchOptions::new().jobs(jobs),
                || {
                    Box::new(PanicOn {
                        inner: HostPipeline::<u8>::new(cfg, false),
                        bad: marker,
                    })
                },
                &mut NullTelemetry,
            );
            assert_eq!(summary.failed, vec![2], "jobs={jobs}");
            assert!(!summary.all_ok());
            assert_eq!(summary.images, 6);
            let mut expect_regions = 0u64;
            for (i, (img, got)) in images.iter().zip(&results).enumerate() {
                if i == 2 {
                    // The failed slot keeps its default (never delivered).
                    assert!(got.is_empty(), "jobs={jobs}");
                    continue;
                }
                let want = segment(img, &cfg);
                assert_eq!(&want, got, "jobs={jobs} image={i}");
                expect_regions += want.num_regions as u64;
            }
            assert_eq!(summary.total_regions, expect_regions, "jobs={jobs}");
        }
    }

    #[test]
    fn panicking_callback_fails_only_that_image() {
        let images = demo_images(4);
        let cfg = Config::with_threshold(10);
        for jobs in [1, 3] {
            let delivered = Mutex::new(Vec::new());
            let summary = run_batch(
                &images,
                &BatchOptions::new().jobs(jobs),
                || Box::new(HostPipeline::<u8>::new(cfg, false)),
                &mut NullTelemetry,
                |i, _seg| {
                    assert_ne!(i, 1, "deliberate callback fault");
                    lock_recover(&delivered).push(i);
                },
            );
            assert_eq!(summary.failed, vec![1], "jobs={jobs}");
            let mut got = delivered.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, vec![0, 2, 3], "jobs={jobs}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cfg = Config::with_threshold(10);
        let summary = run_batch(
            &[],
            &BatchOptions::new().jobs(8),
            || Box::new(HostPipeline::<u8>::new(cfg, false)),
            &mut NullTelemetry,
            |_, _| panic!("no images, no callbacks"),
        );
        assert_eq!(summary.images, 0);
        assert_eq!(summary.total_regions, 0);
    }
}
