//! Batch runtime: stream many images through pooled pipeline workspaces.
//!
//! The one-shot entry points pay plan + arena setup per image; the batch
//! runtime amortizes it. Each worker owns one reusable
//! [`Pipeline`](crate::pipeline::Pipeline) (plan + workspace) and one
//! recyclable [`Segmentation`] buffer, so a same-shape image stream runs
//! **allocation-free in steady state** on the host engines.
//!
//! ## Telemetry
//!
//! With an enabled sink the batch emits the span hierarchy
//! `batch > image:<i> > run > ...` — each image's full run tree nests in
//! its [`SpanKind::BatchImage`] span. Telemetry-enabled batches always run
//! on **one** worker regardless of [`BatchOptions::jobs`], keeping the
//! journal's strict span nesting valid (a multi-worker batch would
//! interleave image subtrees). Throughput runs use a disabled sink
//! ([`NullTelemetry`]) and honour `jobs`.
//!
//! ## Ordering
//!
//! Images are dispatched in index order. With `jobs > 1` the per-image
//! callback may observe completions out of order (the image index is
//! passed alongside each result); the results themselves are bit-identical
//! to a sequential run — every engine is deterministic per image.

use crate::engine::Segmentation;
use crate::pipeline::Pipeline;
use crate::telemetry::{NullTelemetry, SpanGuard, SpanKind, Telemetry};
use rg_imaging::Image;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The shared per-image callback slot of a multi-worker batch.
type SharedSink<'a> = Mutex<&'a mut (dyn FnMut(usize, &Segmentation) + Send)>;

/// A seeded chaos schedule for a batch: which fault-injection plan the
/// pipelines were built with. Carried on [`BatchOptions`] so the batch
/// runtime knows the run must stay deterministic — chaos batches are
/// forced to a single worker exactly like telemetry-enabled ones (the
/// fault schedule and any host-fallback re-runs must replay identically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The fault-plan seed.
    pub seed: u64,
    /// Fault profile name (e.g. `"storm"`; see the CMMD fault module).
    pub profile: String,
}

/// Options for [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker count (each worker owns one pipeline + workspace). Clamped
    /// to at least 1; forced to 1 when telemetry is enabled (see module
    /// docs) or when a chaos schedule is armed.
    pub jobs: usize,
    /// The chaos schedule the pipelines carry, if any (see [`ChaosSpec`]).
    pub chaos: Option<ChaosSpec>,
}

impl BatchOptions {
    /// Default options: one worker, no chaos.
    pub fn new() -> Self {
        Self {
            jobs: 1,
            chaos: None,
        }
    }

    /// Sets the worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Arms a chaos schedule (forces single-worker execution).
    pub fn chaos(mut self, seed: u64, profile: &str) -> Self {
        self.chaos = Some(ChaosSpec {
            seed,
            profile: profile.to_string(),
        });
        self
    }
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate outcome of a batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSummary {
    /// Number of images processed.
    pub images: usize,
    /// Sum of per-image region counts.
    pub total_regions: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

impl BatchSummary {
    /// Batch throughput in images per second (0 for an instant batch).
    pub fn images_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.images as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Streams `images` through pooled pipelines, invoking `each(index, seg)`
/// once per image with the index-tagged result (borrowed from the worker's
/// recycled buffer — clone it to keep it).
///
/// `make_pipeline` is called once per worker; the pipelines it returns
/// define the engine. See the module docs for telemetry and ordering
/// semantics.
pub fn run_batch<M, F>(
    images: &[Image<u8>],
    opts: &BatchOptions,
    make_pipeline: M,
    tel: &mut dyn Telemetry,
    mut each: F,
) -> BatchSummary
where
    M: Fn() -> Box<dyn Pipeline + Send> + Sync,
    F: FnMut(usize, &Segmentation) + Send,
{
    let t0 = Instant::now();
    let enabled = tel.enabled();
    let jobs = if enabled || opts.chaos.is_some() {
        1
    } else {
        opts.jobs.max(1)
    };
    let mut total_regions = 0u64;

    if jobs <= 1 {
        let mut pipe = make_pipeline();
        let mut out = Segmentation::default();
        if enabled {
            let mut batch_span = SpanGuard::enter(&mut *tel, SpanKind::Batch);
            let tel = batch_span.tel();
            for (i, img) in images.iter().enumerate() {
                let mut img_span = SpanGuard::enter(&mut *tel, SpanKind::BatchImage(i as u32));
                pipe.run_into(img, img_span.tel(), &mut out);
                drop(img_span);
                total_regions += out.num_regions as u64;
                each(i, &out);
            }
        } else {
            for (i, img) in images.iter().enumerate() {
                pipe.run_into(img, &mut NullTelemetry, &mut out);
                total_regions += out.num_regions as u64;
                each(i, &out);
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let regions = AtomicU64::new(0);
        let sink: SharedSink = Mutex::new(&mut each);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(images.len()) {
                scope.spawn(|| {
                    let mut pipe = make_pipeline();
                    let mut out = Segmentation::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= images.len() {
                            break;
                        }
                        pipe.run_into(&images[i], &mut NullTelemetry, &mut out);
                        regions.fetch_add(out.num_regions as u64, Ordering::Relaxed);
                        (sink.lock().expect("batch callback poisoned"))(i, &out);
                    }
                });
            }
        });
        total_regions = regions.load(Ordering::Relaxed);
    }

    BatchSummary {
        images: images.len(),
        total_regions,
        wall_seconds: t0.elapsed().as_secs_f64(),
    }
}

/// [`run_batch`] collecting every result: returns the segmentations in
/// image order plus the summary.
pub fn run_batch_collect<M>(
    images: &[Image<u8>],
    opts: &BatchOptions,
    make_pipeline: M,
    tel: &mut dyn Telemetry,
) -> (Vec<Segmentation>, BatchSummary)
where
    M: Fn() -> Box<dyn Pipeline + Send> + Sync,
{
    let mut results: Vec<Segmentation> = vec![Segmentation::default(); images.len()];
    let summary = {
        // `slots` borrows `results`; the block ends the borrow before the
        // vector is moved out.
        let slots = Mutex::new(&mut results);
        run_batch(images, opts, make_pipeline, tel, |i, seg| {
            slots.lock().expect("batch results poisoned")[i] = seg.clone();
        })
    };
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::segment;
    use crate::pipeline::HostPipeline;
    use crate::telemetry::Recorder;
    use rg_imaging::synth;

    fn demo_images(n: usize) -> Vec<Image<u8>> {
        (0..n)
            .map(|i| synth::random_rects(64, 64, 6, i as u64))
            .collect()
    }

    #[test]
    fn batch_matches_per_image_segment() {
        let images = demo_images(5);
        let cfg = Config::with_threshold(10);
        for jobs in [1, 3] {
            let (results, summary) = run_batch_collect(
                &images,
                &BatchOptions::new().jobs(jobs),
                || Box::new(HostPipeline::<u8>::new(cfg, false)),
                &mut NullTelemetry,
            );
            assert_eq!(summary.images, images.len());
            let mut expect_regions = 0u64;
            for (img, got) in images.iter().zip(&results) {
                let want = segment(img, &cfg);
                assert_eq!(&want, got, "jobs={jobs}");
                expect_regions += want.num_regions as u64;
            }
            assert_eq!(summary.total_regions, expect_regions);
        }
    }

    #[test]
    fn enabled_telemetry_forces_single_worker_and_nests_spans() {
        use crate::journal::{validate_journal, EventLog};
        let images = demo_images(3);
        let cfg = Config::with_threshold(10);
        let mut log = EventLog::in_memory();
        let summary = run_batch(
            &images,
            &BatchOptions::new().jobs(4),
            || Box::new(HostPipeline::<u8>::new(cfg, false)),
            &mut log,
            |_i, _seg| {},
        );
        assert_eq!(summary.images, 3);
        // The journal nests batch > image:<i> > run and validates strictly.
        validate_journal(log.events()).expect("batch journal must validate");
        let labels: Vec<String> = log
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                crate::journal::EventKind::SpanBegin { span } => Some(span.label()),
                _ => None,
            })
            .collect();
        assert_eq!(labels[0], "batch");
        assert_eq!(labels[1], "image:0");
        assert_eq!(labels[2], "run");
        assert!(labels.contains(&"image:2".to_string()));
    }

    #[test]
    fn recorder_sees_every_image_run(/* last-run semantics documented */) {
        let images = demo_images(2);
        let cfg = Config::with_threshold(10);
        let mut rec = Recorder::new();
        run_batch(
            &images,
            &BatchOptions::new(),
            || Box::new(HostPipeline::<u8>::new(cfg, false)),
            &mut rec,
            |_, _| {},
        );
        // A Recorder resets per run_start: after the batch it holds the
        // final image's report.
        let want = segment(&images[1], &cfg);
        assert_eq!(rec.report().num_regions, want.num_regions);
        assert!(rec.is_finished());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cfg = Config::with_threshold(10);
        let summary = run_batch(
            &[],
            &BatchOptions::new().jobs(8),
            || Box::new(HostPipeline::<u8>::new(cfg, false)),
            &mut NullTelemetry,
            |_, _| panic!("no images, no callbacks"),
        );
        assert_eq!(summary.images, 0);
        assert_eq!(summary.total_regions, 0);
    }
}
