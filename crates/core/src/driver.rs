//! The unified stage driver: one generic orchestration loop for every
//! engine.
//!
//! The paper's four implementations (CM-2 DP, CM-5 DP, CM-5 MP with the LP
//! and Async schemes) run the *same* split → RAG → merge → label program on
//! different execution substrates. This module writes that program **once**:
//! [`run_driver`] owns the canonical telemetry skeleton —
//!
//! ```text
//! run_start
//! run
//! ├── stage:split            ← SplitStage::split
//! │     stage record, split counters (SplitStage::split_report)
//! ├── stage:graph            ← GraphStage::graph
//! │     stage record, split_done
//! ├── stage:merge            ← MergeStage::merge
//! │   ├── iter:<n> …         ← MergeCx::iteration (one per merge round)
//! │     merge histograms (MergeStage::merge_report)
//! │     stage record, merge_done
//! └── stage:label            ← LabelStage::label
//!       stage record, region_size_px, run epilogue (run_report)
//! run_end
//! ```
//!
//! — plus [`StageSpan`] wall/sim timing and the final [`Segmentation`]
//! assembly, while a backend supplies only the per-stage work through the
//! [`SplitStage`] / [`GraphStage`] / [`MergeStage`] / [`LabelStage`] trait
//! family (composed by [`EngineBackend`]).
//!
//! Three execution shapes plug into the same skeleton:
//!
//! | backend                 | stages run      | wall time            | sim time |
//! |-------------------------|-----------------|----------------------|----------|
//! | `HostBackend` (seq/rayon) | live, in-span | driver stopwatch     | none     |
//! | `DataParBackend`        | live, in-span   | driver stopwatch     | cost-model ledgers |
//! | `MsgPassBackend`        | replayed ([`EngineBackend::prepare`] runs the SPMD program first) | proportional to sim | CMMD clocks |
//!
//! Replay backends report their own wall attribution through
//! [`StageStats::wall_seconds`]; live backends leave it `None` and the
//! driver's stopwatch fills it in. Two optional hooks cover the remaining
//! engine-specific behaviours: [`TraceHook`] exposes the merge dendrogram
//! ([`crate::hierarchy::MergeTrace`]) a backend recorded, and [`ChaosHook`]
//! lets a backend recover from an aborted substrate (the message-passing
//! engine's degrade-to-host path) before the replay begins.
//!
//! The driver is the **only** place that opens `run` / `stage:*` /
//! `iter:<n>` spans (the batch layer's `batch` / `image:<i>` spans wrap
//! whole driver runs and stay in [`crate::batch`]), so span nesting is
//! balanced and identical across engines by construction rather than by
//! after-the-fact conformance testing.

use crate::config::Config;
use crate::engine::{Segmentation, Stopwatch};
use crate::hierarchy::MergeTrace;
use crate::telemetry::{
    Histogram, MergeIterationRecord, SpanGuard, SpanKind, Stage, StageSpan, Telemetry,
};
use std::fmt;
use std::time::Instant;

/// Per-stage outcome a backend reports to the driver: how the stage's
/// [`StageSpan`] should be timed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageStats {
    /// Host wall seconds to attribute to the stage, or `None` to let the
    /// driver's stopwatch measure the stage live (the host and
    /// data-parallel engines). Replay backends, whose stage bodies only
    /// re-emit history recorded during [`EngineBackend::prepare`], compute
    /// their own attribution (the message-passing engine splits the whole
    /// run's wall time proportionally to simulated stage times).
    pub wall_seconds: Option<f64>,
    /// Simulated seconds on the modelled machine (`None` on the host
    /// engines and for host-side stages of simulated engines).
    pub sim_seconds: Option<f64>,
}

impl StageStats {
    /// A live host stage: the driver measures wall time, no simulation.
    pub fn live() -> Self {
        Self::default()
    }

    /// A live simulated stage: the driver measures wall time, the cost
    /// model supplies `sim` seconds.
    pub fn simulated(sim: f64) -> Self {
        Self {
            wall_seconds: None,
            sim_seconds: Some(sim),
        }
    }

    /// A replayed stage: the backend attributes both times itself.
    pub fn replayed(wall: f64, sim: Option<f64>) -> Self {
        Self {
            wall_seconds: Some(wall),
            sim_seconds: sim,
        }
    }
}

/// Split-stage summary the driver emits as [`Telemetry::split_done`] once
/// the graph stage has fixed the vertex count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitInfo {
    /// Productive split iterations.
    pub iterations: u32,
    /// Number of maximal squares (= RAG vertices).
    pub num_squares: usize,
}

/// Scalar summary of a finished run, borrowed from the backend; the driver
/// copies it into the output [`Segmentation`] (into recycled buffers — the
/// borrow keeps the assembly allocation-free for workspace backends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary<'a> {
    /// Productive split iterations.
    pub split_iterations: u32,
    /// Number of maximal squares after the split stage.
    pub num_squares: usize,
    /// Merge iterations executed.
    pub merge_iterations: u32,
    /// Merges performed per merge iteration.
    pub merges_per_iteration: &'a [u32],
    /// Regions at merge convergence.
    pub num_regions: usize,
}

/// An aborted backend execution (today: a simulated cluster lost to
/// injected faults). The driver hands it to the backend's [`ChaosHook`],
/// or panics with the message when the backend has none.
#[derive(Debug, Clone)]
pub struct BackendAbort {
    message: String,
}

impl BackendAbort {
    /// Wraps an abort description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for BackendAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The split stage: image → maximal homogeneous squares.
pub trait SplitStage {
    /// Runs (or replays) the split stage. Called inside the
    /// `stage:split` span.
    fn split(&mut self, tel: &mut dyn Telemetry) -> StageStats;

    /// Emits engine-internal split counters, right after the split stage
    /// record. Only called on enabled sinks.
    fn split_report(&mut self, _tel: &mut dyn Telemetry) {}
}

/// The graph stage: squares → region adjacency graph.
pub trait GraphStage {
    /// Runs (or replays) RAG construction. Called inside the
    /// `stage:graph` span.
    fn graph(&mut self, tel: &mut dyn Telemetry) -> StageStats;
}

/// The merge stage: iterative mutual-pick region merging.
pub trait MergeStage {
    /// Runs (or replays) the merge loop. Called inside the `stage:merge`
    /// span; per-iteration `iter:<n>` spans and records go through
    /// [`MergeCx::iteration`].
    fn merge(&mut self, cx: &mut MergeCx<'_>) -> StageStats;

    /// Emits extra merge-stage histograms/counters inside the
    /// `stage:merge` span, after the driver's `merge.merges_per_iteration`
    /// histogram. Only called on enabled sinks.
    fn merge_report(&mut self, _tel: &mut dyn Telemetry) {}

    /// `true` when the backend's iterations run live and their wall time
    /// is worth a `merge.iter_wall_us` histogram. Replay backends keep the
    /// default `false`: their zero-duration iterations would only add
    /// nondeterministic noise (and break chaos-run journal byte-identity).
    fn measures_iteration_wall(&self) -> bool {
        false
    }
}

/// The label stage: merge representatives → dense per-pixel labels.
pub trait LabelStage {
    /// Fills `out.labels` with first-appearance-compacted labels and
    /// returns the stage stats plus the compacted region count. Called
    /// inside the `stage:label` span.
    fn label(&mut self, tel: &mut dyn Telemetry, out: &mut Segmentation) -> (StageStats, usize);
}

/// A complete engine backend: the four stage traits plus run metadata.
///
/// The driver calls, in order: [`EngineBackend::prepare`] (before any
/// telemetry), [`EngineBackend::engine`] + `run_start`, the four stage
/// methods inside their spans, [`EngineBackend::summary`] for
/// `split_done`/`merge_done` scalars and the final [`Segmentation`]
/// assembly, and [`EngineBackend::run_report`] for the run epilogue.
pub trait EngineBackend: SplitStage + GraphStage + MergeStage + LabelStage {
    /// Engine label for `run_start`, e.g. `"seq"`, `"datapar:CM-2 (8K
    /// procs)"`, `"msgpass:LP:8"`. Only called on enabled sinks, after
    /// [`EngineBackend::prepare`].
    fn engine(&self) -> String;

    /// Image dimensions `(width, height)`.
    fn dims(&self) -> (usize, usize);

    /// The run configuration.
    fn config(&self) -> &Config;

    /// Up-front execution for replay backends (the message-passing engine
    /// runs its whole SPMD program here, with tracing on iff
    /// `telemetry_enabled`). Live backends keep the default no-op. An
    /// `Err` routes to [`EngineBackend::chaos_hook`], or panics when the
    /// backend has none.
    fn prepare(&mut self, _telemetry_enabled: bool) -> Result<(), BackendAbort> {
        Ok(())
    }

    /// The backend's abort-recovery hook, if it is armed for one (the
    /// message-passing engine under a fault plan). Consulted only after
    /// [`EngineBackend::prepare`] fails.
    fn chaos_hook(&mut self) -> Option<&mut dyn ChaosHook> {
        None
    }

    /// Split-stage summary for the driver's `split_done` record; called
    /// after the graph stage (the simulated engines fix their vertex count
    /// there).
    fn split_info(&self) -> SplitInfo;

    /// Scalar run summary; called after the merge stage.
    fn summary(&self) -> RunSummary<'_>;

    /// Emits the run epilogue (communication records, per-primitive
    /// counters, fault events, causal flows) inside the `run` span, after
    /// the `region_size_px` histogram. Only called on enabled sinks.
    fn run_report(&mut self, _tel: &mut dyn Telemetry) {}
}

/// Recovery hook for backends whose substrate can abort mid-run: rebuild a
/// consistent result (e.g. by degrading to a host re-run) so the stage
/// replay can proceed.
pub trait ChaosHook {
    /// Recovers from the abort [`EngineBackend::prepare`] returned.
    fn degrade(&mut self, abort: BackendAbort);
}

/// Optional access to the merge dendrogram a backend recorded during its
/// run (see [`crate::hierarchy`]).
pub trait TraceHook {
    /// Takes the recorded [`MergeTrace`], if tracing was requested and the
    /// backend supports it.
    fn take_trace(&mut self) -> Option<MergeTrace>;
}

/// Merge-stage context handed to [`MergeStage::merge`]: wraps the sink
/// with the canonical per-iteration protocol (`iter:<n>` span + iteration
/// record) and accumulates the driver-owned merge histograms.
pub struct MergeCx<'a> {
    tel: &'a mut dyn Telemetry,
    enabled: bool,
    iter_wall: Option<Histogram>,
    merges: Histogram,
}

impl<'a> MergeCx<'a> {
    fn new(tel: &'a mut dyn Telemetry, enabled: bool, iter_wall: bool) -> Self {
        Self {
            tel,
            enabled,
            iter_wall: (enabled && iter_wall).then(Histogram::new),
            merges: Histogram::new(),
        }
    }

    /// `true` when the sink is live. Backends may skip per-iteration
    /// bookkeeping entirely on disabled sinks (the zero-cost telemetry
    /// contract) as long as the merge work itself still runs.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying sink, for merge-stage events outside any iteration.
    pub fn tel(&mut self) -> &mut dyn Telemetry {
        self.tel
    }

    /// Runs one merge iteration inside its `iter:<n>` span: `body` does
    /// the work (or replay) — emitting any intra-iteration events through
    /// the sink it is handed — and returns the iteration record, which the
    /// driver emits inside the span and folds into the
    /// `merge.merges_per_iteration` histogram.
    pub fn iteration(
        &mut self,
        iteration: u32,
        body: impl FnOnce(&mut dyn Telemetry) -> MergeIterationRecord,
    ) {
        let t0 = self.iter_wall.as_ref().map(|_| Instant::now());
        {
            let mut span = SpanGuard::enter(&mut *self.tel, SpanKind::MergeIteration(iteration));
            let rec = body(span.tel());
            self.merges.record(u64::from(rec.merges));
            if self.enabled {
                span.tel().merge_iteration(rec);
            }
        }
        if let (Some(h), Some(t0)) = (self.iter_wall.as_mut(), t0) {
            h.record(t0.elapsed().as_micros() as u64);
        }
    }
}

/// Runs a backend through the canonical stage program, filling the
/// recyclable `out` buffer (cleared/refilled in place).
///
/// This is the single orchestration loop behind every engine entry point —
/// [`crate::segment`]/[`crate::segment_par`], `rg_datapar::segment_datapar*`,
/// `rg_msgpass::segment_msgpass*`, and all [`crate::pipeline::Pipeline`]
/// implementations — and the seam a new backend plugs into. With a disabled
/// sink it emits nothing and allocates nothing of its own; with an enabled
/// sink it produces the span/record sequence documented at module level,
/// identical across backends.
pub fn run_driver<B: EngineBackend + ?Sized>(
    backend: &mut B,
    tel: &mut dyn Telemetry,
    out: &mut Segmentation,
) {
    let enabled = tel.enabled();
    if let Err(abort) = backend.prepare(enabled) {
        match backend.chaos_hook() {
            Some(hook) => hook.degrade(abort),
            None => panic!("{abort}"),
        }
    }
    let (w, h) = backend.dims();
    if enabled {
        tel.run_start(&backend.engine(), w, h, backend.config());
    }
    let mut watch = Stopwatch::start(enabled);

    let num_regions = {
        // Everything between run_start and run_end lives inside the `run`
        // span; the guard closes it even on unwind.
        let mut run_span = SpanGuard::enter(&mut *tel, SpanKind::Run);
        let tel = run_span.tel();

        let stats = {
            let mut span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Split));
            backend.split(span.tel())
        };
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Split,
                wall_seconds: stats.wall_seconds.unwrap_or_else(|| watch.lap()),
                sim_seconds: stats.sim_seconds,
            });
            backend.split_report(tel);
        }

        let stats = {
            let mut span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Graph));
            backend.graph(span.tel())
        };
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Graph,
                wall_seconds: stats.wall_seconds.unwrap_or_else(|| watch.lap()),
                sim_seconds: stats.sim_seconds,
            });
            let info = backend.split_info();
            tel.split_done(info.iterations, info.num_squares);
        }

        let stats = {
            let mut span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Merge));
            let iter_wall = backend.measures_iteration_wall();
            let mut cx = MergeCx::new(span.tel(), enabled, iter_wall);
            let stats = backend.merge(&mut cx);
            if enabled {
                let MergeCx {
                    tel,
                    iter_wall,
                    merges,
                    ..
                } = cx;
                if let Some(h) = iter_wall {
                    tel.histogram("merge.iter_wall_us", &h);
                }
                tel.histogram("merge.merges_per_iteration", &merges);
                backend.merge_report(tel);
            }
            stats
        };
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Merge,
                wall_seconds: stats.wall_seconds.unwrap_or_else(|| watch.lap()),
                sim_seconds: stats.sim_seconds,
            });
            tel.merge_done(backend.summary().num_regions);
        }

        let (stats, num_regions) = {
            let mut span = SpanGuard::enter(&mut *tel, SpanKind::Stage(Stage::Label));
            backend.label(span.tel(), out)
        };
        if enabled {
            tel.stage(StageSpan {
                stage: Stage::Label,
                wall_seconds: stats.wall_seconds.unwrap_or_else(|| watch.lap()),
                sim_seconds: stats.sim_seconds,
            });
            // Region-size distribution at convergence (pixels per region).
            let mut sizes = vec![0u64; num_regions];
            for &l in &out.labels {
                sizes[l as usize] += 1;
            }
            let mut hist = Histogram::new();
            for &s in &sizes {
                hist.record(s);
            }
            tel.histogram("region_size_px", &hist);
            backend.run_report(tel);
        }
        num_regions
    };
    if enabled {
        tel.run_end();
    }

    let summary = backend.summary();
    debug_assert_eq!(
        num_regions, summary.num_regions,
        "label compaction must preserve the merge-stage region count"
    );
    out.num_regions = num_regions;
    out.num_squares = summary.num_squares;
    out.split_iterations = summary.split_iterations;
    out.merge_iterations = summary.merge_iterations;
    out.merges_per_iteration.clear();
    out.merges_per_iteration
        .extend_from_slice(summary.merges_per_iteration);
    out.width = w;
    out.height = h;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Recorder;

    /// A minimal synthetic backend: 2x1 image, one square per pixel, one
    /// merge iteration joining them. Exercises the driver skeleton without
    /// any real engine.
    struct ToyBackend {
        config: Config,
        merges: Vec<u32>,
        prepared: bool,
        aborted: bool,
        degraded: bool,
    }

    impl ToyBackend {
        fn new(aborted: bool) -> Self {
            Self {
                config: Config::with_threshold(10),
                merges: vec![1],
                prepared: false,
                aborted,
                degraded: false,
            }
        }
    }

    impl SplitStage for ToyBackend {
        fn split(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
            StageStats::simulated(0.25)
        }
        fn split_report(&mut self, tel: &mut dyn Telemetry) {
            tel.counter("toy.split_counter", 1.0);
        }
    }
    impl GraphStage for ToyBackend {
        fn graph(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
            StageStats::live()
        }
    }
    impl MergeStage for ToyBackend {
        fn merge(&mut self, cx: &mut MergeCx<'_>) -> StageStats {
            for (i, &m) in self.merges.clone().iter().enumerate() {
                cx.iteration(i as u32, |_tel| MergeIterationRecord {
                    iteration: i as u32,
                    merges: m,
                    used_fallback: false,
                    active_edges: None,
                    compacted: None,
                });
            }
            StageStats::simulated(0.75)
        }
    }
    impl LabelStage for ToyBackend {
        fn label(
            &mut self,
            _tel: &mut dyn Telemetry,
            out: &mut Segmentation,
        ) -> (StageStats, usize) {
            out.labels.clear();
            out.labels.extend_from_slice(&[0, 0]);
            (StageStats::live(), 1)
        }
    }
    impl EngineBackend for ToyBackend {
        fn engine(&self) -> String {
            "toy".to_string()
        }
        fn dims(&self) -> (usize, usize) {
            (2, 1)
        }
        fn config(&self) -> &Config {
            &self.config
        }
        fn prepare(&mut self, _enabled: bool) -> Result<(), BackendAbort> {
            self.prepared = true;
            if self.aborted {
                Err(BackendAbort::new("toy cluster lost"))
            } else {
                Ok(())
            }
        }
        fn chaos_hook(&mut self) -> Option<&mut dyn ChaosHook> {
            if self.aborted {
                Some(self)
            } else {
                None
            }
        }
        fn split_info(&self) -> SplitInfo {
            SplitInfo {
                iterations: 1,
                num_squares: 2,
            }
        }
        fn summary(&self) -> RunSummary<'_> {
            RunSummary {
                split_iterations: 1,
                num_squares: 2,
                merge_iterations: self.merges.len() as u32,
                merges_per_iteration: &self.merges,
                num_regions: 1,
            }
        }
        fn run_report(&mut self, tel: &mut dyn Telemetry) {
            tel.counter("toy.epilogue", 1.0);
        }
    }
    impl ChaosHook for ToyBackend {
        fn degrade(&mut self, _abort: BackendAbort) {
            self.degraded = true;
        }
    }

    #[test]
    fn driver_assembles_segmentation_and_canonical_report() {
        let mut b = ToyBackend::new(false);
        let mut rec = Recorder::new();
        let mut out = Segmentation::default();
        run_driver(&mut b, &mut rec, &mut out);
        assert!(b.prepared && !b.degraded);
        assert_eq!(out.labels, vec![0, 0]);
        assert_eq!(out.num_regions, 1);
        assert_eq!(out.num_squares, 2);
        assert_eq!(out.merges_per_iteration, vec![1]);
        assert_eq!((out.width, out.height), (2, 1));

        let r = rec.report();
        assert!(rec.is_finished());
        assert_eq!(r.engine, "toy");
        // Canonical stage order and per-stage sim attribution.
        let stages: Vec<Stage> = r.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![Stage::Split, Stage::Graph, Stage::Merge, Stage::Label]
        );
        assert_eq!(r.stage_seconds(Stage::Split), Some(0.25));
        assert_eq!(r.stage_seconds(Stage::Merge), Some(0.75));
        assert_eq!(r.num_squares, 2);
        assert_eq!(r.num_regions, 1);
        assert_eq!(r.merges_per_iteration(), vec![1]);
        // Backend hooks landed in the canonical slots.
        assert_eq!(r.counter("toy.split_counter"), Some(1.0));
        assert_eq!(r.counter("toy.epilogue"), Some(1.0));
        // Driver-owned histograms.
        assert!(r.histogram("merge.merges_per_iteration").is_some());
        assert!(r.histogram("region_size_px").is_some());
        // `measures_iteration_wall` defaults off.
        assert!(r.histogram("merge.iter_wall_us").is_none());
    }

    #[test]
    fn aborted_prepare_routes_to_chaos_hook() {
        let mut b = ToyBackend::new(true);
        let mut out = Segmentation::default();
        run_driver(&mut b, &mut crate::telemetry::NullTelemetry, &mut out);
        assert!(b.degraded, "abort must degrade through the hook");
        assert_eq!(out.num_regions, 1);
    }

    #[test]
    #[should_panic(expected = "toy cluster lost")]
    fn aborted_prepare_without_hook_panics() {
        struct NoHook(ToyBackend);
        impl SplitStage for NoHook {
            fn split(&mut self, tel: &mut dyn Telemetry) -> StageStats {
                self.0.split(tel)
            }
        }
        impl GraphStage for NoHook {
            fn graph(&mut self, tel: &mut dyn Telemetry) -> StageStats {
                self.0.graph(tel)
            }
        }
        impl MergeStage for NoHook {
            fn merge(&mut self, cx: &mut MergeCx<'_>) -> StageStats {
                self.0.merge(cx)
            }
        }
        impl LabelStage for NoHook {
            fn label(
                &mut self,
                tel: &mut dyn Telemetry,
                out: &mut Segmentation,
            ) -> (StageStats, usize) {
                self.0.label(tel, out)
            }
        }
        impl EngineBackend for NoHook {
            fn engine(&self) -> String {
                self.0.engine()
            }
            fn dims(&self) -> (usize, usize) {
                self.0.dims()
            }
            fn config(&self) -> &Config {
                self.0.config()
            }
            fn prepare(&mut self, enabled: bool) -> Result<(), BackendAbort> {
                self.0.prepare(enabled)
            }
            fn split_info(&self) -> SplitInfo {
                self.0.split_info()
            }
            fn summary(&self) -> RunSummary<'_> {
                self.0.summary()
            }
        }
        let mut b = NoHook(ToyBackend::new(true));
        let mut out = Segmentation::default();
        run_driver(&mut b, &mut crate::telemetry::NullTelemetry, &mut out);
    }
}
