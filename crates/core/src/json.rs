//! A minimal self-contained JSON value, writer, and parser.
//!
//! The telemetry [`crate::telemetry::TelemetryReport`] serializes through
//! this module; keeping it in-tree avoids an external serialization
//! dependency (this workspace builds fully offline). Only the JSON subset
//! the reports need is supported: objects, arrays, strings, finite
//! numbers, booleans, and `null`. Numbers round-trip exactly for integers
//! up to 2⁵³ and shortest-form floats.

use std::fmt::Write as _;

/// A parsed or buildable JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (insertion order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (must be integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 is Rust's shortest round-trip form.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}
impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our writers;
                            // map unpaired surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", "split".into()),
            ("seconds", 0.125f64.into()),
            ("iters", 4u32.into()),
            ("flags", vec![true, false].into()),
            ("nothing", Json::Null),
            ("nested", Json::obj(vec![("k", Json::Arr(vec![]))])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(42u64).to_compact(), "42");
        assert_eq!(Json::from(0u64).to_compact(), "0");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3");
        assert_eq!(Json::Num(1.5).to_compact(), "1.5");
    }

    #[test]
    fn string_escapes() {
        let v = Json::from("a\"b\\c\nd\te\u{1}");
        let text = v.to_compact();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x", "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        let e = Json::parse("{\"a\" 1}").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5E-2").unwrap().as_f64(), Some(-0.025));
    }
}
