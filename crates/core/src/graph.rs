//! The region adjacency graph (RAG).
//!
//! *"The merge is achieved by reformulating the region growing problem as a
//! weighted, un-directed graph problem, where the vertices of the graph
//! represent the regions in the image, and the edges represent the
//! neighboring relationships among these regions."*
//!
//! Edge weights are not stored: they derive from the current vertex
//! statistics (`max(max_u, max_v) − min(min_u, min_v)` for the pixel-range
//! criterion) and change as regions merge, so the merge engine recomputes
//! them on the fly — the same trick that lets the CM implementations keep
//! everything in flat arrays.

use crate::config::{Connectivity, RegionStats};
use crate::split::SplitResult;
use rayon::prelude::*;
use rg_imaging::Intensity;
use std::borrow::Cow;

/// A region adjacency graph: `stats[v]` for each vertex, plus the canonical
/// (sorted, deduplicated, `u < v`) undirected edge list.
///
/// Statistics are carried as a [`Cow`]: [`Rag::from_split`] *borrows* the
/// split result's stats instead of cloning them (the merge engine converts
/// them into its SoA layout in one pass either way), while hand-built
/// graphs (tests, synthetic workloads) own their vector.
#[derive(Debug, Clone)]
pub struct Rag<'a, P: Intensity> {
    /// Per-vertex region statistics, indexed by dense vertex id.
    pub stats: Cow<'a, [RegionStats<P>]>,
    /// Undirected edges with `u < v`, sorted lexicographically, unique.
    pub edges: Vec<(u32, u32)>,
}

impl<P: Intensity> Rag<'static, P> {
    /// Builds a RAG owning its statistics (hand-built graphs).
    pub fn from_parts(stats: Vec<RegionStats<P>>, edges: Vec<(u32, u32)>) -> Self {
        Self {
            stats: Cow::Owned(stats),
            edges,
        }
    }
}

impl<'a, P: Intensity> Rag<'a, P> {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.stats.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the RAG for the squares of a split result, borrowing the
    /// split's statistics (no copy).
    pub fn from_split(split: &'a SplitResult<P>, connectivity: Connectivity) -> Self {
        let edges = adjacent_label_pairs(
            &split.square_of,
            split.width,
            split.height,
            connectivity,
            false,
        );
        Self {
            stats: Cow::Borrowed(&split.stats),
            edges,
        }
    }

    /// Builds the RAG in parallel (identical output to [`Rag::from_split`],
    /// statistics borrowed without copying).
    pub fn from_split_par(split: &'a SplitResult<P>, connectivity: Connectivity) -> Self {
        let edges = adjacent_label_pairs(
            &split.square_of,
            split.width,
            split.height,
            connectivity,
            true,
        );
        Self {
            stats: Cow::Borrowed(&split.stats),
            edges,
        }
    }
}

/// Scans a row-major label map and returns every unordered pair of distinct
/// labels that are pixel-adjacent under `connectivity`, sorted and deduped.
///
/// Used both to build the RAG over split squares and to verify maximality
/// of a final segmentation.
pub fn adjacent_label_pairs(
    labels: &[u32],
    width: usize,
    height: usize,
    connectivity: Connectivity,
    parallel: bool,
) -> Vec<(u32, u32)> {
    assert_eq!(labels.len(), width * height, "label buffer size mismatch");
    if !parallel {
        let mut out = Vec::new();
        adjacent_label_pairs_into(labels, width, height, connectivity, &mut out);
        return out;
    }
    let row_pairs = |y: usize, out: &mut Vec<(u32, u32)>| {
        let row = &labels[y * width..(y + 1) * width];
        let below = if y + 1 < height {
            Some(&labels[(y + 1) * width..(y + 2) * width])
        } else {
            None
        };
        for x in 0..width {
            let a = row[x];
            // Right neighbour.
            if x + 1 < width {
                push_pair(out, a, row[x + 1]);
            }
            if let Some(below) = below {
                // Down neighbour.
                push_pair(out, a, below[x]);
                if connectivity == Connectivity::Eight {
                    // Down-right and down-left diagonals.
                    if x + 1 < width {
                        push_pair(out, a, below[x + 1]);
                    }
                    if x > 0 {
                        push_pair(out, a, below[x - 1]);
                    }
                }
            }
        }
    };

    let mut pairs: Vec<(u32, u32)> = (0..height)
        .into_par_iter()
        .fold(Vec::new, |mut acc, y| {
            row_pairs(y, &mut acc);
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });

    pairs.par_sort_unstable();
    pairs.dedup();
    pairs
}

/// [`adjacent_label_pairs`] writing into a caller-owned buffer (cleared
/// first). Output is identical to the sequential path of
/// [`adjacent_label_pairs`]; no heap allocation once `out` has reached its
/// high-water capacity.
pub fn adjacent_label_pairs_into(
    labels: &[u32],
    width: usize,
    height: usize,
    connectivity: Connectivity,
    out: &mut Vec<(u32, u32)>,
) {
    assert_eq!(labels.len(), width * height, "label buffer size mismatch");
    out.clear();
    for y in 0..height {
        let row = &labels[y * width..(y + 1) * width];
        let below = if y + 1 < height {
            Some(&labels[(y + 1) * width..(y + 2) * width])
        } else {
            None
        };
        for x in 0..width {
            let a = row[x];
            // Right neighbour.
            if x + 1 < width {
                push_pair(out, a, row[x + 1]);
            }
            if let Some(below) = below {
                // Down neighbour.
                push_pair(out, a, below[x]);
                if connectivity == Connectivity::Eight {
                    // Down-right and down-left diagonals.
                    if x + 1 < width {
                        push_pair(out, a, below[x + 1]);
                    }
                    if x > 0 {
                        push_pair(out, a, below[x - 1]);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

#[inline]
fn push_pair(out: &mut Vec<(u32, u32)>, a: u32, b: u32) {
    use std::cmp::Ordering;
    match a.cmp(&b) {
        Ordering::Less => out.push((a, b)),
        Ordering::Greater => out.push((b, a)),
        Ordering::Equal => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::split::split;
    use rg_imaging::synth;

    #[test]
    fn figure1_rag() {
        // Squares (dense index by raster order of top-left):
        //   0: 2×2 @ (0,0)   1: 1×1 @ (2,0)  2: 1×1 @ (3,0)
        //   3: 1×1 @ (2,1)   4: 1×1 @ (3,1)  5: 2×2 @ (0,2)  6: 2×2 @ (2,2)
        let img = synth::figure1_image();
        let s = split(&img, &Config::with_threshold(3));
        let rag = Rag::from_split(&s, Connectivity::Four);
        assert_eq!(rag.num_vertices(), 7);
        let expect = vec![
            (0, 1),
            (0, 3),
            (0, 5),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 6),
            (4, 6),
            (5, 6),
        ];
        assert_eq!(rag.edges, expect);
    }

    #[test]
    fn eight_connectivity_adds_diagonals() {
        // 2×2 checkerboard of singleton regions: 4-conn has 4 edges, 8-conn
        // adds the two diagonals.
        let labels = vec![0, 1, 2, 3];
        let four = adjacent_label_pairs(&labels, 2, 2, Connectivity::Four, false);
        assert_eq!(four, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let eight = adjacent_label_pairs(&labels, 2, 2, Connectivity::Eight, false);
        assert_eq!(eight, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let img = synth::random_rects(80, 48, 9, 5);
        let s = split(&img, &Config::with_threshold(15));
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let a = adjacent_label_pairs(&s.square_of, 80, 48, conn, false);
            let b = adjacent_label_pairs(&s.square_of, 80, 48, conn, true);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn edges_are_canonical() {
        let img = synth::circle_collection(64);
        let s = split(&img, &Config::with_threshold(10));
        let rag = Rag::from_split(&s, Connectivity::Four);
        for w in rag.edges.windows(2) {
            assert!(w[0] < w[1], "edges must be strictly sorted/unique");
        }
        assert!(rag.edges.iter().all(|&(u, v)| u < v));
        assert!(rag
            .edges
            .iter()
            .all(|&(u, v)| (v as usize) < rag.num_vertices() && (u as usize) < rag.num_vertices()));
    }

    #[test]
    fn into_variant_matches_with_reused_buffer() {
        let mut buf = vec![(7u32, 9u32)]; // stale content must be cleared
        for seed in 0..3 {
            let img = synth::random_rects(40, 24, 6, seed);
            let s = split(&img, &Config::with_threshold(12));
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let fresh = adjacent_label_pairs(&s.square_of, 40, 24, conn, false);
                adjacent_label_pairs_into(&s.square_of, 40, 24, conn, &mut buf);
                assert_eq!(fresh, buf);
            }
        }
    }

    #[test]
    fn single_region_image_has_no_edges() {
        let img: rg_imaging::Image<u8> = rg_imaging::Image::new(8, 8, 3);
        let s = split(&img, &Config::with_threshold(5));
        let rag = Rag::from_split(&s, Connectivity::Four);
        assert_eq!(rag.num_vertices(), 1);
        assert!(rag.edges.is_empty());
    }
}
