//! Per-region summaries and boundary extraction — the downstream-facing
//! output API (object measurement, overlay rendering).

use crate::config::RegionStats;
use crate::engine::Segmentation;
use rg_imaging::{Image, Intensity};

/// Geometry and intensity summary of one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSummary<P: Intensity> {
    /// Compact region label.
    pub label: u32,
    /// Intensity statistics (min/max/sum/count).
    pub stats: RegionStats<P>,
    /// Bounding box `(x0, y0, x1, y1)`, half-open.
    pub bbox: (usize, usize, usize, usize),
    /// Pixel-centroid `(x, y)`.
    pub centroid: (f64, f64),
}

impl<P: Intensity> RegionSummary<P> {
    /// Region area in pixels.
    pub fn area(&self) -> usize {
        self.stats.count as usize
    }

    /// Mean intensity.
    pub fn mean(&self) -> f64 {
        self.stats.sum as f64 / self.stats.count as f64
    }
}

/// Summarises every region of a segmentation in one pass.
///
/// # Panics
/// Panics if the segmentation does not match the image dimensions.
pub fn summarize_regions<P: Intensity>(
    img: &Image<P>,
    seg: &Segmentation,
) -> Vec<RegionSummary<P>> {
    assert_eq!(img.width(), seg.width, "image/segmentation width mismatch");
    assert_eq!(
        img.height(),
        seg.height,
        "image/segmentation height mismatch"
    );
    struct Acc {
        stats: Option<RegionStats<u32>>,
        min_x: usize,
        min_y: usize,
        max_x: usize,
        max_y: usize,
        sum_x: u64,
        sum_y: u64,
    }
    let mut accs: Vec<Acc> = (0..seg.num_regions)
        .map(|_| Acc {
            stats: None,
            min_x: usize::MAX,
            min_y: usize::MAX,
            max_x: 0,
            max_y: 0,
            sum_x: 0,
            sum_y: 0,
        })
        .collect();
    let mut mins: Vec<Option<(P, P)>> = vec![None; seg.num_regions];
    for (i, &l) in seg.labels.iter().enumerate() {
        let (x, y) = (i % seg.width, i / seg.width);
        let p = img.pixels()[i];
        let a = &mut accs[l as usize];
        let s = RegionStats {
            min: p.to_u32(),
            max: p.to_u32(),
            sum: p.to_u32() as u64,
            count: 1,
        };
        a.stats = Some(match a.stats {
            None => s,
            Some(prev) => prev.fold(s),
        });
        let mm = &mut mins[l as usize];
        *mm = Some(match *mm {
            None => (p, p),
            Some((lo, hi)) => (lo.min(p), hi.max(p)),
        });
        a.min_x = a.min_x.min(x);
        a.min_y = a.min_y.min(y);
        a.max_x = a.max_x.max(x);
        a.max_y = a.max_y.max(y);
        a.sum_x += x as u64;
        a.sum_y += y as u64;
    }
    accs.into_iter()
        .zip(mins)
        .enumerate()
        .map(|(label, (a, mm))| {
            let s = a.stats.expect("every label has pixels (labels are dense)");
            let (lo, hi) = mm.expect("dense labels");
            RegionSummary {
                label: label as u32,
                stats: RegionStats {
                    min: lo,
                    max: hi,
                    sum: s.sum,
                    count: s.count,
                },
                bbox: (a.min_x, a.min_y, a.max_x + 1, a.max_y + 1),
                centroid: (
                    a.sum_x as f64 / s.count as f64,
                    a.sum_y as f64 / s.count as f64,
                ),
            }
        })
        .collect()
}

/// Marks pixels lying on a region boundary (4-adjacent to a different
/// label). Image borders do not count as boundaries.
pub fn boundary_mask(seg: &Segmentation) -> Vec<bool> {
    let (w, h) = (seg.width, seg.height);
    let l = &seg.labels;
    let mut mask = vec![false; w * h];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let me = l[i];
            let boundary = (x + 1 < w && l[i + 1] != me)
                || (x > 0 && l[i - 1] != me)
                || (y + 1 < h && l[i + w] != me)
                || (y > 0 && l[i - w] != me);
            mask[i] = boundary;
        }
    }
    mask
}

/// Renders the image with region boundaries painted white — the usual
/// "show me the segmentation" overlay.
pub fn overlay_boundaries<P: Intensity>(img: &Image<P>, seg: &Segmentation) -> Image<P> {
    assert_eq!(img.len(), seg.labels.len(), "image/segmentation mismatch");
    let mask = boundary_mask(seg);
    let mut out = img.clone();
    for (i, &b) in mask.iter().enumerate() {
        if b {
            let (x, y) = (i % seg.width, i / seg.width);
            out.set(x, y, P::MAX_VALUE);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::segment;
    use crate::Config;
    use rg_imaging::synth;

    #[test]
    fn summaries_cover_all_pixels() {
        let img = synth::rect_collection(64);
        let seg = segment(&img, &Config::with_threshold(10));
        let sums = summarize_regions(&img, &seg);
        assert_eq!(sums.len(), 7);
        let total: usize = sums.iter().map(|s| s.area()).sum();
        assert_eq!(total, 64 * 64);
        // Labels ascend and match indices.
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(s.label, i as u32);
        }
    }

    #[test]
    fn flat_region_geometry_is_exact() {
        // One 4x3 rectangle of intensity 200 at (2,1) on a 0 background.
        let mut img: rg_imaging::GrayImage = rg_imaging::Image::new(10, 8, 0);
        rg_imaging::draw::fill_rect(&mut img, rg_imaging::draw::Rect::new(2, 1, 4, 3), 200);
        let seg = segment(&img, &Config::with_threshold(5));
        let sums = summarize_regions(&img, &seg);
        let rect = sums.iter().find(|s| s.stats.min == 200).unwrap();
        assert_eq!(rect.area(), 12);
        assert_eq!(rect.bbox, (2, 1, 6, 4));
        assert_eq!(rect.centroid, (3.5, 2.0));
        assert_eq!(rect.mean(), 200.0);
        assert_eq!(rect.stats.range(), 0);
    }

    #[test]
    fn boundary_mask_separates_regions() {
        let img = synth::nested_rects(32);
        let cfg = Config::with_threshold(10);
        let seg = segment(&img, &cfg);
        let mask = boundary_mask(&seg);
        // There must be boundary pixels (two regions) but not everywhere.
        let count = mask.iter().filter(|&&b| b).count();
        assert!(count > 0 && count < 32 * 32 / 2);
        // Every masked pixel really touches another label.
        for (i, &b) in mask.iter().enumerate() {
            if b {
                let (x, y) = (i % 32, i / 32);
                let me = seg.labels[i];
                let touches = [
                    (x > 0).then(|| seg.labels[i - 1]),
                    (x + 1 < 32).then(|| seg.labels[i + 1]),
                    (y > 0).then(|| seg.labels[i - 32]),
                    (y + 1 < 32).then(|| seg.labels[i + 32]),
                ];
                assert!(touches.into_iter().flatten().any(|l| l != me));
            }
        }
    }

    #[test]
    fn overlay_paints_only_boundaries() {
        let img = synth::circle_collection(64);
        let cfg = Config::with_threshold(10);
        let seg = segment(&img, &cfg);
        let overlay = overlay_boundaries(&img, &seg);
        let mask = boundary_mask(&seg);
        for (i, &b) in mask.iter().enumerate() {
            let (x, y) = (i % 64, i / 64);
            if b {
                assert_eq!(overlay.get(x, y), u8::MAX);
            } else {
                assert_eq!(overlay.get(x, y), img.get(x, y));
            }
        }
    }

    #[test]
    fn single_region_has_no_boundary() {
        let img: rg_imaging::GrayImage = rg_imaging::Image::new(8, 8, 7);
        let seg = segment(&img, &Config::with_threshold(0));
        assert!(boundary_mask(&seg).iter().all(|&b| !b));
    }
}
