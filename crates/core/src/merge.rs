//! The merge stage: iterative mutual-choice merging on the RAG.
//!
//! One merge iteration (the paper's steps 3–4):
//!
//! 1. every region selects the neighbouring region that best satisfies the
//!    homogeneity criterion (minimum edge weight), breaking ties by the
//!    configured [`TieBreak`] policy;
//! 2. two regions merge iff they selected each other (*mutual* choices);
//!    several pairs merge in the same iteration without conflict because
//!    each region makes exactly one choice;
//! 3. the region with the smaller ID becomes the representative;
//! 4. vertices and edges are updated: statistics fold, edge endpoints
//!    relabel to representatives, self-loops disappear, and edges that no
//!    longer satisfy the criterion are de-activated (dropped — under the
//!    pixel-range criterion weights grow monotonically with merging, so
//!    de-activation is permanent, exactly as in the paper; under the
//!    mean-difference extension we keep the paper's drop-on-violation
//!    semantics even though the mean distance is not monotone).
//!
//! The loop repeats while active edges exist.
//!
//! ### Termination
//!
//! With [`TieBreak::SmallestId`] / [`TieBreak::LargestId`] at least one
//! mutual pair exists in every iteration (the globally minimal edge under
//! the induced total order is always mutual), so the stage terminates in at
//! most `R − 1` iterations. With [`TieBreak::Random`] an iteration may
//! produce no merge (choices can form cycles); the engine re-randomises
//! every iteration and, after [`Config::max_stall`] consecutive empty
//! iterations, runs a single smallest-ID iteration to force progress.
//!
//! ### Determinism across engines
//!
//! All tie-break decisions hash *canonical region IDs* (the linear index of
//! a region's top-left pixel — [`crate::split::Square::id`]), not dense
//! vertex indices, so the sequential, rayon, data-parallel, and
//! message-passing engines make identical random decisions given the same
//! seed.

use crate::config::{Config, Criterion, RegionStats, TieBreak};
use crate::graph::Rag;
use crate::hierarchy::{MergeEvent, MergeTrace};
use rayon::prelude::*;
use rg_dsu::DisjointSets;
use rg_imaging::Intensity;

/// Deterministic tie-break priority: a splitmix64-style hash of
/// `(seed, iteration, chooser, candidate)`.
///
/// Public so the data-parallel and message-passing implementations can make
/// bit-identical random choices.
#[inline]
pub fn tie_priority(seed: u64, iteration: u32, chooser: u64, candidate: u64) -> u64 {
    let mut x = seed
        .wrapping_add((iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(chooser.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(candidate.wrapping_mul(0x94D0_49BB_1331_11EB));
    // splitmix64 finaliser.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The key a chooser uses to rank `candidate` among equal-weight
/// neighbours; smaller is better. Shared by every engine.
#[inline]
pub fn tie_key(policy: TieBreak, iteration: u32, chooser_id: u64, candidate_id: u64) -> (u64, u64) {
    match policy {
        TieBreak::SmallestId => (candidate_id, 0),
        TieBreak::LargestId => (u64::MAX - candidate_id, 0),
        TieBreak::Random { seed } => (
            tie_priority(seed, iteration, chooser_id, candidate_id),
            candidate_id,
        ),
    }
}

/// What one call to [`Merger::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Number of region pairs merged this iteration.
    pub merges: u32,
    /// `true` when the stall guard forced a smallest-ID iteration.
    pub used_fallback: bool,
}

/// Summary of a completed merge stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSummary {
    /// Total merge iterations executed (including zero-merge iterations
    /// under random tie-breaking).
    pub iterations: u32,
    /// Merges performed in each iteration.
    pub merges_per_iteration: Vec<u32>,
    /// Regions remaining at termination.
    pub num_regions: usize,
}

/// The stepping merge engine over a RAG.
///
/// Construct with [`Merger::new`], then either [`Merger::run`] to
/// completion or [`Merger::step`] repeatedly (the paper's Figure 2
/// walkthrough is validated this way).
#[derive(Debug)]
pub struct Merger<P: Intensity> {
    threshold: u32,
    criterion: Criterion,
    tie: TieBreak,
    max_stall: u32,
    parallel: bool,

    /// Canonical region ID per dense vertex (order-isomorphic to the dense
    /// index; used for tie-break hashing only).
    ids: Vec<u64>,
    /// Region statistics, current at representative indices.
    stats: Vec<RegionStats<P>>,
    /// Active edges between current representatives (`u < v`, sorted,
    /// unique, criterion-satisfying).
    edges: Vec<(u32, u32)>,
    /// Full merge history (original vertex → representative).
    history: DisjointSets,
    /// Scratch: one-iteration redirect table (identity outside merged
    /// losers).
    redirect: Vec<u32>,
    /// Losers of the current iteration, pending redirect reset.
    pending_losers: Vec<u32>,

    iterations: u32,
    merges_per_iteration: Vec<u32>,
    num_regions: usize,
    stalls: u32,
    trace: Option<MergeTrace>,
}

impl<P: Intensity> Merger<P> {
    /// Creates the engine. `ids[v]` is the canonical ID of dense vertex
    /// `v`; IDs must be strictly increasing (raster order of the regions).
    ///
    /// Edges of `rag` that do not satisfy the criterion are de-activated
    /// immediately (the paper's step 2).
    pub fn new(rag: Rag<P>, ids: Vec<u64>, config: &Config, parallel: bool) -> Self {
        assert_eq!(ids.len(), rag.num_vertices(), "ids length mismatch");
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must increase");
        let n = rag.num_vertices();
        let stats = rag.stats;
        let t = config.threshold;
        let crit = config.criterion;
        let mut edges = rag.edges;
        edges.retain(|&(u, v)| crit.satisfies(&stats[u as usize], &stats[v as usize], t));
        Self {
            threshold: t,
            criterion: crit,
            tie: config.tie_break,
            max_stall: config.max_stall,
            parallel,
            ids,
            stats,
            edges,
            history: DisjointSets::new(n),
            redirect: (0..n as u32).collect(),
            pending_losers: Vec::new(),
            iterations: 0,
            merges_per_iteration: Vec::new(),
            num_regions: n,
            stalls: 0,
            trace: None,
        }
    }

    /// Starts recording a [`MergeTrace`] (call before the first step).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(MergeTrace::new(self.stats.len()));
        }
    }

    /// Takes the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<MergeTrace> {
        self.trace.take()
    }

    /// `true` when no active edges remain.
    pub fn is_done(&self) -> bool {
        self.edges.is_empty()
    }

    /// Active edge count.
    pub fn active_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Regions currently alive.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Merges performed in each iteration so far.
    pub fn merges_per_iteration(&self) -> &[u32] {
        &self.merges_per_iteration
    }

    /// Statistics of the region represented by dense vertex `rep`.
    pub fn stats_of(&self, rep: u32) -> RegionStats<P> {
        self.stats[rep as usize]
    }

    /// Representative (dense index) of each original vertex.
    pub fn labels_by_vertex(&mut self) -> Vec<u32> {
        (0..self.history.len() as u32)
            .map(|v| self.history.find(v))
            .collect()
    }

    /// Executes one merge iteration; no-op when already done.
    pub fn step(&mut self) -> StepReport {
        if self.is_done() {
            return StepReport {
                merges: 0,
                used_fallback: false,
            };
        }
        let used_fallback =
            matches!(self.tie, TieBreak::Random { .. }) && self.stalls >= self.max_stall;
        let policy = if used_fallback {
            TieBreak::SmallestId
        } else {
            self.tie
        };

        let choice = self.compute_choices(policy);
        let merges = self.apply_mutual_merges(&choice);
        self.relabel_and_filter_edges();

        self.iterations += 1;
        self.merges_per_iteration.push(merges);
        if merges == 0 {
            self.stalls += 1;
        } else {
            self.stalls = 0;
        }
        StepReport {
            merges,
            used_fallback,
        }
    }

    /// Runs to completion.
    pub fn run(&mut self) -> MergeSummary {
        while !self.is_done() {
            self.step();
        }
        MergeSummary {
            iterations: self.iterations,
            merges_per_iteration: self.merges_per_iteration.clone(),
            num_regions: self.num_regions,
        }
    }

    /// For every vertex incident to an active edge, its chosen neighbour
    /// (`u32::MAX` = no choice). The choice minimises
    /// `(weight, tie_key, neighbour)`.
    fn compute_choices(&self, policy: TieBreak) -> Vec<u32> {
        let n = self.stats.len();
        let iter = self.iterations;
        let cand_key = |chooser: u32, nb: u32| -> (u64, u64, u64, u32) {
            let w = self
                .criterion
                .weight(&self.stats[chooser as usize], &self.stats[nb as usize]);
            let (k0, k1) = tie_key(
                policy,
                iter,
                self.ids[chooser as usize],
                self.ids[nb as usize],
            );
            (w, k0, k1, nb)
        };

        let mut choice = vec![u32::MAX; n];
        if self.parallel && self.edges.len() >= 4096 {
            // CM-style: build the directed candidate list, sort by
            // (vertex, rank), take the head of each segment.
            let mut directed: Vec<(u32, (u64, u64, u64, u32))> = self
                .edges
                .par_iter()
                .flat_map_iter(|&(u, v)| [(u, cand_key(u, v)), (v, cand_key(v, u))].into_iter())
                .collect();
            directed.par_sort_unstable();
            let mut prev = u32::MAX;
            for (vtx, key) in directed {
                if vtx != prev {
                    choice[vtx as usize] = key.3;
                    prev = vtx;
                }
            }
        } else {
            let mut best: Vec<(u64, u64, u64, u32)> =
                vec![(u64::MAX, u64::MAX, u64::MAX, u32::MAX); n];
            for &(u, v) in &self.edges {
                let ku = cand_key(u, v);
                if ku < best[u as usize] {
                    best[u as usize] = ku;
                }
                let kv = cand_key(v, u);
                if kv < best[v as usize] {
                    best[v as usize] = kv;
                }
            }
            for (c, b) in choice.iter_mut().zip(&best) {
                *c = b.3;
            }
        }
        choice
    }

    /// Merges every mutual pair; returns the number of merges.
    fn apply_mutual_merges(&mut self, choice: &[u32]) -> u32 {
        let mut merges = 0u32;
        let mut losers: Vec<u32> = Vec::new();
        for u in 0..choice.len() as u32 {
            let v = choice[u as usize];
            if v != u32::MAX && u < v && choice[v as usize] == u {
                if let Some(trace) = &mut self.trace {
                    trace.events.push(MergeEvent {
                        iteration: self.iterations,
                        winner: u,
                        loser: v,
                        weight_fp16: self
                            .criterion
                            .weight(&self.stats[u as usize], &self.stats[v as usize]),
                    });
                }
                // Representative = smaller dense index = smaller ID.
                self.stats[u as usize] = self.stats[u as usize].fold(self.stats[v as usize]);
                self.redirect[v as usize] = u;
                losers.push(v);
                self.history.union_min_rep(u, v);
                self.num_regions -= 1;
                merges += 1;
            }
        }
        // losers kept in redirect until edges are relabelled; the caller
        // resets them afterwards via relabel_and_filter_edges.
        self.pending_losers = losers;
        merges
    }

    /// Relabels edge endpoints through this iteration's redirects, drops
    /// self-loops and criterion-violating edges, and restores the canonical
    /// sorted-unique form.
    fn relabel_and_filter_edges(&mut self) {
        let redirect = &self.redirect;
        let stats = &self.stats;
        let t = self.threshold;
        let crit = self.criterion;
        let map = |&(u, v): &(u32, u32)| -> Option<(u32, u32)> {
            let (mut a, mut b) = (redirect[u as usize], redirect[v as usize]);
            if a == b {
                return None;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            if crit.satisfies(&stats[a as usize], &stats[b as usize], t) {
                Some((a, b))
            } else {
                None
            }
        };
        let mut next: Vec<(u32, u32)> = if self.parallel && self.edges.len() >= 4096 {
            let mut v: Vec<_> = self.edges.par_iter().filter_map(map).collect();
            v.par_sort_unstable();
            v
        } else {
            let mut v: Vec<_> = self.edges.iter().filter_map(map).collect();
            v.sort_unstable();
            v
        };
        next.dedup();
        self.edges = next;
        // Reset redirects for the merged losers.
        for l in self.pending_losers.drain(..) {
            self.redirect[l as usize] = l;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Connectivity;
    use crate::split::split;
    use rg_imaging::synth;

    fn make_merger(t: u32, tie: TieBreak, parallel: bool) -> Merger<u8> {
        let img = synth::figure1_image();
        let cfg = Config::with_threshold(t).tie_break(tie);
        let s = split(&img, &cfg);
        let rag = Rag::from_split(&s, Connectivity::Four);
        let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(4) as u64).collect();
        Merger::new(rag, ids, &cfg, parallel)
    }

    #[test]
    fn figure2_walkthrough_smallest_id() {
        // Hand-verified against the paper's Figure 2 (see DESIGN.md):
        // start: 7 regions; iter 1 merges {0,5} and {2,4}; iter 2 merges
        // {3,6}; iter 3 merges {0,3} and {1,2}; done with 2 regions.
        let mut m = make_merger(3, TieBreak::SmallestId, false);
        assert_eq!(m.num_regions(), 7);

        let r1 = m.step();
        assert_eq!(r1.merges, 2);
        assert_eq!(m.num_regions(), 5);
        let labels = m.labels_by_vertex();
        assert_eq!(labels[5], 0); // B merged into A
        assert_eq!(labels[4], 2); // pixel 4 merged into pixel 3's region

        let r2 = m.step();
        assert_eq!(r2.merges, 1);
        assert_eq!(m.num_regions(), 4);
        assert_eq!(m.labels_by_vertex()[6], 3); // C merged into region 3

        let r3 = m.step();
        assert_eq!(r3.merges, 2);
        assert_eq!(m.num_regions(), 2);
        assert!(m.is_done());
        assert_eq!(m.iterations(), 3);

        let labels = m.labels_by_vertex();
        assert_eq!(labels, vec![0, 1, 1, 0, 1, 0, 0]);
        // Final stats: region 0 = {6..8} ∪ {5} ∪ {7,8} ∪ {5,6}, range 3.
        assert_eq!(m.stats_of(0).min, 5);
        assert_eq!(m.stats_of(0).max, 8);
        assert_eq!(m.stats_of(1).min, 1);
        assert_eq!(m.stats_of(1).max, 4);
    }

    #[test]
    fn parallel_step_identical() {
        for tie in [
            TieBreak::SmallestId,
            TieBreak::LargestId,
            TieBreak::Random { seed: 7 },
        ] {
            let mut a = make_merger(3, tie, false);
            let mut b = make_merger(3, tie, true);
            let sa = a.run();
            let sb = b.run();
            assert_eq!(sa, sb, "{tie:?}");
            assert_eq!(a.labels_by_vertex(), b.labels_by_vertex());
        }
    }

    #[test]
    fn random_seeds_are_deterministic() {
        let run = |seed| {
            let mut m = make_merger(3, TieBreak::Random { seed }, false);
            m.run();
            m.labels_by_vertex()
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(2), run(2));
    }

    #[test]
    fn smallest_id_always_progresses() {
        // A ring of equal-intensity singleton regions: every edge has equal
        // weight, the worst case for ties. Smallest-ID must still merge at
        // least one pair per iteration.
        let img = synth::checkerboard(16, 1, 100, 100); // uniform, actually
        let cfg = Config::with_threshold(0)
            .tie_break(TieBreak::SmallestId)
            .max_square_log2(Some(0));
        let s = split(&img, &cfg);
        let rag = Rag::from_split(&s, Connectivity::Four);
        let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(16) as u64).collect();
        let mut m = Merger::new(rag, ids, &cfg, false);
        while !m.is_done() {
            let r = m.step();
            assert!(r.merges >= 1, "smallest-ID iteration with zero merges");
        }
        assert_eq!(m.num_regions(), 1);
    }

    #[test]
    fn random_ties_merge_faster_on_tie_heavy_input() {
        // Uniform image, merge-only: every edge weight is 0, so every
        // choice is a tie. Random tie-breaking should finish in fewer
        // iterations than smallest-ID (the paper's central claim).
        let img: rg_imaging::Image<u8> = rg_imaging::Image::new(32, 32, 50);
        let run = |tie| {
            let cfg = Config::with_threshold(0)
                .tie_break(tie)
                .max_square_log2(Some(0));
            let s = split(&img, &cfg);
            let rag = Rag::from_split(&s, Connectivity::Four);
            let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(32) as u64).collect();
            let mut m = Merger::new(rag, ids, &cfg, false);
            let summary = m.run();
            assert_eq!(summary.num_regions, 1);
            summary.iterations
        };
        let random = run(TieBreak::Random { seed: 42 });
        let smallest = run(TieBreak::SmallestId);
        assert!(
            random < smallest,
            "random ({random}) should beat smallest-ID ({smallest})"
        );
    }

    #[test]
    fn no_active_edges_means_zero_iterations() {
        let mut m = make_merger(0, TieBreak::SmallestId, false);
        // T = 0: which edges are active? Only pairs with identical
        // min=max. Figure-1 squares have ranges > 0, so most edges die;
        // run must terminate quickly regardless.
        let summary = m.run();
        assert_eq!(
            summary.iterations as usize,
            summary.merges_per_iteration.len()
        );
    }

    #[test]
    fn tie_priority_spreads() {
        // Sanity: the hash separates close inputs.
        let a = tie_priority(0, 0, 1, 2);
        let b = tie_priority(0, 0, 1, 3);
        let c = tie_priority(0, 1, 1, 2);
        let d = tie_priority(1, 0, 1, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn merge_summary_consistency() {
        let mut m = make_merger(3, TieBreak::Random { seed: 9 }, false);
        let start = m.num_regions();
        let summary = m.run();
        let merged: u32 = summary.merges_per_iteration.iter().sum();
        assert_eq!(start - merged as usize, summary.num_regions);
    }
}
