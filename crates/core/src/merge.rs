//! The merge stage: iterative mutual-choice merging on the RAG.
//!
//! One merge iteration (the paper's steps 3–4):
//!
//! 1. every region selects the neighbouring region that best satisfies the
//!    homogeneity criterion (minimum edge weight), breaking ties by the
//!    configured [`TieBreak`] policy;
//! 2. two regions merge iff they selected each other (*mutual* choices);
//!    several pairs merge in the same iteration without conflict because
//!    each region makes exactly one choice;
//! 3. the region with the smaller ID becomes the representative;
//! 4. vertices and edges are updated: statistics fold, edge endpoints
//!    relabel to representatives, self-loops disappear, and edges that no
//!    longer satisfy the criterion are de-activated (dropped — under the
//!    pixel-range criterion weights grow monotonically with merging, so
//!    de-activation is permanent, exactly as in the paper; under the
//!    mean-difference extension we keep the paper's drop-on-violation
//!    semantics even though the mean distance is not monotone).
//!
//! The loop repeats while active edges exist.
//!
//! ### Backends
//!
//! Two interchangeable merge backends implement step 4
//! ([`crate::config::MergeBackend`]):
//!
//! * **CSR** (default): a compressed-sparse-row adjacency structure in the
//!   spirit of the CM implementations' flat arrays. Each original vertex
//!   owns a *row* of directed neighbour slots. One fused sweep at the end
//!   of every iteration redirects endpoints through the iteration's
//!   one-level redirect table (exact, because a representative never loses
//!   in the iteration it wins), drops self-loops / per-owner duplicates /
//!   criterion-violating slots, squeezes the surviving slots *and* rows in
//!   place, and pre-folds the next iteration's per-region choice minima —
//!   no per-iteration edge-list rebuild, no global sort, no steady-state
//!   allocation, and no dead slot or empty row is ever rescanned. The
//!   steady-state cost per iteration is O(live slots + live owners), with
//!   none of the O(vertices) refill floors the reference engine pays.
//! * **Reference**: the original edge-list engine that rebuilds, re-sorts
//!   and re-dedups the whole list every iteration. Kept for differential
//!   testing and as the perf baseline recorded in `BENCH_merge.json`.
//!
//! Both backends produce byte-identical merge histories: the candidate
//! argmin is order-invariant (strict total order per chooser, see
//! `prop_tiebreak.rs`), duplicate parallel edges never change a minimum,
//! and the CSR backend filters criterion-violating slots *eagerly* at the
//! end of each iteration — exactly when the reference filters — so the
//! de-activation schedule, the iteration count, and the stall/fallback
//! behaviour coincide.
//!
//! ### Termination
//!
//! With [`TieBreak::SmallestId`] / [`TieBreak::LargestId`] at least one
//! mutual pair exists in every iteration (the globally minimal edge under
//! the induced total order is always mutual), so the stage terminates in at
//! most `R − 1` iterations. With [`TieBreak::Random`] an iteration may
//! produce no merge (choices can form cycles); the engine re-randomises
//! every iteration and, after [`Config::max_stall`] consecutive empty
//! iterations, runs a single smallest-ID iteration to force progress.
//!
//! ### Determinism across engines
//!
//! All tie-break decisions hash *canonical region IDs* (the linear index of
//! a region's top-left pixel — [`crate::split::Square::id`]), not dense
//! vertex indices, so the sequential, rayon, data-parallel, and
//! message-passing engines make identical random decisions given the same
//! seed.

use crate::config::{
    mean_satisfies, mean_weight_fp16, range_satisfies, range_weight_fp16, Config, Criterion,
    MergeBackend, RegionStats, TieBreak,
};
use crate::graph::Rag;
use crate::hierarchy::{MergeEvent, MergeTrace};
use crate::telemetry::{NullTelemetry, SpanGuard, SpanKind, Telemetry};
use rayon::prelude::*;
use rg_dsu::DisjointSets;
use rg_imaging::Intensity;

/// Deterministic tie-break priority: a splitmix64-style hash of
/// `(seed, iteration, chooser, candidate)`.
///
/// Public so the data-parallel and message-passing implementations can make
/// bit-identical random choices.
#[inline]
pub fn tie_priority(seed: u64, iteration: u32, chooser: u64, candidate: u64) -> u64 {
    let mut x = seed
        .wrapping_add((iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(chooser.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(candidate.wrapping_mul(0x94D0_49BB_1331_11EB));
    // splitmix64 finaliser.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The key a chooser uses to rank `candidate` among equal-weight
/// neighbours; smaller is better. Shared by every engine.
#[inline]
pub fn tie_key(policy: TieBreak, iteration: u32, chooser_id: u64, candidate_id: u64) -> (u64, u64) {
    match policy {
        TieBreak::SmallestId => (candidate_id, 0),
        TieBreak::LargestId => (u64::MAX - candidate_id, 0),
        TieBreak::Random { seed } => (
            tie_priority(seed, iteration, chooser_id, candidate_id),
            candidate_id,
        ),
    }
}

/// The full candidate ranking key `(weight, tie0, tie1, candidate)`: a
/// chooser picks the candidate minimising this tuple. The trailing dense
/// candidate index makes the order strict, so the argmin is invariant
/// under any scan order — the property every backend's segmented-min
/// relies on.
pub type CandKey = (u64, u64, u64, u32);

/// Identity element of the [`CandKey`] min-fold ("no candidate seen").
const KEY_SENTINEL: CandKey = (u64::MAX, u64::MAX, u64::MAX, u32::MAX);

/// Builds the full [`CandKey`] for one directed candidate. Shared by the
/// in-core backends and the message-passing engine so every implementation
/// ranks candidates identically.
#[inline]
pub fn choice_key(
    policy: TieBreak,
    iteration: u32,
    chooser_id: u64,
    candidate_id: u64,
    weight: u64,
    candidate: u32,
) -> CandKey {
    let (k0, k1) = tie_key(policy, iteration, chooser_id, candidate_id);
    (weight, k0, k1, candidate)
}

/// Edge count above which the rayon paths kick in.
const PAR_EDGES: usize = 4096;

/// What one call to [`Merger::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Number of region pairs merged this iteration.
    pub merges: u32,
    /// `true` when the stall guard forced a smallest-ID iteration.
    pub used_fallback: bool,
    /// Active undirected edges remaining *after* this iteration. The CSR
    /// backend counts parallel duplicate edges retained between
    /// compactions, so this may exceed the reference backend's
    /// deduplicated count on the same input.
    pub active_edges: u64,
    /// `true` when the CSR backend compacted its slot array this
    /// iteration.
    pub compacted: bool,
}

/// Summary of a completed merge stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSummary {
    /// Total merge iterations executed (including zero-merge iterations
    /// under random tie-breaking).
    pub iterations: u32,
    /// Merges performed in each iteration.
    pub merges_per_iteration: Vec<u32>,
    /// Regions remaining at termination.
    pub num_regions: usize,
}

/// Region statistics in structure-of-arrays layout: `min`/`max`/`sum`/
/// `count` as separate slices so the hot weight/criterion kernels touch
/// only the fields the active criterion needs (and autovectorise).
#[derive(Debug)]
struct SoaStats<P: Intensity> {
    min: Vec<P>,
    max: Vec<P>,
    sum: Vec<u64>,
    cnt: Vec<u64>,
}

impl<P: Intensity> SoaStats<P> {
    /// An empty SoA (no allocation until [`SoaStats::refill`]).
    fn empty() -> Self {
        Self {
            min: Vec::new(),
            max: Vec::new(),
            sum: Vec::new(),
            cnt: Vec::new(),
        }
    }

    /// Re-fills the SoA from an AoS slice in place, reusing capacity.
    fn refill(&mut self, stats: &[RegionStats<P>]) {
        self.min.clear();
        self.min.extend(stats.iter().map(|s| s.min));
        self.max.clear();
        self.max.extend(stats.iter().map(|s| s.max));
        self.sum.clear();
        self.sum.extend(stats.iter().map(|s| s.sum));
        self.cnt.clear();
        self.cnt.extend(stats.iter().map(|s| s.count));
    }

    /// 16.16 fixed-point merge weight of regions `a` and `b`.
    #[inline]
    fn weight(&self, crit: Criterion, a: usize, b: usize) -> u64 {
        match crit {
            Criterion::PixelRange => range_weight_fp16(
                self.min[a].min(self.min[b]).to_u32(),
                self.max[a].max(self.max[b]).to_u32(),
            ),
            Criterion::MeanDifference => {
                mean_weight_fp16(self.sum[a], self.cnt[a], self.sum[b], self.cnt[b])
            }
        }
    }

    /// `true` iff merging `a` and `b` satisfies the criterion at `t`.
    #[inline]
    fn satisfies(&self, crit: Criterion, t: u32, a: usize, b: usize) -> bool {
        match crit {
            Criterion::PixelRange => range_satisfies(
                self.min[a].min(self.min[b]).to_u32(),
                self.max[a].max(self.max[b]).to_u32(),
                t,
            ),
            Criterion::MeanDifference => {
                mean_satisfies(self.sum[a], self.cnt[a], self.sum[b], self.cnt[b], t)
            }
        }
    }

    /// Folds `loser`'s statistics into `winner` (region union).
    #[inline]
    fn fold(&mut self, winner: usize, loser: usize) {
        self.min[winner] = self.min[winner].min(self.min[loser]);
        self.max[winner] = self.max[winner].max(self.max[loser]);
        self.sum[winner] += self.sum[loser];
        self.cnt[winner] += self.cnt[loser];
    }

    /// Reassembles the AoS view of vertex `i`.
    #[inline]
    fn get(&self, i: usize) -> RegionStats<P> {
        RegionStats {
            min: self.min[i],
            max: self.max[i],
            sum: self.sum[i],
            count: self.cnt[i],
        }
    }
}

/// Hot per-vertex record for the CSR kernels: the pixel-range extrema and
/// the canonical tie-break ID packed into one 16-byte slot, so ranking a
/// candidate costs a single gather instead of three (min, max, id from
/// separate arrays). Updated alongside [`SoaStats`] on every merge.
#[derive(Debug, Clone, Copy)]
struct HotVertex {
    /// Current region minimum, widened to `u32`.
    min: u32,
    /// Current region maximum, widened to `u32`.
    max: u32,
    /// Canonical region ID (see [`crate::split::Square::id`]).
    id: u64,
}

/// "No row" marker for the owner→rows linked lists.
const NO_ROW: u32 = u32::MAX;

/// The CSR adjacency state plus all persistent scratch, so steady-state
/// iterations perform no heap allocation.
#[derive(Debug)]
struct Csr {
    /// Static row extents, one row per *original* vertex (`len = n + 1`).
    /// Never rewritten: row `r`'s slots live in
    /// `col[row_ptr[r] .. row_ptr[r] + row_len[r]]`.
    row_ptr: Vec<u32>,
    /// Live slots of each row. Survivors are squeezed to the row start by
    /// every pass, so the dead tail of an extent is never rescanned (no
    /// tombstones).
    row_len: Vec<u32>,
    /// Directed neighbour slots. Every slot holds the *current
    /// representative* of the neighbouring region.
    col: Vec<u32>,
    /// Current representative of the region that owns row `r`.
    row_owner: Vec<u32>,
    /// Number of live directed slots (`== row_len` sum). Not necessarily
    /// even: the two directions of a duplicated edge may deduplicate at
    /// different times.
    live: usize,
    /// Head of each vertex's list of owned rows (`NO_ROW` = owns none).
    /// Loser lists are spliced into the winner's on every merge under
    /// deterministic tie policies, so the incremental pass can enumerate a
    /// dirty region's rows — and, via their slots, its neighbours —
    /// without any global scan. Emptied rows are unlinked lazily.
    row_head: Vec<u32>,
    /// Tail of each vertex's row list (for O(1) splicing).
    row_tail: Vec<u32>,
    /// Next row in the owning vertex's list.
    row_next: Vec<u32>,
    /// Epoch marks backing the incremental pass's dirty set.
    dirty_epoch: Vec<u32>,
    /// Scratch: dirty vertices of the current incremental pass.
    dirty: Vec<u32>,
    /// Per-neighbour stamp for per-owner duplicate detection; a fresh
    /// token per (owner, pass) makes the check exact with no clearing.
    stamp: Vec<u64>,
    /// Next stamp token block (monotonically increasing, starts at 1
    /// because `stamp` is zero-initialised).
    next_token: u64,
    /// Scratch: per-row minima for the parallel choice pass.
    row_best: Vec<CandKey>,
    /// Owners whose `best`/`choice` entries were written by the last fused
    /// pass — the only entries that need resetting before the next one
    /// (an O(live owners) sweep instead of an O(vertices) refill).
    touched: Vec<u32>,
    /// `false` until the first fused pass: the iteration-0 choice pass
    /// writes `best`/`choice` densely, so the first reset must be full.
    touched_valid: bool,
    /// `true` when the fused end-of-step pass has already folded the next
    /// iteration's per-owner minima into the `Merger`'s `best` array, so
    /// the next choice pass is a table read instead of a sweep.
    precomputed: bool,
    /// The (policy, iteration) the precomputed minima were folded under —
    /// cross-checked against the choice pass in debug builds.
    precomputed_for: (TieBreak, u32),
}

impl Csr {
    /// Builds the CSR over `n` vertices from a canonical (`u < v`, unique)
    /// edge list, materialising both directions.
    fn new(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut csr = Self::empty();
        csr.rebuild(n, edges);
        csr
    }

    /// An empty CSR (no allocation until [`Csr::rebuild`]).
    fn empty() -> Self {
        Self {
            row_ptr: Vec::new(),
            row_len: Vec::new(),
            col: Vec::new(),
            row_owner: Vec::new(),
            live: 0,
            row_head: Vec::new(),
            row_tail: Vec::new(),
            row_next: Vec::new(),
            dirty_epoch: Vec::new(),
            dirty: Vec::new(),
            stamp: Vec::new(),
            next_token: 1,
            row_best: Vec::new(),
            touched: Vec::new(),
            touched_valid: false,
            precomputed: false,
            precomputed_for: (TieBreak::SmallestId, u32::MAX),
        }
    }

    /// Re-initialises the CSR over `n` vertices from a canonical edge list
    /// **in place**, reusing every array's capacity (`row_len` doubles as
    /// the fill cursor, so no temporary is needed). Equivalent to
    /// `*self = Csr::new(n, edges)` but allocation-free in steady state.
    fn rebuild(&mut self, n: usize, edges: &[(u32, u32)]) {
        let slots = edges.len() * 2;
        assert!(slots < u32::MAX as usize, "CSR slot count exceeds u32");
        self.row_ptr.clear();
        self.row_ptr.resize(n + 1, 0);
        for &(u, v) in edges {
            self.row_ptr[u as usize + 1] += 1;
            self.row_ptr[v as usize + 1] += 1;
        }
        for i in 0..n {
            self.row_ptr[i + 1] += self.row_ptr[i];
        }
        // `row_len` serves as the per-row fill cursor during scatter...
        self.row_len.clear();
        self.row_len.extend_from_slice(&self.row_ptr[..n]);
        self.col.clear();
        self.col.resize(slots, 0);
        for &(u, v) in edges {
            self.col[self.row_len[u as usize] as usize] = v;
            self.row_len[u as usize] += 1;
            self.col[self.row_len[v as usize] as usize] = u;
            self.row_len[v as usize] += 1;
        }
        // ...then becomes the live slot count of each row.
        for r in 0..n {
            self.row_len[r] = self.row_ptr[r + 1] - self.row_ptr[r];
        }
        self.row_owner.clear();
        self.row_owner.extend(0..n as u32);
        self.live = slots;
        self.row_head.clear();
        self.row_head.extend(0..n as u32);
        self.row_tail.clear();
        self.row_tail.extend(0..n as u32);
        self.row_next.clear();
        self.row_next.resize(n, NO_ROW);
        self.dirty_epoch.clear();
        self.dirty_epoch.resize(n, 0);
        self.dirty.clear();
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.next_token = 1;
        self.row_best.clear();
        self.row_best.resize(n, KEY_SENTINEL);
        self.touched.clear();
        self.touched.reserve(n);
        self.touched_valid = false;
        self.precomputed = false;
        self.precomputed_for = (TieBreak::SmallestId, u32::MAX);
    }

    /// Appends loser `v`'s row list to winner `u`'s (O(1)). The rows'
    /// `row_owner` fields are rewritten lazily by the next pass that walks
    /// them.
    fn splice(&mut self, u: usize, v: usize) {
        let vh = self.row_head[v];
        if vh == NO_ROW {
            return;
        }
        let vt = self.row_tail[v];
        if self.row_head[u] == NO_ROW {
            self.row_head[u] = vh;
        } else {
            self.row_next[self.row_tail[u] as usize] = vh;
        }
        self.row_tail[u] = vt;
        self.row_head[v] = NO_ROW;
        self.row_tail[v] = NO_ROW;
    }

    /// Parallel half of the choice pass: the minimum [`CandKey`] of every
    /// row into `row_best` (rows are independent, so the writes are too).
    /// The caller folds rows into per-representative minima sequentially —
    /// the argmin is order-invariant, so the split is free of races *and*
    /// of nondeterminism.
    fn row_minima_par<P: Intensity>(
        &mut self,
        stats: &SoaStats<P>,
        crit: Criterion,
        ids: &[u64],
        policy: TieBreak,
        iteration: u32,
    ) {
        const CHUNK: usize = 256;
        let Csr {
            row_ptr,
            row_len,
            col,
            row_owner,
            row_best,
            ..
        } = self;
        let (row_ptr, row_len, col, row_owner) = (&*row_ptr, &*row_len, &*col, &*row_owner);
        row_best
            .par_chunks_mut(CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * CHUNK;
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let r = base + j;
                    let s = row_ptr[r] as usize;
                    let e = s + row_len[r] as usize;
                    let mut b = KEY_SENTINEL;
                    if s < e {
                        let o = row_owner[r] as usize;
                        let chooser = ids[o];
                        for &c in &col[s..e] {
                            let w = stats.weight(crit, o, c as usize);
                            let (k0, k1) = tie_key(policy, iteration, chooser, ids[c as usize]);
                            let k = (w, k0, k1, c);
                            if k < b {
                                b = k;
                            }
                        }
                    }
                    *slot = b;
                }
            });
    }

    /// The fused end-of-step sweep: in **one** pass over the live slots it
    ///
    /// 1. redirects row owners and candidate slots through the one-level
    ///    `redirect` (exact, because an iteration's mutual pairs form a
    ///    matching: a representative never loses in the iteration it wins);
    /// 2. drops self-loops, per-owner duplicate neighbours, and slots whose
    ///    merged endpoints no longer satisfy the criterion (`filter` mode,
    ///    after a productive iteration);
    /// 3. squeezes the surviving slots to the front of `col` and the
    ///    surviving rows to the front of the row list (both write cursors
    ///    never pass their read cursors, so the moves are in place, and
    ///    afterwards no dead slot or empty row exists to be rescanned —
    ///    compaction happens *every* productive pass for free, because the
    ///    pass touches every live slot anyway);
    /// 4. folds every survivor into `best` under the *next* iteration's
    ///    tie policy and derives `choice` for exactly the owners that have
    ///    one, so the next choice pass is a no-op. Only the `best`/`choice`
    ///    entries the previous pass wrote are reset (`touched`), keeping
    ///    the pass free of O(vertices) refills.
    ///
    /// When `filter` is false (a stall iteration: no merge happened, no
    /// statistic changed) steps 1–3 are vacuous and the pass degenerates to
    /// the pure argmin rescan that re-randomised tie keys require.
    ///
    /// Dropping a duplicate slot is free of semantic effect: the argmin is
    /// invariant under duplicates, the criterion filter would kill every
    /// copy together, and at least one copy per direction always survives.
    ///
    /// Returns `(ops, reclaimed)`: live slots touched in filter mode (the
    /// relabel-work counter) and dead slots squeezed out.
    #[allow(clippy::too_many_arguments)]
    fn fused_pass<P: Intensity>(
        &mut self,
        stats: &SoaStats<P>,
        hot: &[HotVertex],
        crit: Criterion,
        t: u32,
        redirect: &[u32],
        filter: bool,
        policy: TieBreak,
        iteration: u32,
        best: &mut [CandKey],
        choice: &mut [u32],
    ) -> (u64, usize) {
        match crit {
            Criterion::PixelRange => {
                // `range_weight_fp16` is exactly the union range in 16.16,
                // so the criterion test is a comparison of the weight the
                // ranking needs anyway against `threshold << 16` — one
                // extrema gather serves both filter and argmin.
                let cut = u64::from(t) << 16;
                self.fused_pass_impl(
                    hot,
                    redirect,
                    filter,
                    policy,
                    iteration,
                    best,
                    choice,
                    |o, c| {
                        let (a, b) = (hot[o], hot[c]);
                        range_weight_fp16(a.min.min(b.min), a.max.max(b.max))
                    },
                    |_, _, wk| wk <= cut,
                )
            }
            Criterion::MeanDifference => self.fused_pass_impl(
                hot,
                redirect,
                filter,
                policy,
                iteration,
                best,
                choice,
                |o, c| mean_weight_fp16(stats.sum[o], stats.cnt[o], stats.sum[c], stats.cnt[c]),
                // Floor division makes the 16.16 mean distance an inexact
                // proxy for the criterion; keep the exact integer predicate.
                |o, c, _| mean_satisfies(stats.sum[o], stats.cnt[o], stats.sum[c], stats.cnt[c], t),
            ),
        }
    }

    /// Criterion-monomorphised body of [`Csr::fused_pass`]: `weight(o, c)`
    /// ranks a candidate, `keeps(o, c, weight)` is the de-activation
    /// predicate (both are loop-invariant closures, so the inner loop
    /// specialises per criterion with no per-slot dispatch).
    #[allow(clippy::too_many_arguments)]
    fn fused_pass_impl<W, K>(
        &mut self,
        hot: &[HotVertex],
        redirect: &[u32],
        filter: bool,
        policy: TieBreak,
        iteration: u32,
        best: &mut [CandKey],
        choice: &mut [u32],
        weight: W,
        keeps: K,
    ) -> (u64, usize)
    where
        W: Fn(usize, usize) -> u64,
        K: Fn(usize, usize, u64) -> bool,
    {
        let n = self.row_owner.len();
        let mut ops = 0u64;
        // Token `base + o` is unique to (pass, owner `o`), so every row
        // owned by `o` shares one token and `stamp[c] == token` dedups the
        // owner's duplicate neighbours *across rows* — the same
        // per-iteration dedup schedule as the reference backend's rebuild,
        // at O(live) cost.
        let base = self.next_token;
        self.next_token += self.stamp.len() as u64;
        // Reset exactly the entries the previous pass wrote.
        if self.touched_valid {
            for &o in &self.touched {
                best[o as usize] = KEY_SENTINEL;
                choice[o as usize] = u32::MAX;
            }
        } else {
            best.fill(KEY_SENTINEL);
            choice.fill(u32::MAX);
            self.touched_valid = true;
        }
        self.touched.clear();
        let mut live = 0usize;
        let mut reclaimed = 0usize;
        for r in 0..n {
            let s = self.row_ptr[r] as usize;
            let len = self.row_len[r] as usize;
            if len == 0 {
                continue;
            }
            let o = if filter {
                let o = redirect[self.row_owner[r] as usize];
                self.row_owner[r] = o;
                o
            } else {
                self.row_owner[r]
            } as usize;
            let token = base + o as u64;
            let chooser = hot[o].id;
            let mut b = best[o];
            if b == KEY_SENTINEL {
                self.touched.push(o as u32);
            }
            let mut w = s; // in-row write cursor; never passes the read one
            for j in s..s + len {
                let c = self.col[j];
                let (c2, wk) = if filter {
                    ops += 1;
                    let c2 = redirect[c as usize] as usize;
                    if c2 == o || self.stamp[c2] == token {
                        continue;
                    }
                    let wk = weight(o, c2);
                    if !keeps(o, c2, wk) {
                        continue;
                    }
                    self.stamp[c2] = token;
                    (c2 as u32, wk)
                } else {
                    (c, weight(o, c as usize))
                };
                self.col[w] = c2;
                w += 1;
                let (k0, k1) = tie_key(policy, iteration, chooser, hot[c2 as usize].id);
                let k = (wk, k0, k1, c2);
                if k < b {
                    b = k;
                }
            }
            let kept = w - s;
            reclaimed += len - kept;
            live += kept;
            self.row_len[r] = kept as u32;
            best[o] = b;
        }
        self.live = live;
        // Next iteration's choices, for exactly the owners that have one.
        for &o in &self.touched {
            choice[o as usize] = best[o as usize].3;
        }
        self.precomputed = true;
        self.precomputed_for = (policy, iteration);
        (ops, reclaimed)
    }

    /// The incremental end-of-step pass for deterministic tie policies
    /// ([`TieBreak::SmallestId`] / [`TieBreak::LargestId`]): instead of
    /// rescanning every live slot, it rescans only the *dirty
    /// neighbourhood* of this iteration's merges.
    ///
    /// Validity: deterministic tie keys do not depend on the iteration, a
    /// region's statistics change only when it merges, and a slot's
    /// endpoints change only when one of them merges. Hence a row whose
    /// owner did not merge and whose slots name no merged region has an
    /// unchanged candidate list, unchanged weights, and unchanged ranking
    /// — its `best`/`choice` from the previous iteration stay exact. The
    /// dirty set is therefore `winners ∪ losers ∪ their neighbours`; the
    /// owner→rows lists enumerate it in O(dirty slots), and every dirty
    /// owner's rows are redirected / filtered / deduped / squeezed and
    /// re-ranked exactly as the full pass would.
    ///
    /// A new mutual pair must involve a vertex whose choice changed (two
    /// unchanged mutual choices would have merged an iteration earlier),
    /// so handing `dirty` to the next [`Merger::apply_mutual_merges`] as
    /// its candidate list keeps the apply step O(dirty) too. (Random
    /// tie-breaking re-randomises every ranking each iteration, which
    /// forces the full rescan — the same global work the reference
    /// backend's choice pass does — so it stays on [`Csr::fused_pass`].)
    #[allow(clippy::too_many_arguments)]
    fn fast_pass<P: Intensity>(
        &mut self,
        stats: &SoaStats<P>,
        hot: &[HotVertex],
        crit: Criterion,
        t: u32,
        redirect: &[u32],
        losers: &[u32],
        policy: TieBreak,
        iteration: u32,
        best: &mut [CandKey],
        choice: &mut [u32],
    ) -> (u64, usize) {
        match crit {
            Criterion::PixelRange => {
                let cut = u64::from(t) << 16;
                self.fast_pass_impl(
                    hot,
                    redirect,
                    losers,
                    policy,
                    iteration,
                    best,
                    choice,
                    |o, c| {
                        let (a, b) = (hot[o], hot[c]);
                        range_weight_fp16(a.min.min(b.min), a.max.max(b.max))
                    },
                    |_, _, wk| wk <= cut,
                )
            }
            Criterion::MeanDifference => self.fast_pass_impl(
                hot,
                redirect,
                losers,
                policy,
                iteration,
                best,
                choice,
                |o, c| mean_weight_fp16(stats.sum[o], stats.cnt[o], stats.sum[c], stats.cnt[c]),
                |o, c, _| mean_satisfies(stats.sum[o], stats.cnt[o], stats.sum[c], stats.cnt[c], t),
            ),
        }
    }

    /// Criterion-monomorphised body of [`Csr::fast_pass`].
    #[allow(clippy::too_many_arguments)]
    fn fast_pass_impl<W, K>(
        &mut self,
        hot: &[HotVertex],
        redirect: &[u32],
        losers: &[u32],
        policy: TieBreak,
        iteration: u32,
        best: &mut [CandKey],
        choice: &mut [u32],
        weight: W,
        keeps: K,
    ) -> (u64, usize)
    where
        W: Fn(usize, usize) -> u64,
        K: Fn(usize, usize, u64) -> bool,
    {
        // `iteration` is the next step's index — strictly increasing, so
        // `iteration + 1` is a unique epoch (and clears the zero init).
        let epoch = iteration + 1;
        self.dirty.clear();
        let mark = |dirty: &mut Vec<u32>, epochs: &mut [u32], x: u32| {
            if epochs[x as usize] != epoch {
                epochs[x as usize] = epoch;
                dirty.push(x);
            }
        };
        // Seed with this iteration's winners and losers, then mark their
        // neighbours by walking the winners' row lists (loser rows were
        // spliced in before this pass, so one walk covers the pair).
        for &v in losers {
            mark(&mut self.dirty, &mut self.dirty_epoch, v);
            mark(&mut self.dirty, &mut self.dirty_epoch, redirect[v as usize]);
        }
        let seeds = self.dirty.len();
        for i in 0..seeds {
            let d = self.dirty[i] as usize;
            let mut r = self.row_head[d];
            while r != NO_ROW {
                let ri = r as usize;
                let s = self.row_ptr[ri] as usize;
                for j in s..s + self.row_len[ri] as usize {
                    mark(
                        &mut self.dirty,
                        &mut self.dirty_epoch,
                        redirect[self.col[j] as usize],
                    );
                }
                r = self.row_next[ri];
            }
        }
        // Recompute the dirty owners from scratch; everyone else keeps
        // last iteration's `best`/`choice` (still exact — see above).
        for &d in &self.dirty {
            best[d as usize] = KEY_SENTINEL;
            choice[d as usize] = u32::MAX;
        }
        let base = self.next_token;
        self.next_token += self.stamp.len() as u64;
        let mut ops = 0u64;
        let mut reclaimed = 0usize;
        for i in 0..self.dirty.len() {
            let d = self.dirty[i] as usize;
            let token = base + d as u64;
            let chooser = hot[d].id;
            let mut b = KEY_SENTINEL;
            let mut r = self.row_head[d];
            let mut prev = NO_ROW;
            while r != NO_ROW {
                let ri = r as usize;
                let next = self.row_next[ri];
                let s = self.row_ptr[ri] as usize;
                let len = self.row_len[ri] as usize;
                self.row_owner[ri] = d as u32;
                let mut w = s;
                for j in s..s + len {
                    ops += 1;
                    let c2 = redirect[self.col[j] as usize] as usize;
                    if c2 == d || self.stamp[c2] == token {
                        continue;
                    }
                    let wk = weight(d, c2);
                    if !keeps(d, c2, wk) {
                        continue;
                    }
                    self.stamp[c2] = token;
                    self.col[w] = c2 as u32;
                    w += 1;
                    let (k0, k1) = tie_key(policy, iteration, chooser, hot[c2].id);
                    let k = (wk, k0, k1, c2 as u32);
                    if k < b {
                        b = k;
                    }
                }
                let kept = w - s;
                reclaimed += len - kept;
                self.live -= len - kept;
                self.row_len[ri] = kept as u32;
                if kept == 0 {
                    // Unlink the emptied row so no future walk revisits it.
                    if prev == NO_ROW {
                        self.row_head[d] = next;
                    } else {
                        self.row_next[prev as usize] = next;
                    }
                    if next == NO_ROW {
                        self.row_tail[d] = prev;
                    }
                } else {
                    prev = r;
                }
                r = next;
            }
            best[d] = b;
            choice[d] = b.3; // `u32::MAX` when no candidate survived
        }
        // Hand the dirty list to the next apply step as its candidates.
        std::mem::swap(&mut self.touched, &mut self.dirty);
        self.precomputed = true;
        self.precomputed_for = (policy, iteration);
        (ops, reclaimed)
    }
}

/// The backend-specific adjacency state.
///
/// Exactly one `BackendState` exists per [`Merger`], so the size gap
/// between the thin reference variant and the many-vector CSR variant
/// costs nothing — boxing would only add a pointer chase to every pass.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum BackendState {
    /// Canonical sorted-unique edge list, rebuilt every iteration.
    Reference { edges: Vec<(u32, u32)> },
    /// Incremental CSR, squeezed in place by the fused end-of-step pass.
    Csr(Csr),
}

/// The stepping merge engine over a RAG.
///
/// Construct with [`Merger::new`], then either [`Merger::run`] to
/// completion or [`Merger::step`] repeatedly (the paper's Figure 2
/// walkthrough is validated this way).
#[derive(Debug)]
pub struct Merger<P: Intensity> {
    threshold: u32,
    criterion: Criterion,
    tie: TieBreak,
    max_stall: u32,
    parallel: bool,

    /// Canonical region ID per dense vertex (order-isomorphic to the dense
    /// index; used for tie-break hashing only).
    ids: Vec<u64>,
    /// Region statistics in SoA layout, current at representative indices.
    stats: SoaStats<P>,
    /// Packed (min, max, id) per vertex for the CSR kernels; the extrema
    /// are folded alongside `stats` on every merge.
    hot: Vec<HotVertex>,
    /// Backend adjacency state.
    backend: BackendState,
    /// Full merge history (original vertex → representative).
    history: DisjointSets,
    /// One-iteration redirect table (identity outside merged losers).
    redirect: Vec<u32>,
    /// Losers of the current iteration, pending redirect reset.
    pending_losers: Vec<u32>,

    /// Persistent scratch: per-representative best candidate key.
    best: Vec<CandKey>,
    /// Persistent scratch: per-representative chosen neighbour.
    choice: Vec<u32>,
    /// Persistent scratch: criterion-filtered edge list used to (re)build
    /// the backend (kept so [`Merger::reset_from`] allocates nothing).
    edges_scratch: Vec<(u32, u32)>,

    iterations: u32,
    merges_per_iteration: Vec<u32>,
    num_regions: usize,
    stalls: u32,
    trace: Option<MergeTrace>,

    /// Total endpoint relabels / slot moves performed (the counter the CI
    /// perf-smoke guard compares across backends).
    relabel_ops: u64,
    /// Maximum of [`Merger::active_edges`] observed over the run.
    peak_active_edges: u64,
    /// Number of CSR compaction passes performed.
    compactions: u64,
}

impl<P: Intensity> Merger<P> {
    /// Creates the engine. `ids[v]` is the canonical ID of dense vertex
    /// `v`; IDs must be strictly increasing (raster order of the regions).
    ///
    /// Edges of `rag` that do not satisfy the criterion are de-activated
    /// immediately (the paper's step 2). The backend is chosen by
    /// [`Config::merge_backend`].
    pub fn new(rag: Rag<'_, P>, ids: Vec<u64>, config: &Config, parallel: bool) -> Self {
        let mut m = Self::hollow(config);
        m.reset_from(&rag.stats, &rag.edges, &ids, config, parallel);
        m
    }

    /// A merger with every buffer empty; must be initialised by
    /// [`Merger::reset_from`] before stepping.
    pub(crate) fn hollow(config: &Config) -> Self {
        Self {
            threshold: config.threshold,
            criterion: config.criterion,
            tie: config.tie_break,
            max_stall: config.max_stall,
            parallel: false,
            ids: Vec::new(),
            stats: SoaStats::empty(),
            hot: Vec::new(),
            backend: match config.merge_backend {
                MergeBackend::Csr => BackendState::Csr(Csr::empty()),
                MergeBackend::Reference => BackendState::Reference { edges: Vec::new() },
            },
            history: DisjointSets::new(0),
            redirect: Vec::new(),
            pending_losers: Vec::new(),
            best: Vec::new(),
            choice: Vec::new(),
            edges_scratch: Vec::new(),
            iterations: 0,
            merges_per_iteration: Vec::new(),
            num_regions: 0,
            stalls: 0,
            trace: None,
            relabel_ops: 0,
            peak_active_edges: 0,
            compactions: 0,
        }
    }

    /// Re-initialises the engine **in place** for a new graph, reusing
    /// every internal buffer's capacity: in steady state (same-shape
    /// graphs through one merger) this performs **zero** heap allocations.
    ///
    /// Semantically equivalent to `*self = Merger::new(rag, ids, config,
    /// parallel)` — edges that do not satisfy the criterion are
    /// de-activated immediately (the paper's step 2), the backend is
    /// rebuilt per [`Config::merge_backend`] (switching variants
    /// reallocates once), and any enabled trace is dropped.
    pub fn reset_from(
        &mut self,
        stats: &[RegionStats<P>],
        edges: &[(u32, u32)],
        ids: &[u64],
        config: &Config,
        parallel: bool,
    ) {
        assert_eq!(ids.len(), stats.len(), "ids length mismatch");
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must increase");
        let n = stats.len();
        let t = config.threshold;
        let crit = config.criterion;
        self.threshold = t;
        self.criterion = crit;
        self.tie = config.tie_break;
        self.max_stall = config.max_stall;
        self.parallel = parallel;
        self.ids.clear();
        self.ids.extend_from_slice(ids);
        self.stats.refill(stats);
        {
            // Criterion filter (the paper's step 2), written into the
            // persistent scratch so backend (re)builds read a slice.
            let Self {
                stats,
                edges_scratch,
                ..
            } = self;
            edges_scratch.clear();
            edges_scratch.extend(
                edges
                    .iter()
                    .copied()
                    .filter(|&(u, v)| stats.satisfies(crit, t, u as usize, v as usize)),
            );
        }
        let initial_edges = self.edges_scratch.len();
        {
            let Self {
                stats, ids, hot, ..
            } = self;
            hot.clear();
            hot.extend((0..n).map(|i| HotVertex {
                min: stats.min[i].to_u32(),
                max: stats.max[i].to_u32(),
                id: ids[i],
            }));
        }
        match (&mut self.backend, config.merge_backend) {
            (BackendState::Csr(csr), MergeBackend::Csr) => csr.rebuild(n, &self.edges_scratch),
            (BackendState::Reference { edges }, MergeBackend::Reference) => {
                edges.clear();
                edges.extend_from_slice(&self.edges_scratch);
            }
            // Backend switch: a one-off reallocation is acceptable.
            (slot, MergeBackend::Csr) => {
                *slot = BackendState::Csr(Csr::new(n, &self.edges_scratch));
            }
            (slot, MergeBackend::Reference) => {
                *slot = BackendState::Reference {
                    edges: self.edges_scratch.clone(),
                };
            }
        }
        self.history.reset(n);
        self.redirect.clear();
        self.redirect.extend(0..n as u32);
        self.pending_losers.clear();
        self.best.clear();
        self.best.resize(n, KEY_SENTINEL);
        self.choice.clear();
        self.choice.resize(n, u32::MAX);
        self.iterations = 0;
        self.merges_per_iteration.clear();
        self.num_regions = n;
        self.stalls = 0;
        self.trace = None;
        self.relabel_ops = 0;
        self.peak_active_edges = initial_edges as u64;
        self.compactions = 0;
    }

    /// Starts recording a [`MergeTrace`] (call before the first step).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(MergeTrace::new(self.ids.len()));
        }
    }

    /// Takes the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<MergeTrace> {
        self.trace.take()
    }

    /// `true` when no active edges remain.
    pub fn is_done(&self) -> bool {
        match &self.backend {
            BackendState::Reference { edges } => edges.is_empty(),
            BackendState::Csr(csr) => csr.live == 0,
        }
    }

    /// Active undirected edge count (for the CSR backend: half the live
    /// directed slot count; the fused pass dedups per owner every
    /// productive iteration, mirroring the reference backend's rebuild).
    pub fn active_edges(&self) -> usize {
        match &self.backend {
            BackendState::Reference { edges } => edges.len(),
            BackendState::Csr(csr) => csr.live / 2,
        }
    }

    /// Which backend this engine runs.
    pub fn backend(&self) -> MergeBackend {
        match self.backend {
            BackendState::Reference { .. } => MergeBackend::Reference,
            BackendState::Csr(_) => MergeBackend::Csr,
        }
    }

    /// Total edge-relabel data movement performed so far — the counter the
    /// CI perf-smoke guard compares across backends. For the CSR backend:
    /// one op per live slot touched by the fused relabel/filter/squeeze
    /// pass of each productive iteration. For the reference backend: two
    /// endpoint maps per edge plus the per-iteration canonicalising sort
    /// (`E·⌈log₂E⌉` element moves) and dedup scan it performs to rebuild
    /// the edge list.
    pub fn relabel_work(&self) -> u64 {
        self.relabel_ops
    }

    /// Maximum active-edge count observed over the run.
    pub fn peak_active_edges(&self) -> u64 {
        self.peak_active_edges
    }

    /// CSR passes that reclaimed dead slots (0 under the reference
    /// backend). With the fused squeeze this counts the productive
    /// iterations whose slot array actually shrank.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Regions currently alive.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Merges performed in each iteration so far.
    pub fn merges_per_iteration(&self) -> &[u32] {
        &self.merges_per_iteration
    }

    /// Statistics of the region represented by dense vertex `rep`.
    pub fn stats_of(&self, rep: u32) -> RegionStats<P> {
        self.stats.get(rep as usize)
    }

    /// Representative (dense index) of each original vertex, resolved with
    /// one batched pointer-jumping pass over the whole history forest
    /// instead of per-vertex `find` calls.
    pub fn labels_by_vertex(&self) -> Vec<u32> {
        if self.parallel {
            self.history.resolve_all_par()
        } else {
            self.history.resolve_all()
        }
    }

    /// [`Merger::labels_by_vertex`] into a caller-owned buffer (cleared
    /// first). Always uses the sequential batched resolve — its output is
    /// bit-identical to the parallel variant (see `rg_dsu` tests) — and
    /// performs no allocation once `out` has warmed up.
    pub fn labels_by_vertex_into(&self, out: &mut Vec<u32>) {
        self.history.resolve_all_into(out);
    }

    /// Executes one merge iteration; no-op when already done.
    pub fn step(&mut self) -> StepReport {
        self.step_traced(&mut NullTelemetry)
    }

    /// Like [`Merger::step`], bracketing the three phases of the iteration
    /// — candidate selection, mutual-merge apply, end-of-step
    /// relabel/filter/squeeze — in [`SpanKind::Choice`] /
    /// [`SpanKind::Apply`] / [`SpanKind::Compact`] spans on `tel`. On a
    /// disabled sink (the default [`NullTelemetry`] path through
    /// [`Merger::step`]) the guards emit nothing.
    ///
    /// The caller is expected to hold the enclosing
    /// [`SpanKind::MergeIteration`] span open around this call (see
    /// `engine::merge_from_split_with`).
    pub fn step_traced(&mut self, tel: &mut dyn Telemetry) -> StepReport {
        if self.is_done() {
            return StepReport {
                merges: 0,
                used_fallback: false,
                active_edges: 0,
                compacted: false,
            };
        }
        let used_fallback =
            matches!(self.tie, TieBreak::Random { .. }) && self.stalls >= self.max_stall;
        let policy = if used_fallback {
            TieBreak::SmallestId
        } else {
            self.tie
        };

        {
            let _span = SpanGuard::enter(&mut *tel, SpanKind::Choice);
            self.compute_choices(policy);
        }
        let merges = {
            let _span = SpanGuard::enter(&mut *tel, SpanKind::Apply);
            let mut choice = std::mem::take(&mut self.choice);
            let merges = self.apply_mutual_merges(&mut choice);
            self.choice = choice;
            merges
        };
        // Advance the iteration/stall counters *before* the end-of-step
        // pass: the CSR backend folds the next iteration's choice minima in
        // the same sweep, and needs the next step's policy and index.
        self.iterations += 1;
        self.merges_per_iteration.push(merges);
        if merges == 0 {
            self.stalls += 1;
        } else {
            self.stalls = 0;
        }
        let compacted = {
            let _span = SpanGuard::enter(&mut *tel, SpanKind::Compact);
            self.end_of_step(merges)
        };
        let active_edges = self.active_edges() as u64;
        self.peak_active_edges = self.peak_active_edges.max(active_edges);
        StepReport {
            merges,
            used_fallback,
            active_edges,
            compacted,
        }
    }

    /// Runs to completion.
    pub fn run(&mut self) -> MergeSummary {
        while !self.is_done() {
            self.step();
        }
        MergeSummary {
            iterations: self.iterations,
            merges_per_iteration: self.merges_per_iteration.clone(),
            num_regions: self.num_regions,
        }
    }

    /// Fills `self.choice`: for every vertex incident to an active edge,
    /// its chosen neighbour (`u32::MAX` = no choice). The choice minimises
    /// the [`CandKey`] `(weight, tie_key, neighbour)`.
    fn compute_choices(&mut self, policy: TieBreak) {
        let iteration = self.iterations;
        let crit = self.criterion;
        let Self {
            parallel,
            ids,
            stats,
            backend,
            best,
            choice,
            ..
        } = self;
        match backend {
            BackendState::Reference { edges } => {
                let cand = |chooser: u32, nb: u32| -> CandKey {
                    let w = stats.weight(crit, chooser as usize, nb as usize);
                    let (k0, k1) =
                        tie_key(policy, iteration, ids[chooser as usize], ids[nb as usize]);
                    (w, k0, k1, nb)
                };
                if *parallel && edges.len() >= PAR_EDGES {
                    // CM-style: build the directed candidate list, sort by
                    // (vertex, rank), take the head of each segment.
                    choice.fill(u32::MAX);
                    let mut directed: Vec<(u32, CandKey)> = edges
                        .par_iter()
                        .flat_map_iter(|&(u, v)| [(u, cand(u, v)), (v, cand(v, u))].into_iter())
                        .collect();
                    directed.par_sort_unstable();
                    let mut prev = u32::MAX;
                    for (vtx, key) in directed {
                        if vtx != prev {
                            choice[vtx as usize] = key.3;
                            prev = vtx;
                        }
                    }
                    return;
                }
                best.fill(KEY_SENTINEL);
                for &(u, v) in edges.iter() {
                    let ku = cand(u, v);
                    if ku < best[u as usize] {
                        best[u as usize] = ku;
                    }
                    let kv = cand(v, u);
                    if kv < best[v as usize] {
                        best[v as usize] = kv;
                    }
                }
            }
            BackendState::Csr(csr) => {
                if csr.precomputed {
                    // `best` *and* `choice` were produced by the previous
                    // step's fused pass under exactly this (policy,
                    // iteration): the steady-state choice pass is a no-op.
                    debug_assert_eq!(
                        csr.precomputed_for,
                        (policy, iteration),
                        "stale precomputed choice minima"
                    );
                    return;
                } else if *parallel && csr.live >= 2 * PAR_EDGES {
                    best.fill(KEY_SENTINEL);
                    csr.row_minima_par(stats, crit, ids, policy, iteration);
                    for (r, &k) in csr.row_best.iter().enumerate() {
                        if k == KEY_SENTINEL {
                            continue;
                        }
                        let o = csr.row_owner[r] as usize;
                        if k < best[o] {
                            best[o] = k;
                        }
                    }
                } else {
                    // Segmented-min sweep: one pass over the slot array,
                    // folding each row's candidates into its owner's best.
                    best.fill(KEY_SENTINEL);
                    for r in 0..csr.row_owner.len() {
                        let s = csr.row_ptr[r] as usize;
                        let e = s + csr.row_len[r] as usize;
                        if s == e {
                            continue;
                        }
                        let o = csr.row_owner[r] as usize;
                        let chooser = ids[o];
                        let mut b = best[o];
                        for &c in &csr.col[s..e] {
                            let w = stats.weight(crit, o, c as usize);
                            let (k0, k1) = tie_key(policy, iteration, chooser, ids[c as usize]);
                            let k = (w, k0, k1, c);
                            if k < b {
                                b = k;
                            }
                        }
                        best[o] = b;
                    }
                }
            }
        }
        for (c, b) in choice.iter_mut().zip(best.iter()) {
            *c = b.3;
        }
    }

    /// Merges every mutual pair; returns the number of merges.
    ///
    /// In the CSR steady state only the fused pass's `touched` owners can
    /// hold a choice (everyone else is `u32::MAX`), so the scan visits
    /// exactly those vertices — no O(vertices) sweep. The full scan
    /// remains for the reference backend, the first iteration, and when
    /// tracing (trace events are emitted in ascending-winner order, which
    /// the `touched` list does not guarantee; the merges themselves are a
    /// matching, so application order is otherwise irrelevant).
    fn apply_mutual_merges(&mut self, choice: &mut [u32]) -> u32 {
        let touched = match &mut self.backend {
            BackendState::Csr(csr) if csr.touched_valid && self.trace.is_none() => {
                Some(std::mem::take(&mut csr.touched))
            }
            _ => None,
        };
        let mut merges = 0u32;
        match &touched {
            Some(list) => {
                for &u in list {
                    merges += u32::from(self.try_merge(u, choice));
                }
            }
            None => {
                for u in 0..choice.len() as u32 {
                    merges += u32::from(self.try_merge(u, choice));
                }
            }
        }
        if let (Some(list), BackendState::Csr(csr)) = (touched, &mut self.backend) {
            csr.touched = list;
        }
        merges
    }

    /// Merges `x` with its choice if the choice is mutual; disarms
    /// `choice[winner]` afterwards so the pair cannot re-apply when the
    /// scan (or a duplicate `touched` entry) reaches the other endpoint.
    ///
    /// The check is bidirectional — either endpoint of a mutual pair
    /// triggers the merge — because the incremental fast pass only
    /// guarantees that at least one endpoint of any *new* mutual pair is
    /// in the dirty list, not which one. In full-scan (ascending) order
    /// the smaller endpoint is always reached first, so trace-event order
    /// is unchanged.
    #[inline]
    fn try_merge(&mut self, x: u32, choice: &mut [u32]) -> bool {
        let y = choice[x as usize];
        if y == u32::MAX || choice[y as usize] != x {
            return false;
        }
        let (u, v) = (x.min(y), x.max(y));
        if let Some(trace) = &mut self.trace {
            trace.events.push(MergeEvent {
                iteration: self.iterations,
                winner: u,
                loser: v,
                weight_fp16: self.stats.weight(self.criterion, u as usize, v as usize),
            });
        }
        // Representative = smaller dense index = smaller ID.
        self.stats.fold(u as usize, v as usize);
        let l = self.hot[v as usize];
        let hw = &mut self.hot[u as usize];
        hw.min = hw.min.min(l.min);
        hw.max = hw.max.max(l.max);
        self.redirect[v as usize] = u;
        self.pending_losers.push(v);
        self.history.union_min_rep(u, v);
        self.num_regions -= 1;
        choice[u as usize] = u32::MAX;
        true
    }

    /// Backend-specific step 4 (plus the CSR backend's choice prefetch).
    ///
    /// Reference: relabel endpoints through this iteration's redirects,
    /// drop self-loops and criterion-violating edges, re-sort and dedup —
    /// skipped on stall iterations (`merges == 0`), which change no
    /// statistic and no representative, so every edge survives unchanged.
    ///
    /// CSR: one [`Csr::fused_pass`] that performs the same relabel /
    /// filter / squeeze *and* folds the next iteration's choice minima
    /// into `best` under the policy the next step's prologue will select
    /// (the stall counter is already updated and `self.iterations` is the
    /// next step's index). On stall iterations the pass runs in
    /// choice-only mode: the re-randomised tie keys still demand a rescan,
    /// but no filtering work is counted — the reference backend does that
    /// same rescan inside its own choice pass.
    ///
    /// Returns `true` if the CSR backend reclaimed dead slots.
    fn end_of_step(&mut self, merges: u32) -> bool {
        let crit = self.criterion;
        let t = self.threshold;
        let mut compacted = false;
        let Self {
            backend,
            stats,
            hot,
            redirect,
            best,
            choice,
            tie,
            max_stall,
            stalls,
            iterations,
            parallel,
            pending_losers,
            relabel_ops,
            compactions,
            ..
        } = self;
        match backend {
            BackendState::Reference { edges } => {
                if merges > 0 {
                    let stats = &*stats;
                    let redirect = &*redirect;
                    let map = |&(u, v): &(u32, u32)| -> Option<(u32, u32)> {
                        let (mut a, mut b) = (redirect[u as usize], redirect[v as usize]);
                        if a == b {
                            return None;
                        }
                        if a > b {
                            std::mem::swap(&mut a, &mut b);
                        }
                        if stats.satisfies(crit, t, a as usize, b as usize) {
                            Some((a, b))
                        } else {
                            None
                        }
                    };
                    // Two endpoint maps per edge …
                    *relabel_ops += 2 * edges.len() as u64;
                    let mut next: Vec<(u32, u32)> = if *parallel && edges.len() >= PAR_EDGES {
                        let mut v: Vec<_> = edges.par_iter().filter_map(map).collect();
                        v.par_sort_unstable();
                        v
                    } else {
                        let mut v: Vec<_> = edges.iter().filter_map(map).collect();
                        v.sort_unstable();
                        v
                    };
                    // … plus the canonicalising sort (⌈log₂ E⌉ element
                    // moves per edge) and the dedup scan (one more) — the
                    // O(E log E) term the CSR backend exists to eliminate.
                    let e = next.len() as u64;
                    if e > 0 {
                        *relabel_ops += e * u64::from(e.ilog2() + 1) + e;
                    }
                    next.dedup();
                    *edges = next;
                }
            }
            BackendState::Csr(csr) => {
                let next_fallback =
                    matches!(*tie, TieBreak::Random { .. }) && *stalls >= *max_stall;
                let next_policy = if next_fallback {
                    TieBreak::SmallestId
                } else {
                    *tie
                };
                // Deterministic policies have iteration-independent tie
                // keys, so only the merged pairs' neighbourhoods can change
                // their choice: splice each loser's rows onto its winner
                // and run the incremental pass over the dirty set. Random
                // re-randomises every key each iteration — the full sweep
                // is mandatory (the reference backend pays the same sweep
                // inside its choice pass).
                let deterministic = !matches!(*tie, TieBreak::Random { .. });
                if deterministic {
                    for &v in pending_losers.iter() {
                        csr.splice(redirect[v as usize] as usize, v as usize);
                    }
                }
                let (ops, reclaimed) = if deterministic && csr.touched_valid {
                    csr.fast_pass(
                        stats,
                        hot,
                        crit,
                        t,
                        redirect,
                        pending_losers,
                        next_policy,
                        *iterations,
                        best,
                        choice,
                    )
                } else {
                    csr.fused_pass(
                        stats,
                        hot,
                        crit,
                        t,
                        redirect,
                        merges > 0,
                        next_policy,
                        *iterations,
                        best,
                        choice,
                    )
                };
                if merges > 0 {
                    *relabel_ops += ops;
                    if reclaimed > 0 {
                        *compactions += 1;
                        compacted = true;
                    }
                }
            }
        }
        // Reset redirects for the merged losers.
        for l in pending_losers.drain(..) {
            redirect[l as usize] = l;
        }
        compacted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Connectivity;
    use crate::split::split;
    use rg_imaging::synth;

    fn make_merger_on(t: u32, tie: TieBreak, parallel: bool, backend: MergeBackend) -> Merger<u8> {
        let img = synth::figure1_image();
        let cfg = Config::with_threshold(t)
            .tie_break(tie)
            .merge_backend(backend);
        let s = split(&img, &cfg);
        let rag = Rag::from_split(&s, Connectivity::Four);
        let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(4) as u64).collect();
        Merger::new(rag, ids, &cfg, parallel)
    }

    fn make_merger(t: u32, tie: TieBreak, parallel: bool) -> Merger<u8> {
        make_merger_on(t, tie, parallel, MergeBackend::Csr)
    }

    fn figure2_walkthrough(mut m: Merger<u8>) {
        assert_eq!(m.num_regions(), 7);

        let r1 = m.step();
        assert_eq!(r1.merges, 2);
        assert_eq!(m.num_regions(), 5);
        let labels = m.labels_by_vertex();
        assert_eq!(labels[5], 0); // B merged into A
        assert_eq!(labels[4], 2); // pixel 4 merged into pixel 3's region

        let r2 = m.step();
        assert_eq!(r2.merges, 1);
        assert_eq!(m.num_regions(), 4);
        assert_eq!(m.labels_by_vertex()[6], 3); // C merged into region 3

        let r3 = m.step();
        assert_eq!(r3.merges, 2);
        assert_eq!(m.num_regions(), 2);
        assert!(m.is_done());
        assert_eq!(r3.active_edges, 0);
        assert_eq!(m.iterations(), 3);

        let labels = m.labels_by_vertex();
        assert_eq!(labels, vec![0, 1, 1, 0, 1, 0, 0]);
        // Final stats: region 0 = {6..8} ∪ {5} ∪ {7,8} ∪ {5,6}, range 3.
        assert_eq!(m.stats_of(0).min, 5);
        assert_eq!(m.stats_of(0).max, 8);
        assert_eq!(m.stats_of(1).min, 1);
        assert_eq!(m.stats_of(1).max, 4);
    }

    #[test]
    fn figure2_walkthrough_smallest_id() {
        // Hand-verified against the paper's Figure 2 (see DESIGN.md):
        // start: 7 regions; iter 1 merges {0,5} and {2,4}; iter 2 merges
        // {3,6}; iter 3 merges {0,3} and {1,2}; done with 2 regions.
        figure2_walkthrough(make_merger(3, TieBreak::SmallestId, false));
    }

    #[test]
    fn figure2_walkthrough_reference_backend() {
        figure2_walkthrough(make_merger_on(
            3,
            TieBreak::SmallestId,
            false,
            MergeBackend::Reference,
        ));
    }

    #[test]
    fn parallel_step_identical() {
        for backend in [MergeBackend::Csr, MergeBackend::Reference] {
            for tie in [
                TieBreak::SmallestId,
                TieBreak::LargestId,
                TieBreak::Random { seed: 7 },
            ] {
                let mut a = make_merger_on(3, tie, false, backend);
                let mut b = make_merger_on(3, tie, true, backend);
                let sa = a.run();
                let sb = b.run();
                assert_eq!(sa, sb, "{backend:?} {tie:?}");
                assert_eq!(a.labels_by_vertex(), b.labels_by_vertex());
            }
        }
    }

    #[test]
    fn csr_matches_reference_on_synthetic_images() {
        for (name, img) in [
            ("circles", synth::circle_collection(48)),
            ("rects", synth::random_rects(64, 40, 11, 5)),
            ("nested", synth::nested_rects(32)),
        ] {
            for tie in [
                TieBreak::SmallestId,
                TieBreak::LargestId,
                TieBreak::Random { seed: 17 },
            ] {
                let run = |backend: MergeBackend| {
                    let cfg = Config::with_threshold(12)
                        .tie_break(tie)
                        .merge_backend(backend);
                    let s = split(&img, &cfg);
                    let rag = Rag::from_split(&s, Connectivity::Four);
                    let stride = s.width as u32;
                    let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(stride) as u64).collect();
                    let mut m = Merger::new(rag, ids, &cfg, false);
                    m.enable_trace();
                    let summary = m.run();
                    let trace = m.take_trace().unwrap();
                    (summary, trace, m.labels_by_vertex())
                };
                let csr = run(MergeBackend::Csr);
                let reference = run(MergeBackend::Reference);
                assert_eq!(csr, reference, "{name} {tie:?}");
            }
        }
    }

    #[test]
    fn compaction_triggers_and_preserves_parity() {
        // Merge-only on a uniform image: singleton squares collapse to one
        // region over many iterations, shedding edges fast enough to force
        // several compaction passes.
        let img: rg_imaging::Image<u8> = rg_imaging::Image::new(32, 32, 50);
        let run = |backend: MergeBackend| {
            let cfg = Config::with_threshold(0)
                .tie_break(TieBreak::SmallestId)
                .max_square_log2(Some(0))
                .merge_backend(backend);
            let s = split(&img, &cfg);
            let rag = Rag::from_split(&s, Connectivity::Four);
            let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(32) as u64).collect();
            let mut m = Merger::new(rag, ids, &cfg, false);
            let summary = m.run();
            (
                summary,
                m.labels_by_vertex(),
                m.compactions(),
                m.relabel_work(),
            )
        };
        let (s_csr, l_csr, compactions, work_csr) = run(MergeBackend::Csr);
        let (s_ref, l_ref, _, work_ref) = run(MergeBackend::Reference);
        assert_eq!(s_csr, s_ref);
        assert_eq!(l_csr, l_ref);
        assert!(compactions > 0, "expected at least one compaction pass");
        assert!(
            work_csr <= work_ref,
            "CSR relabel work {work_csr} exceeds reference {work_ref}"
        );
    }

    #[test]
    fn step_reports_active_edges_monotone_under_smallest_id() {
        let mut m = make_merger(3, TieBreak::SmallestId, false);
        let mut prev = m.active_edges() as u64;
        let peak0 = m.peak_active_edges();
        assert_eq!(peak0, prev);
        while !m.is_done() {
            let r = m.step();
            assert!(r.active_edges <= prev, "active edges must not grow");
            prev = r.active_edges;
        }
        assert_eq!(m.peak_active_edges(), peak0);
    }

    #[test]
    fn random_seeds_are_deterministic() {
        let run = |seed| {
            let mut m = make_merger(3, TieBreak::Random { seed }, false);
            m.run();
            m.labels_by_vertex()
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(2), run(2));
    }

    #[test]
    fn smallest_id_always_progresses() {
        // A ring of equal-intensity singleton regions: every edge has equal
        // weight, the worst case for ties. Smallest-ID must still merge at
        // least one pair per iteration.
        let img = synth::checkerboard(16, 1, 100, 100); // uniform, actually
        let cfg = Config::with_threshold(0)
            .tie_break(TieBreak::SmallestId)
            .max_square_log2(Some(0));
        let s = split(&img, &cfg);
        let rag = Rag::from_split(&s, Connectivity::Four);
        let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(16) as u64).collect();
        let mut m = Merger::new(rag, ids, &cfg, false);
        while !m.is_done() {
            let r = m.step();
            assert!(r.merges >= 1, "smallest-ID iteration with zero merges");
        }
        assert_eq!(m.num_regions(), 1);
    }

    #[test]
    fn random_ties_merge_faster_on_tie_heavy_input() {
        // Uniform image, merge-only: every edge weight is 0, so every
        // choice is a tie. Random tie-breaking should finish in fewer
        // iterations than smallest-ID (the paper's central claim).
        let img: rg_imaging::Image<u8> = rg_imaging::Image::new(32, 32, 50);
        let run = |tie| {
            let cfg = Config::with_threshold(0)
                .tie_break(tie)
                .max_square_log2(Some(0));
            let s = split(&img, &cfg);
            let rag = Rag::from_split(&s, Connectivity::Four);
            let ids: Vec<u64> = s.squares.iter().map(|sq| sq.id(32) as u64).collect();
            let mut m = Merger::new(rag, ids, &cfg, false);
            let summary = m.run();
            assert_eq!(summary.num_regions, 1);
            summary.iterations
        };
        let random = run(TieBreak::Random { seed: 42 });
        let smallest = run(TieBreak::SmallestId);
        assert!(
            random < smallest,
            "random ({random}) should beat smallest-ID ({smallest})"
        );
    }

    #[test]
    fn no_active_edges_means_zero_iterations() {
        let mut m = make_merger(0, TieBreak::SmallestId, false);
        // T = 0: which edges are active? Only pairs with identical
        // min=max. Figure-1 squares have ranges > 0, so most edges die;
        // run must terminate quickly regardless.
        let summary = m.run();
        assert_eq!(
            summary.iterations as usize,
            summary.merges_per_iteration.len()
        );
    }

    #[test]
    fn tie_priority_spreads() {
        // Sanity: the hash separates close inputs.
        let a = tie_priority(0, 0, 1, 2);
        let b = tie_priority(0, 0, 1, 3);
        let c = tie_priority(0, 1, 1, 2);
        let d = tie_priority(1, 0, 1, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn choice_key_matches_tie_key() {
        let k = choice_key(TieBreak::Random { seed: 5 }, 2, 10, 20, 7, 3);
        let (k0, k1) = tie_key(TieBreak::Random { seed: 5 }, 2, 10, 20);
        assert_eq!(k, (7, k0, k1, 3));
    }

    #[test]
    fn merge_summary_consistency() {
        let mut m = make_merger(3, TieBreak::Random { seed: 9 }, false);
        let start = m.num_regions();
        let summary = m.run();
        let merged: u32 = summary.merges_per_iteration.iter().sum();
        assert_eq!(start - merged as usize, summary.num_regions);
    }
}
