//! # rg-core
//!
//! The core of the reproduction of *"Solving the Region Growing Problem on
//! the Connection Machine"* (Copty, Ranka, Fox, Shankar; ICPP 1993): a
//! parallel **split-and-merge** algorithm for image segmentation under the
//! pixel-range homogeneity criterion.
//!
//! ## Pipeline
//!
//! 1. **Split** ([`split()`]): the image is partitioned bottom-up into
//!    maximal homogeneous squares (a flat-array quadtree coalesce).
//! 2. **Graph** ([`graph::Rag`]): squares become vertices of a region
//!    adjacency graph; edge weights are the intensity range of the union of
//!    the two endpoint regions.
//! 3. **Merge** ([`merge::Merger`]): regions iteratively pick their best
//!    neighbour; mutual picks merge (smaller ID representative); edges
//!    relabel and de-activate; repeat until no active edge remains.
//!
//! ## Quick start
//!
//! ```
//! use rg_core::{segment, Config, TieBreak};
//! use rg_imaging::synth;
//!
//! let img = synth::nested_rects(128);
//! let seg = segment(&img, &Config::with_threshold(10));
//! assert_eq!(seg.num_regions, 2);
//!
//! // Random tie-breaking (the paper's fast default) with a fixed seed:
//! let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 1 });
//! let seg2 = rg_core::segment_par(&img, &cfg); // rayon-parallel engine
//! assert_eq!(seg2.num_regions, 2);
//! ```
//!
//! Every engine in this workspace — [`segment`], [`segment_par`], the
//! data-parallel CM simulation (`rg-datapar`), and the message-passing CM-5
//! simulation (`rg-msgpass`) — produces the identical [`Segmentation`] for
//! the same [`Config`], which the cross-engine integration tests enforce.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod batch;
pub mod chrome;
pub mod config;
pub mod driver;
pub mod engine;
pub mod graph;
pub mod hierarchy;
pub mod journal;
pub mod json;
pub mod kernels;
pub mod labels;
pub mod merge;
pub mod metrics;
pub mod pipeline;
pub mod regions;
pub mod split;
pub mod split_ref;
pub mod telemetry;
pub mod tiles;
pub mod verify;

pub use analyze::{analyze_journal, analyze_run, RankTimeline, RunAnalysis};
pub use batch::{run_batch, run_batch_collect, BatchOptions, BatchSummary, ChaosSpec};
pub use chrome::{chrome_trace, chrome_trace_multi, split_runs, validate_chrome_trace};
pub use config::{Config, Connectivity, Criterion, MergeBackend, RegionStats, TieBreak};
pub use driver::{
    run_driver, BackendAbort, ChaosHook, EngineBackend, GraphStage, LabelStage, MergeCx,
    MergeStage, RunSummary, SplitInfo, SplitStage, StageStats, TraceHook,
};
pub use engine::{
    segment, segment_par, segment_par_with_telemetry, segment_with_telemetry, segment_with_trace,
    segment_with_trace_telemetry, Segmentation,
};
pub use hierarchy::{MergeEvent, MergeTrace};
pub use journal::{
    flow_pairing, jsonl_sink, parse_journal, parse_journal_strict, replay, validate_journal,
    ClockMode, EmitEvent, Event, EventKind, EventLog, EventVec, FlowPairing, JournalInvalid,
    JournalStats, JsonlSink, JsonlWriter, Streaming,
};
pub use merge::{choice_key, CandKey, MergeSummary, Merger, StepReport};
pub use pipeline::{ExecutionPlan, HostBackend, HostPipeline, Pipeline, Workspace};
pub use split::{split, split_into, split_par, SplitMetrics, SplitResult, SplitScratch, Square};
pub use split_ref::split_reference;
pub use telemetry::{
    CommRecord, ConfigRecord, ConformanceView, Fanout, FaultRecord, FlowKind, FlowRecord,
    Histogram, MergeIterationRecord, NullTelemetry, Recorder, SpanGuard, SpanKind, Stage,
    StageSpan, Telemetry, TelemetryReport,
};
pub use tiles::{segment_tiled, TileGrid, TileRect, TiledRunner, TiledStats};
pub use verify::{verify_segmentation, Violation};
