//! Plan/workspace pipeline layer: allocation-free engine reuse.
//!
//! The paper's design premise is *flat arrays only, no dynamic structures* —
//! yet a one-shot [`crate::engine::segment`] call allocates a fresh set of
//! split buffers, RAG arrays and label scratch for every image. This module
//! splits that cost the way a production service wants it split:
//!
//! * an [`ExecutionPlan`] is built **once per image shape + config** and
//!   records the derived geometry (padded quadtree side, level count,
//!   vertex/edge capacity bounds) plus the canonical stage ordering;
//! * a [`Workspace`] owns **all mutable scratch** — split level buffers,
//!   RAG/CSR arrays, the merge history DSU, stamp tokens, label compaction
//!   tables — in reusable arenas with *high-water-mark* reuse: buffers grow
//!   to the largest image seen and [`Workspace::reset`] never frees.
//!
//! Running the same-shape image stream through one [`HostPipeline`]
//! therefore performs **zero heap allocations per image after the warm-up
//! image** (asserted by the `alloc_steady_state` integration test), while
//! producing bit-identical [`Segmentation`]s and the exact telemetry
//! span/record sequence of the one-shot entry points.
//!
//! The [`Pipeline`] trait is the engine-agnostic face of this layer: the
//! host engines implement it with true buffer reuse, and the `rg-datapar` /
//! `rg-msgpass` crates wrap their simulated machines behind the same
//! interface so the batch runtime ([`crate::batch`]) can stream images
//! through any of the four engines.

use crate::config::Config;
use crate::driver::{
    run_driver, EngineBackend, GraphStage, LabelStage, MergeCx, MergeStage, RunSummary, SplitInfo,
    SplitStage, StageStats, TraceHook,
};
use crate::engine::Segmentation;
use crate::graph::adjacent_label_pairs_into;
use crate::hierarchy::MergeTrace;
use crate::merge::Merger;
use crate::split::{split_into, SplitResult, SplitScratch};
use crate::telemetry::{MergeIterationRecord, NullTelemetry, Stage, Telemetry};
use rg_imaging::{Image, Intensity};

/// Immutable per-(shape, config) execution geometry, computed once and
/// consulted by every run: the padded quadtree side, the number of split
/// levels, capacity bounds used to pre-size workspace arenas, and the
/// canonical stage ordering shared by all engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionPlan {
    width: usize,
    height: usize,
    config: Config,
    side: usize,
    levels: usize,
    max_vertices: usize,
    edge_pairs_bound: usize,
}

impl ExecutionPlan {
    /// Builds the plan for images of `width`×`height` under `config`.
    pub fn for_shape(width: usize, height: usize, config: &Config) -> Self {
        let side = width.max(height).next_power_of_two();
        let top_possible = side.trailing_zeros() as usize;
        let cap = config
            .max_square_log2
            .map(|m| m as usize)
            .unwrap_or(top_possible)
            .min(top_possible);
        let diag = if width > 0 && height > 0 {
            2 * (width - 1) * (height - 1)
        } else {
            0
        };
        let four = width * height.saturating_sub(1) + width.saturating_sub(1) * height;
        let edge_pairs_bound = match config.connectivity {
            crate::config::Connectivity::Four => four,
            crate::config::Connectivity::Eight => four + diag,
        };
        Self {
            width,
            height,
            config: *config,
            side,
            levels: cap + 1,
            max_vertices: width * height,
            edge_pairs_bound,
        }
    }

    /// `true` iff this plan is valid for `width`×`height` under `config`.
    pub fn matches(&self, width: usize, height: usize, config: &Config) -> bool {
        self.width == width && self.height == height && self.config == *config
    }

    /// Planned image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Planned image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configuration the plan was built for.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Side of the enclosing power-of-two square the quadtree is taken
    /// over.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of quadtree levels the split stage walks (level-map
    /// geometry), including level 0.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Upper bound on RAG vertices (every pixel its own square — the
    /// checkerboard worst case).
    pub fn max_vertices(&self) -> usize {
        self.max_vertices
    }

    /// Upper bound on undirected RAG edges under the planned connectivity
    /// (the pixel-adjacency count; square coalescing only shrinks it).
    /// Used as the CSR capacity estimate for arena pre-sizing.
    pub fn edge_pairs_bound(&self) -> usize {
        self.edge_pairs_bound
    }

    /// The canonical stage ordering every engine executes.
    pub fn stage_order(&self) -> [Stage; 4] {
        [Stage::Split, Stage::Graph, Stage::Merge, Stage::Label]
    }
}

/// All mutable scratch of a host-engine run, held in reusable arenas.
///
/// Every buffer follows the *high-water-mark* rule: it grows (once) to the
/// largest size demanded so far and is re-filled in place thereafter —
/// [`Workspace::reset`] clears logical contents but **never frees**.
#[derive(Debug)]
pub struct Workspace<P: Intensity> {
    /// Split-stage level pyramids, bitmaps and extraction stack.
    split_scratch: SplitScratch<P>,
    /// The current split result (squares / stats / square-of map), refilled
    /// in place by `split_into`.
    split: SplitResult<P>,
    /// Canonical RAG edge list, refilled by `adjacent_label_pairs_into`.
    edges: Vec<(u32, u32)>,
    /// Canonical region IDs, parallel to the split squares.
    ids: Vec<u64>,
    /// The merge engine with all its CSR/DSU/stamp-token state; reused via
    /// [`Merger::reset_from`].
    merger: Option<Merger<P>>,
    /// Original vertex → representative, batch-resolved after the merge.
    by_vertex: Vec<u32>,
    /// Dense compaction table: representative vertex → compact label...
    map_val: Vec<u32>,
    /// ...valid only where `map_stamp[v] == epoch` (epoch stamping makes
    /// per-image invalidation O(1) with no clearing pass).
    map_stamp: Vec<u32>,
    /// Current compaction epoch.
    epoch: u32,
}

impl<P: Intensity> Workspace<P> {
    /// Creates an empty workspace (no allocation until first use).
    pub fn new() -> Self {
        Self {
            split_scratch: SplitScratch::new(),
            split: SplitResult::default(),
            edges: Vec::new(),
            ids: Vec::new(),
            merger: None,
            by_vertex: Vec::new(),
            map_val: Vec::new(),
            map_stamp: Vec::new(),
            epoch: 0,
        }
    }

    /// Clears logical contents while keeping every arena's capacity (the
    /// reuse invariant: `reset` **never frees**). A reset workspace behaves
    /// exactly like a fresh one on the next run.
    pub fn reset(&mut self) {
        self.split.squares.clear();
        self.split.stats.clear();
        self.split.square_of.clear();
        self.split.iterations = 0;
        self.split.metrics = crate::split::SplitMetrics::default();
        self.edges.clear();
        self.ids.clear();
        self.by_vertex.clear();
        // Keep the merger (its buffers are the most expensive to warm) and
        // the stamped compaction tables: epochs make stale entries inert.
    }

    /// Pre-sizes the pixel-indexed arenas from the plan's exact bounds, so
    /// the warm-up image takes fewer growth reallocations. Vertex/edge
    /// arenas are left to the warm-up run (their true sizes are typically
    /// far below the worst-case bound).
    pub fn prepare(&mut self, plan: &ExecutionPlan) {
        let px = plan.max_vertices();
        if self.split.square_of.capacity() < px {
            self.split
                .square_of
                .reserve(px - self.split.square_of.len());
        }
        self.split_scratch.prepare(plan.width(), plan.height());
    }
}

impl<P: Intensity> Default for Workspace<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// An engine-agnostic, reusable segmentation pipeline.
///
/// Implementations keep their plan and scratch between calls, so streaming
/// many images through one pipeline amortizes all setup. The host engines
/// ([`HostPipeline`]) guarantee zero steady-state allocation; the simulated
/// machines (`rg-datapar` / `rg-msgpass` wrappers) implement the same
/// interface without that guarantee.
pub trait Pipeline {
    /// Engine label, e.g. `"seq"`, `"rayon"`, `"datapar:cm2-8k"`.
    fn engine(&self) -> &str;

    /// The current execution plan (`None` before the first run).
    fn plan(&self) -> Option<&ExecutionPlan>;

    /// Segment `img`, writing the result into the recyclable `out` buffer
    /// (cleared/refilled in place). Telemetry, when enabled, receives the
    /// same span/record sequence as the engine's one-shot entry point.
    fn run_into(&mut self, img: &Image<u8>, tel: &mut dyn Telemetry, out: &mut Segmentation);

    /// Convenience: segment `img` into a fresh [`Segmentation`].
    fn run(&mut self, img: &Image<u8>, tel: &mut dyn Telemetry) -> Segmentation {
        let mut out = Segmentation::default();
        self.run_into(img, tel, &mut out);
        out
    }
}

/// The host-engine pipeline (sequential or rayon-parallel), built on an
/// [`ExecutionPlan`] + [`Workspace`] pair.
///
/// Produces bit-identical output to [`crate::engine::segment`] /
/// [`crate::engine::segment_par`] and the identical telemetry sequence,
/// with **zero heap allocations per image** once warmed up on a shape.
/// Images of a new shape (or a config change via
/// [`HostPipeline::set_config`]) re-plan automatically; arenas keep their
/// high-water capacity across re-plans.
#[derive(Debug)]
pub struct HostPipeline<P: Intensity = u8> {
    config: Config,
    parallel: bool,
    plan: Option<ExecutionPlan>,
    ws: Workspace<P>,
}

impl<P: Intensity> HostPipeline<P> {
    /// Creates a pipeline; `parallel` selects the rayon engine.
    pub fn new(config: Config, parallel: bool) -> Self {
        Self {
            config,
            parallel,
            plan: None,
            ws: Workspace::new(),
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Replaces the configuration; the next run re-plans.
    pub fn set_config(&mut self, config: Config) {
        self.config = config;
        self.plan = None;
    }

    /// The workspace (for inspection in tests).
    pub fn workspace(&self) -> &Workspace<P> {
        &self.ws
    }

    /// Segment `img` into the recyclable `out` buffer (see
    /// [`Pipeline::run_into`]); generic over the intensity type.
    pub fn run_image_into(
        &mut self,
        img: &Image<P>,
        tel: &mut dyn Telemetry,
        out: &mut Segmentation,
    ) {
        let (w, h) = (img.width(), img.height());
        let stale = match &self.plan {
            Some(p) => !p.matches(w, h, &self.config),
            None => true,
        };
        if stale {
            let plan = ExecutionPlan::for_shape(w, h, &self.config);
            self.ws.prepare(&plan);
            self.plan = Some(plan);
        }
        run_host_into(img, &self.config, self.parallel, tel, &mut self.ws, out);
    }

    /// Convenience: segment `img` into a fresh [`Segmentation`] with no
    /// telemetry.
    pub fn run_image(&mut self, img: &Image<P>) -> Segmentation {
        let mut out = Segmentation::default();
        self.run_image_into(img, &mut NullTelemetry, &mut out);
        out
    }
}

impl Pipeline for HostPipeline<u8> {
    fn engine(&self) -> &str {
        if self.parallel {
            "rayon"
        } else {
            "seq"
        }
    }

    fn plan(&self) -> Option<&ExecutionPlan> {
        self.plan.as_ref()
    }

    fn run_into(&mut self, img: &Image<u8>, tel: &mut dyn Telemetry, out: &mut Segmentation) {
        self.run_image_into(img, tel, out);
    }
}

/// The host pipeline body: builds a [`HostBackend`] over the workspace and
/// hands it to the unified stage driver ([`crate::driver::run_driver`]),
/// which owns the telemetry span/record sequence (golden-snapshot and
/// trace-schema tested).
pub(crate) fn run_host_into<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    parallel: bool,
    tel: &mut dyn Telemetry,
    ws: &mut Workspace<P>,
    out: &mut Segmentation,
) {
    let mut backend = HostBackend::new(img, config, parallel, ws);
    run_driver(&mut backend, tel, out);
}

/// The host engines (sequential / rayon) as a stage-driver backend: live
/// stages over [`Workspace`] arenas, zero steady-state allocation under a
/// disabled sink.
///
/// This is the exemplar backend: every stage runs for real inside the span
/// the driver opens for it, wall time comes from the driver's stopwatch,
/// and there is no simulated time. It is also the only backend implementing
/// [`TraceHook`] — construct it with [`HostBackend::with_trace`] and take
/// the merge dendrogram after the run.
pub struct HostBackend<'a, P: Intensity> {
    img: &'a Image<P>,
    config: &'a Config,
    parallel: bool,
    ws: &'a mut Workspace<P>,
    trace: bool,
}

impl<'a, P: Intensity> HostBackend<'a, P> {
    /// A backend over `img` using the given workspace arenas.
    pub fn new(
        img: &'a Image<P>,
        config: &'a Config,
        parallel: bool,
        ws: &'a mut Workspace<P>,
    ) -> Self {
        Self {
            img,
            config,
            parallel,
            ws,
            trace: false,
        }
    }

    /// Enables merge-dendrogram recording for this run (see [`TraceHook`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

impl<P: Intensity> SplitStage for HostBackend<'_, P> {
    fn split(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
        split_into(
            self.img,
            self.config,
            self.parallel,
            &mut self.ws.split_scratch,
            &mut self.ws.split,
        );
        StageStats::live()
    }

    fn split_report(&mut self, tel: &mut dyn Telemetry) {
        // Engine-internal work counters of the packed split (excluded
        // from cross-engine conformance, like the merge counters).
        let m = &self.ws.split.metrics;
        tel.counter("split.levels_built", m.levels_built as f64);
        tel.counter("split.productive_levels", m.productive_levels as f64);
        tel.counter("split.words_tested", m.words_tested as f64);
        tel.counter("split.cells_folded", m.cells_folded as f64);
    }
}

impl<P: Intensity> GraphStage for HostBackend<'_, P> {
    fn graph(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
        let ws = &mut *self.ws;
        adjacent_label_pairs_into(
            &ws.split.square_of,
            self.img.width(),
            self.img.height(),
            self.config.connectivity,
            &mut ws.edges,
        );
        let stride = ws.split.width as u32;
        ws.ids.clear();
        ws.ids
            .extend(ws.split.squares.iter().map(|s| s.id(stride) as u64));
        let merger = match &mut ws.merger {
            Some(m) => {
                m.reset_from(
                    &ws.split.stats,
                    &ws.edges,
                    &ws.ids,
                    self.config,
                    self.parallel,
                );
                m
            }
            slot @ None => {
                let mut m = Merger::hollow(self.config);
                m.reset_from(
                    &ws.split.stats,
                    &ws.edges,
                    &ws.ids,
                    self.config,
                    self.parallel,
                );
                slot.insert(m)
            }
        };
        if self.trace {
            // `reset_from` drops any previous trace, so arm it here —
            // after the merger has its vertices for this image.
            merger.enable_trace();
        }
        StageStats::live()
    }
}

impl<P: Intensity> MergeStage for HostBackend<'_, P> {
    fn merge(&mut self, cx: &mut MergeCx<'_>) -> StageStats {
        let merger = self.ws.merger.as_mut().expect("graph stage ran");
        if cx.enabled() {
            while !merger.is_done() {
                let iteration = merger.iterations();
                cx.iteration(iteration, |tel| {
                    let report = merger.step_traced(tel);
                    MergeIterationRecord {
                        iteration,
                        merges: report.merges,
                        used_fallback: report.used_fallback,
                        active_edges: Some(report.active_edges),
                        compacted: Some(report.compacted),
                    }
                });
            }
        } else {
            while !merger.is_done() {
                merger.step();
            }
        }
        StageStats::live()
    }

    fn measures_iteration_wall(&self) -> bool {
        // Host iterations run live; their wall distribution is the
        // `merge.iter_wall_us` histogram the driver emits.
        true
    }
}

impl<P: Intensity> LabelStage for HostBackend<'_, P> {
    fn label(&mut self, _tel: &mut dyn Telemetry, out: &mut Segmentation) -> (StageStats, usize) {
        let ws = &mut *self.ws;
        let merger = ws.merger.as_ref().expect("graph stage ran");
        merger.labels_by_vertex_into(&mut ws.by_vertex);
        let num_regions = compact_gather(
            &ws.split.square_of,
            &ws.by_vertex,
            &mut ws.map_val,
            &mut ws.map_stamp,
            &mut ws.epoch,
            &mut out.labels,
        );
        (StageStats::live(), num_regions)
    }
}

impl<P: Intensity> EngineBackend for HostBackend<'_, P> {
    fn engine(&self) -> String {
        if self.parallel { "rayon" } else { "seq" }.to_string()
    }

    fn dims(&self) -> (usize, usize) {
        (self.img.width(), self.img.height())
    }

    fn config(&self) -> &Config {
        self.config
    }

    fn split_info(&self) -> SplitInfo {
        SplitInfo {
            iterations: self.ws.split.iterations,
            num_squares: self.ws.split.num_squares(),
        }
    }

    fn summary(&self) -> RunSummary<'_> {
        let merger = self.ws.merger.as_ref().expect("graph stage ran");
        RunSummary {
            split_iterations: self.ws.split.iterations,
            num_squares: self.ws.split.num_squares(),
            merge_iterations: merger.iterations(),
            merges_per_iteration: merger.merges_per_iteration(),
            num_regions: merger.num_regions(),
        }
    }
}

impl<P: Intensity> TraceHook for HostBackend<'_, P> {
    fn take_trace(&mut self) -> Option<MergeTrace> {
        self.ws.merger.as_mut().and_then(|m| m.take_trace())
    }
}

/// Fused per-pixel label gather + first-appearance compaction, writing
/// straight into the recycled `labels` buffer.
///
/// Raw merge labels are dense vertex indices (`< num_squares`), so instead
/// of the `HashMap` of [`crate::labels::compact_first_appearance`] an
/// epoch-stamped dense table maps representative → compact label:
/// `map_stamp[v] == epoch` marks a valid entry, making per-image table
/// invalidation O(1) with no clearing pass and no allocation. Output is
/// bit-identical to gather-then-`compact_first_appearance`.
///
/// Shared with the tiled runtime ([`crate::tiles`]), which calls it with a
/// global pixel → stitch-vertex map in place of `square_of`.
pub(crate) fn compact_gather(
    square_of: &[u32],
    by_vertex: &[u32],
    map_val: &mut Vec<u32>,
    map_stamp: &mut Vec<u32>,
    epoch: &mut u32,
    labels: &mut Vec<u32>,
) -> usize {
    let n = by_vertex.len();
    if map_stamp.len() < n {
        map_stamp.resize(n, 0);
        map_val.resize(n, 0);
    }
    *epoch = match epoch.checked_add(1) {
        Some(e) => e,
        None => {
            // Epoch wrap after 2^32 images: one full clear, then restart.
            map_stamp.iter_mut().for_each(|s| *s = 0);
            1
        }
    };
    let epoch = *epoch;
    let mut next = 0u32;
    labels.clear();
    labels.reserve(square_of.len());
    for &q in square_of {
        let r = by_vertex[q as usize] as usize;
        if map_stamp[r] != epoch {
            map_stamp[r] = epoch;
            map_val[r] = next;
            next += 1;
        }
        labels.push(map_val[r]);
    }
    next as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MergeBackend, TieBreak};
    use crate::engine::{segment, segment_par};
    use rg_imaging::synth;

    #[test]
    fn plan_geometry() {
        let cfg = Config::with_threshold(10);
        let p = ExecutionPlan::for_shape(96, 64, &cfg);
        assert_eq!(p.side(), 128);
        assert_eq!(p.levels(), 8);
        assert_eq!(p.max_vertices(), 96 * 64);
        assert_eq!(p.edge_pairs_bound(), 96 * 63 + 95 * 64);
        assert!(p.matches(96, 64, &cfg));
        assert!(!p.matches(64, 96, &cfg));
        assert!(!p.matches(96, 64, &Config::with_threshold(11)));
        assert_eq!(
            p.stage_order(),
            [Stage::Split, Stage::Graph, Stage::Merge, Stage::Label]
        );
        // Capped split depth shortens the level map.
        let p0 = ExecutionPlan::for_shape(64, 64, &cfg.max_square_log2(Some(2)));
        assert_eq!(p0.levels(), 3);
        // Degenerate shapes plan without panicking.
        let pd = ExecutionPlan::for_shape(0, 0, &cfg);
        assert_eq!(pd.max_vertices(), 0);
        assert_eq!(pd.edge_pairs_bound(), 0);
    }

    #[test]
    fn reused_pipeline_matches_one_shot_engines() {
        let images = [
            synth::circle_collection(64),
            synth::rect_collection(64),
            synth::nested_rects(64),
            synth::random_rects(64, 64, 9, 7),
        ];
        for parallel in [false, true] {
            for tie in [TieBreak::SmallestId, TieBreak::Random { seed: 5 }] {
                let cfg = Config::with_threshold(10).tie_break(tie);
                let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, parallel);
                let mut out = Segmentation::default();
                // Two passes: the second exercises fully-warm arenas.
                for _pass in 0..2 {
                    for img in &images {
                        let fresh = if parallel {
                            segment_par(img, &cfg)
                        } else {
                            segment(img, &cfg)
                        };
                        pipe.run_image_into(img, &mut NullTelemetry, &mut out);
                        assert_eq!(fresh, out, "parallel={parallel} tie={tie:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn reused_pipeline_matches_under_reference_backend() {
        let cfg = Config::with_threshold(10).merge_backend(MergeBackend::Reference);
        let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, false);
        for img in [synth::circle_collection(64), synth::nested_rects(64)] {
            let fresh = segment(&img, &cfg);
            assert_eq!(fresh, pipe.run_image(&img));
        }
    }

    #[test]
    fn pipeline_replans_on_shape_and_config_change() {
        let cfg = Config::with_threshold(10);
        let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, false);
        assert!(Pipeline::plan(&pipe).is_none());
        let a = synth::random_rects(32, 32, 5, 1);
        pipe.run_image(&a);
        let plan_a = pipe.plan.clone().unwrap();
        assert!(plan_a.matches(32, 32, &cfg));
        // Different shape: re-plan.
        let b = synth::random_rects(48, 16, 5, 2);
        let seg_b = pipe.run_image(&b);
        assert_eq!(seg_b, segment(&b, &cfg));
        assert!(pipe.plan.clone().unwrap().matches(48, 16, &cfg));
        // Config change invalidates the plan too.
        let cfg2 = Config::with_threshold(25);
        pipe.set_config(cfg2);
        assert!(pipe.plan.is_none());
        assert_eq!(pipe.run_image(&b), segment(&b, &cfg2));
    }

    #[test]
    fn workspace_reset_preserves_behavior() {
        let cfg = Config::with_threshold(10);
        let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, false);
        let img = synth::circle_collection(64);
        let first = pipe.run_image(&img);
        pipe.ws.reset();
        assert_eq!(first, pipe.run_image(&img));
    }

    #[test]
    fn trait_object_runs_all_host_engines() {
        let cfg = Config::with_threshold(10);
        let img = synth::rect_collection(64);
        let expect = segment(&img, &cfg);
        for parallel in [false, true] {
            let mut p: Box<dyn Pipeline> = Box::new(HostPipeline::<u8>::new(cfg, parallel));
            assert_eq!(p.engine(), if parallel { "rayon" } else { "seq" });
            let seg = p.run(&img, &mut NullTelemetry);
            assert_eq!(seg, expect);
        }
    }

    #[test]
    fn telemetry_sequence_matches_one_shot_engine() {
        use crate::telemetry::Recorder;
        let img = synth::nested_rects(64);
        let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 3 });
        let mut rec_engine = Recorder::new();
        let seg = crate::engine::segment_with_telemetry(&img, &cfg, &mut rec_engine);
        let mut rec_pipe = Recorder::new();
        let mut pipe: HostPipeline<u8> = HostPipeline::new(cfg, false);
        // Warm up once so the recorded run is the steady-state code path.
        pipe.run_image(&img);
        let mut out = Segmentation::default();
        pipe.run_image_into(&img, &mut rec_pipe, &mut out);
        assert_eq!(seg, out);
        assert_eq!(
            rec_engine.report().conformance_view(),
            rec_pipe.report().conformance_view()
        );
    }
}
