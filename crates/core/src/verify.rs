//! Segmentation validity checking.
//!
//! A segmentation produced by any engine must satisfy three invariants:
//!
//! 1. **Connectivity** — every region is one connected component under the
//!    configured adjacency (regions grow only by merging neighbours);
//! 2. **Homogeneity** — every region satisfies the criterion on its own
//!    (for pixel range: `max − min ≤ T`; vacuous for the mean-difference
//!    extension, which constrains pairs, not single regions);
//! 3. **Maximality** — no two adjacent regions could still merge (the merge
//!    stage ran until no active edges remained).
//!
//! These are exactly the postconditions of the paper's algorithm, and every
//! property test funnels through [`verify_segmentation`].

use crate::config::{Config, Connectivity, Criterion, RegionStats};
use crate::engine::Segmentation;
use crate::graph::adjacent_label_pairs;
use rg_dsu::DisjointSets;
use rg_imaging::{Image, Intensity};

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The label buffer is not dense `0..num_regions`, or sizes disagree.
    MalformedLabels {
        /// Explanation.
        detail: String,
    },
    /// A region's pixels form more than one connected component.
    NotConnected {
        /// Offending region label.
        label: u32,
        /// Number of components found.
        components: usize,
    },
    /// A region violates the homogeneity criterion.
    NotHomogeneous {
        /// Offending region label.
        label: u32,
        /// Its intensity range.
        range: u32,
    },
    /// Two adjacent regions could still merge.
    MergeableNeighbors {
        /// First region label.
        a: u32,
        /// Second region label.
        b: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MalformedLabels { detail } => write!(f, "malformed labels: {detail}"),
            Violation::NotConnected { label, components } => {
                write!(f, "region {label} splits into {components} components")
            }
            Violation::NotHomogeneous { label, range } => {
                write!(f, "region {label} has range {range} above threshold")
            }
            Violation::MergeableNeighbors { a, b } => {
                write!(f, "regions {a} and {b} are adjacent and still mergeable")
            }
        }
    }
}

/// Checks all invariants; returns every violation found (empty = valid).
pub fn verify_segmentation<P: Intensity>(
    img: &Image<P>,
    seg: &Segmentation,
    config: &Config,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    let (w, h) = (img.width(), img.height());

    if seg.labels.len() != w * h || seg.width != w || seg.height != h {
        violations.push(Violation::MalformedLabels {
            detail: format!(
                "labels len {} vs image {}x{} (seg says {}x{})",
                seg.labels.len(),
                w,
                h,
                seg.width,
                seg.height
            ),
        });
        return Err(violations);
    }
    if let Some(&max) = seg.labels.iter().max() {
        if max as usize + 1 != seg.num_regions {
            violations.push(Violation::MalformedLabels {
                detail: format!("max label {} vs num_regions {}", max, seg.num_regions),
            });
            // The remaining checks index per-label arrays; bail out.
            return Err(violations);
        }
    }

    // Per-region stats.
    let mut stats: Vec<Option<RegionStats<P>>> = vec![None; seg.num_regions];
    for (i, &l) in seg.labels.iter().enumerate() {
        let p = img.pixels()[i];
        let s = RegionStats::of_pixel(p);
        let slot = &mut stats[l as usize];
        *slot = Some(match *slot {
            None => s,
            Some(acc) => acc.fold(s),
        });
    }

    // Homogeneity (pixel-range criterion only; mean-difference constrains
    // pairs rather than single regions).
    if config.criterion == Criterion::PixelRange {
        for (label, s) in stats.iter().enumerate() {
            if let Some(s) = s {
                if s.range() > config.threshold {
                    violations.push(Violation::NotHomogeneous {
                        label: label as u32,
                        range: s.range(),
                    });
                }
            }
        }
    }

    // Connectivity: count components per label with one sweep.
    let components = count_components(&seg.labels, w, h, config.connectivity, seg.num_regions);
    for (label, &c) in components.iter().enumerate() {
        if c > 1 {
            violations.push(Violation::NotConnected {
                label: label as u32,
                components: c,
            });
        }
    }

    // Maximality.
    for (a, b) in adjacent_label_pairs(&seg.labels, w, h, config.connectivity, false) {
        if let (Some(sa), Some(sb)) = (stats[a as usize], stats[b as usize]) {
            if config.criterion.satisfies(&sa, &sb, config.threshold) {
                violations.push(Violation::MergeableNeighbors { a, b });
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Number of connected components of each label value.
///
/// Implemented as a union–find pass rather than a per-component flood fill:
/// same-label neighbouring pixels are unioned, then a single batched
/// [`DisjointSets::resolve_all`] sweep resolves every pixel to its root in
/// one cache-friendly pass (no recursion, no visit stack). Components per
/// label are then counted by tallying distinct roots.
fn count_components(
    labels: &[u32],
    w: usize,
    h: usize,
    connectivity: Connectivity,
    num_regions: usize,
) -> Vec<usize> {
    let mut dsu = DisjointSets::new(labels.len());
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let l = labels[i];
            // Forward-only scan: each 4/8-neighbour pair is visited once.
            if x + 1 < w && labels[i + 1] == l {
                dsu.union_min_rep(i as u32, (i + 1) as u32);
            }
            if y + 1 < h {
                let below = i + w;
                if labels[below] == l {
                    dsu.union_min_rep(i as u32, below as u32);
                }
                if connectivity == Connectivity::Eight {
                    if x > 0 && labels[below - 1] == l {
                        dsu.union_min_rep(i as u32, (below - 1) as u32);
                    }
                    if x + 1 < w && labels[below + 1] == l {
                        dsu.union_min_rep(i as u32, (below + 1) as u32);
                    }
                }
            }
        }
    }
    let roots = dsu.resolve_all();
    let mut counts = vec![0usize; num_regions];
    for (i, (&root, &l)) in roots.iter().zip(labels).enumerate() {
        if root as usize == i {
            counts[l as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TieBreak;
    use crate::engine::segment;
    use rg_imaging::synth;

    #[test]
    fn valid_segmentations_pass() {
        for pi in [
            synth::PaperImage::Image1,
            synth::PaperImage::Image2,
            synth::PaperImage::Image3,
        ] {
            let img = pi.generate();
            let cfg = Config::with_threshold(10);
            let seg = segment(&img, &cfg);
            verify_segmentation(&img, &seg, &cfg).unwrap_or_else(|v| {
                panic!("{pi:?}: {} violations, first: {}", v.len(), v[0]);
            });
        }
    }

    #[test]
    fn random_scenes_pass_for_all_policies() {
        for seed in 0..3 {
            let img = synth::random_rects(48, 48, 8, seed);
            for tie in [
                TieBreak::SmallestId,
                TieBreak::LargestId,
                TieBreak::Random { seed: 77 },
            ] {
                let cfg = Config::with_threshold(20).tie_break(tie);
                let seg = segment(&img, &cfg);
                verify_segmentation(&img, &seg, &cfg)
                    .unwrap_or_else(|v| panic!("seed {seed} {tie:?}: {}", v[0]));
            }
        }
    }

    #[test]
    fn detects_mergeable_neighbors() {
        // A hand-made bad segmentation: uniform image split into two labels.
        let img: rg_imaging::Image<u8> = rg_imaging::Image::new(4, 2, 9);
        let seg = Segmentation {
            labels: vec![0, 0, 1, 1, 0, 0, 1, 1],
            num_regions: 2,
            num_squares: 8,
            split_iterations: 0,
            merge_iterations: 0,
            merges_per_iteration: vec![],
            width: 4,
            height: 2,
        };
        let cfg = Config::with_threshold(5);
        let err = verify_segmentation(&img, &seg, &cfg).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::MergeableNeighbors { a: 0, b: 1 })));
    }

    #[test]
    fn detects_disconnected_region() {
        let img: rg_imaging::Image<u8> = rg_imaging::Image::from_vec(3, 1, vec![0, 200, 0]);
        let seg = Segmentation {
            labels: vec![0, 1, 0],
            num_regions: 2,
            num_squares: 3,
            split_iterations: 0,
            merge_iterations: 0,
            merges_per_iteration: vec![],
            width: 3,
            height: 1,
        };
        let cfg = Config::with_threshold(5);
        let err = verify_segmentation(&img, &seg, &cfg).unwrap_err();
        assert!(err.iter().any(|v| matches!(
            v,
            Violation::NotConnected {
                label: 0,
                components: 2
            }
        )));
    }

    #[test]
    fn detects_inhomogeneous_region() {
        let img: rg_imaging::Image<u8> = rg_imaging::Image::from_vec(2, 1, vec![0, 200]);
        let seg = Segmentation {
            labels: vec![0, 0],
            num_regions: 1,
            num_squares: 2,
            split_iterations: 0,
            merge_iterations: 0,
            merges_per_iteration: vec![],
            width: 2,
            height: 1,
        };
        let cfg = Config::with_threshold(5);
        let err = verify_segmentation(&img, &seg, &cfg).unwrap_err();
        assert!(err.iter().any(|v| matches!(
            v,
            Violation::NotHomogeneous {
                label: 0,
                range: 200
            }
        )));
    }

    #[test]
    fn detects_malformed_labels() {
        let img: rg_imaging::Image<u8> = rg_imaging::Image::new(2, 1, 0);
        let seg = Segmentation {
            labels: vec![0, 5],
            num_regions: 2,
            num_squares: 2,
            split_iterations: 0,
            merge_iterations: 0,
            merges_per_iteration: vec![],
            width: 2,
            height: 1,
        };
        let cfg = Config::with_threshold(5);
        let err = verify_segmentation(&img, &seg, &cfg).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::MalformedLabels { .. })));
    }

    #[test]
    fn eight_connectivity_verifies() {
        let img = synth::circle_collection(64);
        let cfg = Config::with_threshold(10).connectivity(Connectivity::Eight);
        let seg = segment(&img, &cfg);
        verify_segmentation(&img, &seg, &cfg).unwrap();
    }
}
