//! Cross-rank causal analysis of a traced message-passing journal.
//!
//! The paper's central question is processor utilization: how much of the
//! makespan is useful work versus waiting on the slowest processor or on
//! communication. This module answers it post-mortem from the causal flow
//! events ([`crate::telemetry::FlowRecord`]) a traced msgpass run streams
//! into its journal:
//!
//! 1. **DAG reconstruction.** Per-rank event chains (program order, virtual
//!    clocks) plus cross-rank edges: each `recv` depends on its matched
//!    `send` (correlated by `(stream, src, dst, seq)`), and each collective
//!    participation depends on every participant reaching the rendezvous
//!    (participants share a per-node ordinal because SPMD programs enter
//!    collectives in lockstep).
//! 2. **Critical path.** Longest *busy-time* path through the DAG:
//!    `cp(e) = min(t(e), busy(e) + max over predecessors cp(pred))`. The
//!    `min` clamp encodes that no dependency chain can accumulate more
//!    attributable work by time `t` than `t` itself, which pins the two
//!    defining invariants structurally: critical path ≤ wall time, and —
//!    because a rank's own chain is one candidate path — critical path ≥
//!    max per-rank busy time.
//! 3. **Attribution.** Per-rank busy/idle split (idle = receive waits +
//!    collective rendezvous waits + chaos retry timeouts), load-imbalance
//!    percentage `(max busy − mean busy) / max busy`, straggler ranks,
//!    per-stream critical-path breakdown, per-edge wait attribution, and
//!    communication/computation overlap (the share of in-flight message
//!    time the receiver spent doing other work).
//!
//! Everything degrades gracefully on truncated journals: an unmatched
//! receive simply loses its cross edge, a missing `run_end` loses nothing,
//! and a journal with no flow events yields no analysis ([`analyze_run`]
//! returns `None`) rather than a panic.

use std::collections::HashMap;

use crate::journal::{Event, EventKind};
use crate::json::Json;
use crate::telemetry::{FlowKind, FlowRecord};

/// One rank's busy/idle timeline summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RankTimeline {
    /// The rank.
    pub rank: u32,
    /// Virtual clock at the rank's last traced operation, nanoseconds.
    pub final_ns: f64,
    /// Busy time: total event time minus waits, nanoseconds.
    pub busy_ns: f64,
    /// Idle time: receive + collective + retry waits, nanoseconds.
    pub idle_ns: f64,
    /// Traced operations recorded by this rank.
    pub events: usize,
}

impl RankTimeline {
    /// Busy share of this rank's timeline, percent.
    pub fn utilization_pct(&self) -> f64 {
        if self.final_ns <= 0.0 {
            100.0
        } else {
            100.0 * self.busy_ns / self.final_ns
        }
    }
}

/// Critical-path time attributed to one stream (program-point tag).
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Stream tag (e.g. `"boundary"`, `"merge:stats"`).
    pub stream: String,
    /// Busy nanoseconds on the critical path under this tag.
    pub busy_ns: f64,
    /// Critical-path events under this tag.
    pub events: usize,
}

/// Wait time attributed to one directed communication edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeAttribution {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Logical messages sent on the edge.
    pub messages: u64,
    /// Logical payload bytes sent on the edge.
    pub bytes: u64,
    /// Receiver blocked-waiting time on the edge, nanoseconds.
    pub recv_wait_ns: f64,
    /// Sender chaos retry-timeout time on the edge, nanoseconds (zero on
    /// fault-free fabrics).
    pub retry_wait_ns: f64,
}

/// The full causal analysis of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunAnalysis {
    /// Engine label from `run_start` (empty if the journal prefix lost it).
    pub engine: String,
    /// Image width (0 if unknown).
    pub width: usize,
    /// Image height (0 if unknown).
    pub height: usize,
    /// Ranks observed in the trace.
    pub nodes: usize,
    /// Virtual makespan: latest traced-operation completion, nanoseconds.
    pub wall_ns: f64,
    /// Critical-path length, nanoseconds.
    pub critical_path_ns: f64,
    /// Per-rank timelines, indexed by position (ascending rank).
    pub ranks: Vec<RankTimeline>,
    /// Load imbalance `(max busy − mean busy) / max busy`, percent.
    pub imbalance_pct: f64,
    /// The rank with the most busy time.
    pub straggler: u32,
    /// Critical-path breakdown by stream, descending busy time.
    pub critical_path: Vec<PathSegment>,
    /// Total receive blocked-waiting time across ranks, nanoseconds.
    pub recv_wait_ns: f64,
    /// Total collective rendezvous waiting time across ranks, nanoseconds.
    pub coll_wait_ns: f64,
    /// Total chaos retry-timeout time across ranks, nanoseconds.
    pub retry_wait_ns: f64,
    /// Per-edge wait attribution, descending total wait.
    pub edges: Vec<EdgeAttribution>,
    /// Communication/computation overlap: share of total in-flight message
    /// time during which the receiver was *not* blocked on it, percent.
    pub overlap_pct: f64,
    /// Flow events that paired (`recv` matched to a prior `send`).
    pub matched_flows: usize,
    /// Receives with no matching send (non-zero only on truncated or
    /// damaged journals; their cross edges are dropped, not fatal).
    pub unmatched_recvs: usize,
}

impl RunAnalysis {
    /// Mean per-rank busy time, nanoseconds.
    pub fn mean_busy_ns(&self) -> f64 {
        if self.ranks.is_empty() {
            0.0
        } else {
            self.ranks.iter().map(|r| r.busy_ns).sum::<f64>() / self.ranks.len() as f64
        }
    }

    /// Maximum per-rank busy time, nanoseconds.
    pub fn max_busy_ns(&self) -> f64 {
        self.ranks.iter().map(|r| r.busy_ns).fold(0.0, f64::max)
    }

    /// Aggregate utilization: total busy over `nodes × wall`, percent.
    pub fn utilization_pct(&self) -> f64 {
        let denom = self.wall_ns * self.ranks.len() as f64;
        if denom <= 0.0 {
            100.0
        } else {
            100.0 * self.ranks.iter().map(|r| r.busy_ns).sum::<f64>() / denom
        }
    }

    /// Serializes the analysis to a JSON object (times in milliseconds of
    /// virtual time).
    pub fn to_json(&self) -> Json {
        let ms = |ns: f64| Json::from(ns / 1e6);
        let ranks: Vec<Json> = self
            .ranks
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("rank", u64::from(r.rank).into()),
                    ("busy_ms", ms(r.busy_ns)),
                    ("idle_ms", ms(r.idle_ns)),
                    ("final_ms", ms(r.final_ns)),
                    ("utilization_pct", r.utilization_pct().into()),
                    ("events", r.events.into()),
                ])
            })
            .collect();
        let path: Vec<Json> = self
            .critical_path
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("stream", s.stream.as_str().into()),
                    ("busy_ms", ms(s.busy_ns)),
                    ("events", s.events.into()),
                ])
            })
            .collect();
        let edges: Vec<Json> = self
            .edges
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("src", u64::from(e.src).into()),
                    ("dst", u64::from(e.dst).into()),
                    ("messages", e.messages.into()),
                    ("bytes", e.bytes.into()),
                    ("recv_wait_ms", ms(e.recv_wait_ns)),
                    ("retry_wait_ms", ms(e.retry_wait_ns)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("engine", self.engine.as_str().into()),
            ("width", self.width.into()),
            ("height", self.height.into()),
            ("nodes", self.nodes.into()),
            ("wall_ms", ms(self.wall_ns)),
            ("critical_path_ms", ms(self.critical_path_ns)),
            ("max_rank_busy_ms", ms(self.max_busy_ns())),
            ("mean_rank_busy_ms", ms(self.mean_busy_ns())),
            ("imbalance_pct", self.imbalance_pct.into()),
            ("straggler", u64::from(self.straggler).into()),
            ("utilization_pct", self.utilization_pct().into()),
            ("overlap_pct", self.overlap_pct.into()),
            ("recv_wait_ms", ms(self.recv_wait_ns)),
            ("coll_wait_ms", ms(self.coll_wait_ns)),
            ("retry_wait_ms", ms(self.retry_wait_ns)),
            ("matched_flows", self.matched_flows.into()),
            ("unmatched_recvs", self.unmatched_recvs.into()),
            ("ranks", Json::Arr(ranks)),
            ("critical_path", Json::Arr(path)),
            ("edges", Json::Arr(edges)),
        ])
    }

    /// Renders a human-readable attribution report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let ms = |ns: f64| ns / 1e6;
        let _ = writeln!(
            s,
            "causal analysis: {} {}x{} on {} rank(s)",
            if self.engine.is_empty() {
                "<unknown engine>"
            } else {
                &self.engine
            },
            self.width,
            self.height,
            self.nodes
        );
        let _ = writeln!(
            s,
            "  wall (virtual)   {:>10.3} ms\n  critical path    {:>10.3} ms ({:.1}% of wall)",
            ms(self.wall_ns),
            ms(self.critical_path_ns),
            if self.wall_ns > 0.0 {
                100.0 * self.critical_path_ns / self.wall_ns
            } else {
                100.0
            }
        );
        let _ = writeln!(
            s,
            "  imbalance        {:>10.1} %   straggler: rank {}",
            self.imbalance_pct, self.straggler
        );
        let _ = writeln!(
            s,
            "  utilization      {:>10.1} %   comm/compute overlap: {:.1}%",
            self.utilization_pct(),
            self.overlap_pct
        );
        let _ = writeln!(
            s,
            "  waits            recv {:.3} ms · collective {:.3} ms · retry {:.3} ms",
            ms(self.recv_wait_ns),
            ms(self.coll_wait_ns),
            ms(self.retry_wait_ns)
        );
        let _ = writeln!(s, "  per-rank busy/idle:");
        for r in &self.ranks {
            let _ = writeln!(
                s,
                "    rank {:>3}  busy {:>10.3} ms  idle {:>10.3} ms  util {:>5.1}%",
                r.rank,
                ms(r.busy_ns),
                ms(r.idle_ns),
                r.utilization_pct()
            );
        }
        if !self.critical_path.is_empty() {
            let _ = writeln!(s, "  critical path by stream:");
            for seg in &self.critical_path {
                let _ = writeln!(
                    s,
                    "    {:<16} {:>10.3} ms  ({} event(s))",
                    seg.stream,
                    ms(seg.busy_ns),
                    seg.events
                );
            }
        }
        if !self.edges.is_empty() {
            let _ = writeln!(s, "  top edges by attributed wait:");
            for e in self.edges.iter().take(8) {
                let _ = writeln!(
                    s,
                    "    {:>3} -> {:<3} {:>6} msg {:>10} B  recv-wait {:>9.3} ms  retry-wait {:>9.3} ms",
                    e.src, e.dst, e.messages, e.bytes, ms(e.recv_wait_ns), ms(e.retry_wait_ns)
                );
            }
        }
        if self.unmatched_recvs > 0 {
            let _ = writeln!(
                s,
                "  note: {} receive(s) had no matching send (truncated journal?)",
                self.unmatched_recvs
            );
        }
        s
    }
}

/// Analyzes the first (or only) run of an event stream. Returns `None`
/// when the stream holds no flow events (e.g. a host-engine journal).
pub fn analyze_run(events: &[Event]) -> Option<RunAnalysis> {
    let mut engine = String::new();
    let mut width = 0usize;
    let mut height = 0usize;
    let mut flows: Vec<&FlowRecord> = Vec::new();
    for ev in events {
        match &ev.kind {
            // Nested per-image runs (batch journals) keep the outermost
            // label; a lone run has exactly one run_start anyway.
            EventKind::RunStart {
                engine: e,
                width: w,
                height: h,
                ..
            } if engine.is_empty() => {
                engine = e.clone();
                width = *w;
                height = *h;
            }
            EventKind::Flow { rec } => flows.push(rec),
            _ => {}
        }
    }
    if flows.is_empty() {
        return None;
    }

    // Group per recording rank, preserving emission (program) order.
    let mut by_rank: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        by_rank.entry(f.rank()).or_default().push(i);
    }
    let mut rank_ids: Vec<u32> = by_rank.keys().copied().collect();
    rank_ids.sort_unstable();

    // Per-event durations and busy time. A rank's virtual clock starts at
    // zero, so the first event's duration is its own completion time.
    let n = flows.len();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut busy: Vec<f64> = vec![0.0; n];
    for ids in by_rank.values() {
        let mut last_t = 0.0f64;
        let mut last_i: Option<usize> = None;
        for &i in ids {
            let f = flows[i];
            let dur = (f.t_ns - last_t).max(0.0);
            busy[i] = (dur - f.wait_ns).max(0.0);
            prev[i] = last_i;
            last_t = f.t_ns;
            last_i = Some(i);
        }
    }

    // Cross edges: recv -> matched send, collective -> all participants'
    // chain predecessors.
    let mut send_at: HashMap<(&str, u32, u32, u64), usize> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        if f.kind == FlowKind::Send {
            send_at.insert((f.stream.as_str(), f.src, f.dst, f.seq), i);
        }
    }
    let mut coll_groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        if f.kind == FlowKind::Collective {
            coll_groups.entry(f.seq).or_default().push(i);
        }
    }

    // Longest busy path over the DAG in virtual-time order (all edges point
    // forward in t_ns, so sorting by completion time is a topological
    // order; ties break by rank then program position for determinism).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        flows[a]
            .t_ns
            .partial_cmp(&flows[b].t_ns)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| flows[a].rank().cmp(&flows[b].rank()))
            .then_with(|| a.cmp(&b))
    });
    let mut cp = vec![0.0f64; n];
    let mut via: Vec<Option<usize>> = vec![None; n];
    let mut matched = 0usize;
    let mut unmatched_recvs = 0usize;
    for &i in &order {
        let f = flows[i];
        let mut best = 0.0f64;
        let mut best_via: Option<usize> = None;
        let consider = |j: Option<usize>, best: &mut f64, best_via: &mut Option<usize>| {
            if let Some(j) = j {
                if cp[j] > *best {
                    *best = cp[j];
                    *best_via = Some(j);
                }
            }
        };
        consider(prev[i], &mut best, &mut best_via);
        match f.kind {
            FlowKind::Recv => match send_at.get(&(f.stream.as_str(), f.src, f.dst, f.seq)) {
                Some(&s) => {
                    matched += 1;
                    consider(Some(s), &mut best, &mut best_via);
                }
                None => unmatched_recvs += 1,
            },
            FlowKind::Collective => {
                if let Some(group) = coll_groups.get(&f.seq) {
                    for &g in group {
                        consider(prev[g], &mut best, &mut best_via);
                    }
                }
            }
            FlowKind::Send => {}
        }
        // The clamp: no dependency chain can carry more busy time up to
        // t(e) than t(e) itself — see module docs.
        cp[i] = (best + busy[i]).min(f.t_ns.max(0.0));
        via[i] = best_via;
    }

    // Per-rank timelines + aggregate waits.
    let mut ranks: Vec<RankTimeline> = Vec::with_capacity(rank_ids.len());
    let mut recv_wait_ns = 0.0f64;
    let mut coll_wait_ns = 0.0f64;
    let mut retry_wait_ns = 0.0f64;
    for &r in &rank_ids {
        let ids = &by_rank[&r];
        let mut t = RankTimeline {
            rank: r,
            final_ns: 0.0,
            busy_ns: 0.0,
            idle_ns: 0.0,
            events: ids.len(),
        };
        for &i in ids {
            let f = flows[i];
            t.final_ns = f.t_ns.max(t.final_ns);
            t.busy_ns += busy[i];
            t.idle_ns += f.wait_ns;
            match f.kind {
                FlowKind::Recv => recv_wait_ns += f.wait_ns,
                FlowKind::Collective => coll_wait_ns += f.wait_ns,
                FlowKind::Send => retry_wait_ns += f.wait_ns,
            }
        }
        ranks.push(t);
    }
    let wall_ns = flows.iter().map(|f| f.t_ns).fold(0.0, f64::max);
    let max_busy = ranks.iter().map(|r| r.busy_ns).fold(0.0, f64::max);
    let mean_busy = ranks.iter().map(|r| r.busy_ns).sum::<f64>() / ranks.len() as f64;
    let imbalance_pct = if max_busy > 0.0 {
        100.0 * (max_busy - mean_busy) / max_busy
    } else {
        0.0
    };
    let straggler = ranks
        .iter()
        .max_by(|a, b| {
            a.busy_ns
                .partial_cmp(&b.busy_ns)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.rank.cmp(&a.rank))
        })
        .map(|r| r.rank)
        .unwrap_or(0);

    // Critical path: walk back from the event with the largest cp.
    let end = order
        .iter()
        .copied()
        .max_by(|&a, &b| {
            cp[a]
                .partial_cmp(&cp[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.cmp(&a))
        })
        .unwrap();
    let critical_path_ns = cp[end];
    let mut seg: HashMap<&str, (f64, usize)> = HashMap::new();
    let mut cur = Some(end);
    while let Some(i) = cur {
        let e = seg.entry(flows[i].stream.as_str()).or_insert((0.0, 0));
        e.0 += busy[i];
        e.1 += 1;
        cur = via[i];
    }
    let mut critical_path: Vec<PathSegment> = seg
        .into_iter()
        .map(|(stream, (busy_ns, events))| PathSegment {
            stream: stream.to_string(),
            busy_ns,
            events,
        })
        .collect();
    critical_path.sort_by(|a, b| {
        b.busy_ns
            .partial_cmp(&a.busy_ns)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.stream.cmp(&b.stream))
    });

    // Per-edge attribution + comm/compute overlap.
    let mut edge_map: HashMap<(u32, u32), EdgeAttribution> = HashMap::new();
    let mut in_flight_ns = 0.0f64;
    let mut overlapped_ns = 0.0f64;
    for (i, f) in flows.iter().enumerate() {
        if f.src == f.dst && f.kind == FlowKind::Collective {
            continue;
        }
        let e = edge_map
            .entry((f.src, f.dst))
            .or_insert_with(|| EdgeAttribution {
                src: f.src,
                dst: f.dst,
                messages: 0,
                bytes: 0,
                recv_wait_ns: 0.0,
                retry_wait_ns: 0.0,
            });
        match f.kind {
            FlowKind::Send => {
                e.messages += 1;
                e.bytes += f.bytes;
                e.retry_wait_ns += f.wait_ns;
            }
            FlowKind::Recv => {
                e.recv_wait_ns += f.wait_ns;
                if let Some(&s) = send_at.get(&(f.stream.as_str(), f.src, f.dst, f.seq)) {
                    let flight = (f.t_ns - flows[s].t_ns).max(0.0);
                    in_flight_ns += flight;
                    overlapped_ns += (flight - f.wait_ns).max(0.0);
                }
            }
            FlowKind::Collective => {}
        }
        let _ = i;
    }
    let mut edges: Vec<EdgeAttribution> = edge_map.into_values().collect();
    edges.sort_by(|a, b| {
        (b.recv_wait_ns + b.retry_wait_ns)
            .partial_cmp(&(a.recv_wait_ns + a.retry_wait_ns))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.src, a.dst).cmp(&(b.src, b.dst)))
    });
    let overlap_pct = if in_flight_ns > 0.0 {
        100.0 * overlapped_ns / in_flight_ns
    } else {
        100.0
    };

    Some(RunAnalysis {
        engine,
        width,
        height,
        nodes: rank_ids.len(),
        wall_ns,
        critical_path_ns,
        ranks,
        imbalance_pct,
        straggler,
        critical_path,
        recv_wait_ns,
        coll_wait_ns,
        retry_wait_ns,
        edges,
        overlap_pct,
        matched_flows: matched,
        unmatched_recvs,
    })
}

/// Analyzes every run in a (possibly multi-run) journal, skipping runs
/// without flow events.
pub fn analyze_journal(events: &[Event]) -> Vec<RunAnalysis> {
    crate::chrome::split_runs(events)
        .iter()
        .filter_map(|run| analyze_run(run))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::FlowKind;

    fn flow(kind: FlowKind, stream: &str, src: u32, dst: u32, seq: u64, t: f64, w: f64) -> Event {
        Event {
            t_us: 0,
            kind: EventKind::Flow {
                rec: FlowRecord {
                    kind,
                    stream: stream.to_string(),
                    src,
                    dst,
                    seq,
                    bytes: 8,
                    t_ns: t,
                    wait_ns: w,
                },
            },
        }
    }

    /// Rank 0 computes 100 ns then sends; rank 1 receives at 130 ns having
    /// waited 90 ns (it was ready at 40 ns).
    fn two_rank_events() -> Vec<Event> {
        vec![
            flow(FlowKind::Send, "work", 0, 1, 0, 100.0, 0.0),
            flow(FlowKind::Recv, "work", 0, 1, 0, 130.0, 90.0),
        ]
    }

    #[test]
    fn empty_and_flowless_journals_yield_none() {
        assert!(analyze_run(&[]).is_none());
        let no_flows = vec![Event {
            t_us: 0,
            kind: EventKind::MergeDone { num_regions: 3 },
        }];
        assert!(analyze_run(&no_flows).is_none());
    }

    #[test]
    fn critical_path_crosses_the_message_edge() {
        let a = analyze_run(&two_rank_events()).unwrap();
        assert_eq!(a.nodes, 2);
        assert_eq!(a.wall_ns, 130.0);
        // Rank 0 busy 100, rank 1 busy 130−90=40; the path is rank 0's
        // send (100) plus rank 1's post-arrival work (40) = 140, clamped
        // to wall 130.
        assert_eq!(a.max_busy_ns(), 100.0);
        assert!(a.critical_path_ns <= a.wall_ns + 1e-9);
        assert!(a.critical_path_ns >= a.max_busy_ns() - 1e-9);
        assert_eq!(a.straggler, 0);
        assert_eq!(a.recv_wait_ns, 90.0);
        assert_eq!(a.matched_flows, 1);
        assert_eq!(a.unmatched_recvs, 0);
        // The message was in flight 30 ns, the receiver blocked 90 ≥ 30,
        // so nothing overlapped.
        assert_eq!(a.overlap_pct, 0.0);
        let edge = &a.edges[0];
        assert_eq!((edge.src, edge.dst), (0, 1));
        assert_eq!(edge.recv_wait_ns, 90.0);
    }

    #[test]
    fn collective_waits_attribute_to_the_rendezvous() {
        // Rank 0 reaches the barrier at 100, rank 1 at 40 (waits 60); both
        // exit at 110.
        let events = vec![
            flow(FlowKind::Collective, "sync", 0, 0, 0, 110.0, 0.0),
            flow(FlowKind::Collective, "sync", 1, 1, 0, 110.0, 60.0),
        ];
        let a = analyze_run(&events).unwrap();
        assert_eq!(a.coll_wait_ns, 60.0);
        assert_eq!(a.straggler, 0);
        assert!(a.critical_path_ns <= a.wall_ns + 1e-9);
        assert!(a.critical_path_ns >= a.max_busy_ns() - 1e-9);
        // Collectives are node-local records, not edges.
        assert!(a.edges.is_empty());
    }

    #[test]
    fn truncated_journal_degrades_gracefully() {
        // The recv survives but its send was lost with the journal tail.
        let events = vec![flow(FlowKind::Recv, "work", 0, 1, 0, 130.0, 90.0)];
        let a = analyze_run(&events).unwrap();
        assert_eq!(a.unmatched_recvs, 1);
        assert_eq!(a.matched_flows, 0);
        assert!(a.critical_path_ns <= a.wall_ns + 1e-9);
    }

    #[test]
    fn imbalance_names_the_heavy_rank() {
        let events = vec![
            flow(FlowKind::Send, "work", 0, 1, 0, 300.0, 0.0),
            flow(FlowKind::Recv, "work", 0, 1, 0, 330.0, 230.0),
        ];
        let a = analyze_run(&events).unwrap();
        // busy: rank 0 = 300, rank 1 = 100; mean 200.
        assert_eq!(a.straggler, 0);
        assert!((a.imbalance_pct - 100.0 * (300.0 - 200.0) / 300.0).abs() < 1e-9);
        let json = a.to_json();
        assert!(json.get("critical_path_ms").is_some());
        assert!(json.get("imbalance_pct").is_some());
        let text = a.render();
        assert!(text.contains("straggler"));
    }
}
