//! Tiled sharded segmentation: shard → per-tile split+merge → stitch.
//!
//! The paper's message-passing formulation already splits the image into
//! per-processor subimages and reconciles regions across subimage
//! boundaries; this module applies the same idea at host scale so an image
//! far larger than one workspace arena can stream through tile-sized
//! plans. A [`TiledRunner`] shards an image into a [`TileGrid`] of tiles
//! (floor-split bounds, so non-divisible shapes produce slightly uneven
//! edge tiles and every tile stays non-empty), runs the existing
//! split+merge driver per tile on a worker pool — one recycled
//! [`HostPipeline`] (plan + workspace) per worker, so a same-shape image
//! stream keeps the zero-steady-state-allocation property — and then
//! stitches the tiles with a boundary pass:
//!
//! 1. per-tile region statistics are carried in the 7-word stats wire
//!    codec of [`crate::kernels`] (the same record the CM-5 engine ships
//!    between nodes);
//! 2. local labels are offset into one global vertex space and cross-tile
//!    adjacent label pairs are collected **along tile seams only** (the
//!    interior adjacencies were already resolved by the per-tile merges);
//! 3. the CSR [`Merger`] runs on that boundary RAG until quiescence;
//! 4. one fused gather+first-appearance relabel
//!    ([`crate::pipeline`]'s `compact_gather`) produces the final dense
//!    labels in global raster order.
//!
//! ## Invariance
//!
//! For scenes whose flat regions are pairwise separated by more than the
//! threshold, the stitched partition is *identical* to a whole-image run
//! under any tie policy (see DESIGN.md §17 for the argument); the
//! differential tests enforce exact label equality for the deterministic
//! tie families. For arbitrary scenes the mutual-choice merge is
//! order-dependent, so tiling — like any other schedule change — may pick
//! a different (equally valid) fixed point.
//!
//! ## Telemetry
//!
//! With an enabled sink the runner emits the span hierarchy
//! `tiled > tile:<i> > run > ...` followed by a `tiled > stitch` span and
//! `tiles.*` counters. Telemetry-enabled runs always execute on **one**
//! worker regardless of [`TiledRunner::jobs`] (exactly like the batch
//! runtime) so the journal's strict span nesting stays valid.

use crate::config::{Config, Connectivity, RegionStats};
use crate::engine::Segmentation;
use crate::kernels::{stats_from_words, stats_to_words, STATS_WIRE_WORDS};
use crate::merge::Merger;
use crate::pipeline::{compact_gather, HostPipeline, Workspace};
use crate::telemetry::{NullTelemetry, SpanGuard, SpanKind, Telemetry};
use rg_imaging::Image;
use std::sync::Mutex;

/// A rows × cols tile decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    rows: usize,
    cols: usize,
}

impl TileGrid {
    /// A grid of `rows` × `cols` tiles.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile grid dimensions must be nonzero");
        Self { rows, cols }
    }

    /// Parses a `RxC` spec (e.g. `"4x4"`, `"2x8"`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let err = || format!("expected ROWSxCOLS with positive integers (e.g. 4x4), got {spec:?}");
        let (r, c) = spec.split_once(['x', 'X']).ok_or_else(err)?;
        let rows: usize = r.trim().parse().map_err(|_| err())?;
        let cols: usize = c.trim().parse().map_err(|_| err())?;
        if rows == 0 || cols == 0 {
            return Err(err());
        }
        Ok(Self { rows, cols })
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total tile count.
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }

    /// The grid actually used for a `width` × `height` image: each
    /// dimension is clamped so every tile holds at least one pixel (a
    /// `9x9` grid over a 5×5 image runs as `5x5`).
    pub fn clamp_to(&self, width: usize, height: usize) -> Self {
        Self {
            rows: self.rows.min(height).max(1),
            cols: self.cols.min(width).max(1),
        }
    }

    /// Bounds of tile `(r, c)` over a `width` × `height` image:
    /// floor-split `[r·H/rows, (r+1)·H/rows)` bands, so non-divisible
    /// shapes spread the remainder over the trailing tiles and every tile
    /// is non-empty whenever the grid is clamped.
    pub fn tile(&self, r: usize, c: usize, width: usize, height: usize) -> TileRect {
        debug_assert!(r < self.rows && c < self.cols);
        let y0 = r * height / self.rows;
        let y1 = (r + 1) * height / self.rows;
        let x0 = c * width / self.cols;
        let x1 = (c + 1) * width / self.cols;
        TileRect {
            x0,
            y0,
            width: x1 - x0,
            height: y1 - y0,
        }
    }
}

impl std::fmt::Display for TileGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Pixel bounds of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileRect {
    /// Leftmost column.
    pub x0: usize,
    /// Topmost row.
    pub y0: usize,
    /// Tile width in pixels.
    pub width: usize,
    /// Tile height in pixels.
    pub height: usize,
}

/// Scalar summary of one tiled run (returned by [`TiledRunner::run_into`]
/// and mirrored in the `tiles.*` telemetry counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiledStats {
    /// Grid rows actually used (after clamping to the image).
    pub rows: usize,
    /// Grid columns actually used.
    pub cols: usize,
    /// Total tiles run.
    pub tiles: usize,
    /// Sum of per-tile region counts before the stitch.
    pub tile_regions: usize,
    /// Cross-tile adjacent region pairs collected along the seams.
    pub seam_edges: usize,
    /// Merges performed by the stitch pass.
    pub stitch_merges: u64,
    /// Stitch merge iterations until quiescence.
    pub stitch_iterations: u32,
}

/// Per-worker state: one warm pipeline plus recycled crop/output buffers.
struct WorkerSlot {
    pipe: HostPipeline<u8>,
    tile_img: Image<u8>,
    seg: Segmentation,
    region_stats: Vec<RegionStats<u32>>,
}

impl WorkerSlot {
    fn new(config: Config, parallel: bool) -> Self {
        Self {
            pipe: HostPipeline::new(config, parallel),
            tile_img: Image::new(1, 1, 0),
            seg: Segmentation::default(),
            region_stats: Vec::new(),
        }
    }
}

/// Per-tile result, recycled across runs (high-water capacity kept).
#[derive(Default)]
struct TileSlot {
    rect: TileRect,
    labels: Vec<u32>,
    num_regions: usize,
    num_squares: usize,
    split_iterations: u32,
    merge_iterations: u32,
    /// Region stats in the [`STATS_WIRE_WORDS`]-word wire codec, one
    /// record per local region, indexed by local label.
    stats_words: Vec<u32>,
}

/// Runs one tile through the worker's warm pipeline and refills `slot`.
fn run_tile(
    worker: &mut WorkerSlot,
    img: &Image<u8>,
    slot: &mut TileSlot,
    tel: &mut dyn Telemetry,
) {
    let r = slot.rect;
    img.crop_into(r.x0, r.y0, r.width, r.height, &mut worker.tile_img);
    worker
        .pipe
        .run_image_into(&worker.tile_img, tel, &mut worker.seg);
    let seg = &worker.seg;
    slot.labels.clear();
    slot.labels.extend_from_slice(&seg.labels);
    slot.num_regions = seg.num_regions;
    slot.num_squares = seg.num_squares;
    slot.split_iterations = seg.split_iterations;
    slot.merge_iterations = seg.merge_iterations;

    // One pass over the tile's pixels accumulates the per-region stats the
    // stitch RAG needs, then encodes them in the wire codec.
    let stats = &mut worker.region_stats;
    stats.clear();
    stats.resize(
        seg.num_regions,
        RegionStats {
            min: u32::MAX,
            max: 0,
            sum: 0,
            count: 0,
        },
    );
    for (&label, &px) in seg.labels.iter().zip(worker.tile_img.pixels()) {
        let s = &mut stats[label as usize];
        let v = u32::from(px);
        s.min = s.min.min(v);
        s.max = s.max.max(v);
        s.sum += u64::from(v);
        s.count += 1;
    }
    slot.stats_words.clear();
    slot.stats_words.reserve(seg.num_regions * STATS_WIRE_WORDS);
    for (label, s) in stats.iter().enumerate() {
        slot.stats_words
            .extend_from_slice(&stats_to_words(label as u32, s));
    }
}

/// The tiled execution layer: shards an image into a [`TileGrid`], runs
/// the host split+merge pipeline per tile on a worker pool, and stitches
/// the tiles with a seam RAG + boundary merge + global relabel.
///
/// All scratch — per-worker pipelines, per-tile result slots, the stitch
/// graph and compaction tables — follows the workspace high-water rule:
/// buffers grow to the largest image seen and are refilled in place, so a
/// same-shape image stream runs allocation-free in steady state.
pub struct TiledRunner {
    config: Config,
    parallel: bool,
    grid: TileGrid,
    jobs: usize,
    workers: Vec<WorkerSlot>,
    tiles: Vec<TileSlot>,
    // Stitch scratch (all high-water recycled).
    vertex_of: Vec<u32>,
    stats: Vec<RegionStats<u32>>,
    seam_edges: Vec<(u32, u32)>,
    ids: Vec<u64>,
    merger: Option<Merger<u32>>,
    by_vertex: Vec<u32>,
    map_val: Vec<u32>,
    map_stamp: Vec<u32>,
    epoch: u32,
}

impl TiledRunner {
    /// A runner over `grid` with `jobs` workers; `parallel` selects the
    /// rayon host engine for the per-tile runs.
    pub fn new(config: Config, parallel: bool, grid: TileGrid, jobs: usize) -> Self {
        Self {
            config,
            parallel,
            grid,
            jobs: jobs.max(1),
            workers: Vec::new(),
            tiles: Vec::new(),
            vertex_of: Vec::new(),
            stats: Vec::new(),
            seam_edges: Vec::new(),
            ids: Vec::new(),
            merger: None,
            by_vertex: Vec::new(),
            map_val: Vec::new(),
            map_stamp: Vec::new(),
            epoch: 0,
        }
    }

    /// The configured tile grid (before per-image clamping).
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// The configured worker count (forced to 1 when telemetry is on).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The first worker's workspace, for reuse inspection in tests
    /// (`None` before the first run).
    pub fn worker_workspace(&self) -> Option<&Workspace<u8>> {
        self.workers.first().map(|w| w.pipe.workspace())
    }

    /// Segments `img` into the recyclable `out` buffer and returns the
    /// tiled-run summary. See the module docs for the execution and
    /// telemetry model.
    pub fn run_into(
        &mut self,
        img: &Image<u8>,
        tel: &mut dyn Telemetry,
        out: &mut Segmentation,
    ) -> TiledStats {
        let (w, h) = (img.width(), img.height());
        let grid = self.grid.clamp_to(w, h);
        self.prepare_tiles(grid, w, h);
        let enabled = tel.enabled();
        let jobs = if enabled {
            1
        } else {
            self.jobs.min(grid.count()).max(1)
        };
        while self.workers.len() < jobs {
            self.workers
                .push(WorkerSlot::new(self.config, self.parallel));
        }

        if jobs <= 1 {
            let worker = &mut self.workers[0];
            if enabled {
                let mut tiled = SpanGuard::enter(&mut *tel, SpanKind::Tiled);
                let tel = tiled.tel();
                for (i, slot) in self.tiles.iter_mut().enumerate() {
                    let mut span = SpanGuard::enter(&mut *tel, SpanKind::Tile(i as u32));
                    run_tile(worker, img, slot, span.tel());
                }
                let stats = {
                    let mut span = SpanGuard::enter(&mut *tel, SpanKind::Stitch);
                    self.stitch(grid, w, h, out, span.tel())
                };
                tel.counter("tiles.rows", stats.rows as f64);
                tel.counter("tiles.cols", stats.cols as f64);
                tel.counter("tiles.count", stats.tiles as f64);
                tel.counter("tiles.tile_regions", stats.tile_regions as f64);
                tel.counter("tiles.seam_edges", stats.seam_edges as f64);
                tel.counter("tiles.stitch_merges", stats.stitch_merges as f64);
                tel.counter(
                    "tiles.stitch_iterations",
                    f64::from(stats.stitch_iterations),
                );
                return stats;
            }
            for slot in self.tiles.iter_mut() {
                run_tile(worker, img, slot, &mut NullTelemetry);
            }
        } else {
            // Dynamic tile queue: each worker owns its pipeline and pulls
            // disjoint `&mut TileSlot`s through the shared iterator, so no
            // tile result is ever aliased.
            let queue = Mutex::new(self.tiles.iter_mut());
            std::thread::scope(|scope| {
                let queue = &queue;
                for worker in self.workers[..jobs].iter_mut() {
                    scope.spawn(move || loop {
                        let next = queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .next();
                        let Some(slot) = next else { break };
                        run_tile(worker, img, slot, &mut NullTelemetry);
                    });
                }
            });
        }
        self.stitch(grid, w, h, out, &mut NullTelemetry)
    }

    /// Convenience: segment `img` into a fresh [`Segmentation`].
    pub fn run(&mut self, img: &Image<u8>, tel: &mut dyn Telemetry) -> (Segmentation, TiledStats) {
        let mut out = Segmentation::default();
        let stats = self.run_into(img, tel, &mut out);
        (out, stats)
    }

    /// Refits the per-tile slots to this image's clamped grid (slot
    /// buffers keep their high-water capacity).
    fn prepare_tiles(&mut self, grid: TileGrid, w: usize, h: usize) {
        let count = grid.count();
        self.tiles.truncate(count);
        while self.tiles.len() < count {
            self.tiles.push(TileSlot::default());
        }
        for r in 0..grid.rows() {
            for c in 0..grid.cols() {
                self.tiles[r * grid.cols() + c].rect = grid.tile(r, c, w, h);
            }
        }
    }

    /// The boundary pass: global vertex space, seam RAG, boundary merge,
    /// fused global relabel. Runs single-threaded (seam work is a lower-
    /// order term next to the per-tile phase).
    fn stitch(
        &mut self,
        grid: TileGrid,
        w: usize,
        h: usize,
        out: &mut Segmentation,
        _tel: &mut dyn Telemetry,
    ) -> TiledStats {
        // Offset each tile's local labels into one global vertex space and
        // decode the wire-codec stats into the stitch RAG's vertex table.
        self.stats.clear();
        self.vertex_of.clear();
        self.vertex_of.resize(w * h, 0);
        let mut offset = 0u32;
        for slot in &self.tiles {
            for (words, local) in slot.stats_words.chunks_exact(STATS_WIRE_WORDS).zip(0u32..) {
                let (id, stats) = stats_from_words(words);
                debug_assert_eq!(id, local, "wire records are indexed by local label");
                self.stats.push(stats);
            }
            let r = slot.rect;
            for ty in 0..r.height {
                let row = &slot.labels[ty * r.width..(ty + 1) * r.width];
                let base = (r.y0 + ty) * w + r.x0;
                for (dst, &l) in self.vertex_of[base..base + r.width].iter_mut().zip(row) {
                    *dst = offset + l;
                }
            }
            offset += slot.num_regions as u32;
        }
        let total_vertices = offset as usize;

        // Cross-tile adjacent pairs along the seams only. Tiles partition
        // the image into grid-aligned bands, so every cross-tile pixel
        // adjacency crosses an internal band boundary; duplicates (corner
        // diagonals appear from both seams) fall to the dedup.
        let eight = self.config.connectivity == Connectivity::Eight;
        let v = &self.vertex_of;
        let edges = &mut self.seam_edges;
        edges.clear();
        let push = |a: u32, b: u32, edges: &mut Vec<(u32, u32)>| {
            debug_assert_ne!(a, b, "seam endpoints live in different tiles");
            if a < b {
                edges.push((a, b));
            } else {
                edges.push((b, a));
            }
        };
        for c in 1..grid.cols() {
            let xb = c * w / grid.cols();
            for y in 0..h {
                push(v[y * w + xb - 1], v[y * w + xb], edges);
                if eight && y + 1 < h {
                    push(v[y * w + xb - 1], v[(y + 1) * w + xb], edges);
                    push(v[(y + 1) * w + xb - 1], v[y * w + xb], edges);
                }
            }
        }
        for r in 1..grid.rows() {
            let yb = r * h / grid.rows();
            for x in 0..w {
                push(v[(yb - 1) * w + x], v[yb * w + x], edges);
                if eight && x + 1 < w {
                    push(v[(yb - 1) * w + x], v[yb * w + x + 1], edges);
                    push(v[(yb - 1) * w + x + 1], v[yb * w + x], edges);
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let seam_edges = edges.len();

        // Boundary merge to quiescence on the seam RAG. Vertex ids are the
        // global vertex indices themselves (dense, strictly increasing).
        self.ids.clear();
        self.ids.extend(0..total_vertices as u64);
        let merger = match &mut self.merger {
            Some(m) => {
                m.reset_from(&self.stats, edges, &self.ids, &self.config, false);
                m
            }
            slot @ None => {
                let mut m = Merger::hollow(&self.config);
                m.reset_from(&self.stats, edges, &self.ids, &self.config, false);
                slot.insert(m)
            }
        };
        while !merger.is_done() {
            merger.step();
        }
        let stitch_iterations = merger.iterations();
        let stitch_merges: u64 = merger
            .merges_per_iteration()
            .iter()
            .map(|&m| u64::from(m))
            .sum();

        // Fused gather + first-appearance compaction over the global
        // raster order — the same labeling the whole-image engines emit.
        merger.labels_by_vertex_into(&mut self.by_vertex);
        let num_regions = compact_gather(
            &self.vertex_of,
            &self.by_vertex,
            &mut self.map_val,
            &mut self.map_stamp,
            &mut self.epoch,
            &mut out.labels,
        );

        out.width = w;
        out.height = h;
        out.num_regions = num_regions;
        out.num_squares = self.tiles.iter().map(|t| t.num_squares).sum();
        out.split_iterations = self
            .tiles
            .iter()
            .map(|t| t.split_iterations)
            .max()
            .unwrap_or(0);
        out.merge_iterations = self
            .tiles
            .iter()
            .map(|t| t.merge_iterations)
            .max()
            .unwrap_or(0)
            + stitch_iterations;
        out.merges_per_iteration.clear();
        out.merges_per_iteration
            .extend_from_slice(merger.merges_per_iteration());

        TiledStats {
            rows: grid.rows(),
            cols: grid.cols(),
            tiles: grid.count(),
            tile_regions: total_vertices,
            seam_edges,
            stitch_merges,
            stitch_iterations,
        }
    }
}

/// One-shot convenience: segment `img` through a fresh [`TiledRunner`].
pub fn segment_tiled(
    img: &Image<u8>,
    config: &Config,
    grid: TileGrid,
    jobs: usize,
) -> Segmentation {
    let mut runner = TiledRunner::new(*config, false, grid, jobs);
    let mut out = Segmentation::default();
    runner.run_into(img, &mut NullTelemetry, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TieBreak;
    use crate::engine::segment;
    use rg_imaging::synth;

    #[test]
    fn grid_parse_and_clamp() {
        assert_eq!(TileGrid::parse("4x4").unwrap(), TileGrid::new(4, 4));
        assert_eq!(TileGrid::parse("2X8").unwrap(), TileGrid::new(2, 8));
        for bad in ["", "4", "0x4", "4x0", "x", "axb", "4x4x4", "-1x2"] {
            assert!(TileGrid::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(TileGrid::new(9, 9).clamp_to(5, 3), TileGrid::new(3, 5));
        assert_eq!(TileGrid::new(2, 2).clamp_to(100, 1), TileGrid::new(1, 2));
    }

    #[test]
    fn tile_bounds_cover_exactly_without_overlap() {
        for (w, h, rows, cols) in [(513, 100, 4, 3), (7, 7, 3, 3), (1, 64, 8, 1), (64, 1, 1, 8)] {
            let grid = TileGrid::new(rows, cols).clamp_to(w, h);
            let mut covered = vec![0u8; w * h];
            for r in 0..grid.rows() {
                for c in 0..grid.cols() {
                    let t = grid.tile(r, c, w, h);
                    assert!(t.width > 0 && t.height > 0, "empty tile at ({r},{c})");
                    for y in t.y0..t.y0 + t.height {
                        for x in t.x0..t.x0 + t.width {
                            covered[y * w + x] += 1;
                        }
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "{w}x{h} {rows}x{cols}: tiles must partition the image"
            );
        }
    }

    #[test]
    fn one_by_one_grid_matches_whole_image_exactly() {
        // A 1x1 grid is the whole image with a no-op stitch: labels must be
        // bit-identical to the host engine on any scene, any tie policy.
        let img = synth::random_rects(96, 64, 9, 3);
        for tie in [
            TieBreak::SmallestId,
            TieBreak::LargestId,
            TieBreak::Random { seed: 9 },
        ] {
            let cfg = Config::with_threshold(12).tie_break(tie);
            let whole = segment(&img, &cfg);
            let tiled = segment_tiled(&img, &cfg, TileGrid::new(1, 1), 1);
            assert_eq!(whole.labels, tiled.labels, "tie={tie:?}");
            assert_eq!(whole.num_regions, tiled.num_regions);
        }
    }

    #[test]
    fn separated_scene_is_partition_identical_across_grids_and_jobs() {
        // Flat regions pairwise separated by > T: the fixed point is unique
        // (DESIGN.md §17), so tiling must reproduce the exact labels.
        let img = synth::rect_collection(128);
        for tie in [TieBreak::SmallestId, TieBreak::LargestId] {
            let cfg = Config::with_threshold(10).tie_break(tie);
            let whole = segment(&img, &cfg);
            for (rows, cols) in [(2, 2), (3, 5), (1, 7), (4, 1)] {
                for jobs in [1, 4] {
                    let tiled = segment_tiled(&img, &cfg, TileGrid::new(rows, cols), jobs);
                    assert_eq!(
                        whole.labels, tiled.labels,
                        "grid {rows}x{cols} jobs {jobs} tie {tie:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn eight_connectivity_stitches_corner_diagonals() {
        // Four flat quadrants meeting at the image center, tiled 2x2 right
        // through the meeting point: the diagonal quadrant pairs are
        // adjacent only across the tile corner, so 8-connectivity must
        // carry them through the seam RAG.
        let img = Image::from_fn(8, 8, |x, y| match (x < 4, y < 4) {
            (true, true) => 10u8,
            (false, true) => 100,
            (true, false) => 200,
            (false, false) => 14,
        });
        let cfg = Config::with_threshold(6)
            .connectivity(Connectivity::Eight)
            .tie_break(TieBreak::SmallestId);
        let whole = segment(&img, &cfg);
        let tiled = segment_tiled(&img, &cfg, TileGrid::new(2, 2), 1);
        assert_eq!(whole.labels, tiled.labels);
        // Quadrants 10 and 14 touch only at the center corner and satisfy
        // the criterion (range 4 ≤ 6), so both runs weld them: 3 regions.
        assert_eq!(whole.num_regions, 3);
        assert_eq!(tiled.num_regions, 3);
    }

    #[test]
    fn stitch_merges_regions_cut_by_seams() {
        // One flat image: every tile collapses to a single region and the
        // stitch must weld them all back into one.
        let img: Image<u8> = Image::new(33, 17, 42);
        let cfg = Config::with_threshold(5);
        let mut runner = TiledRunner::new(cfg, false, TileGrid::new(3, 4), 2);
        let (seg, stats) = runner.run(&img, &mut NullTelemetry);
        assert_eq!(seg.num_regions, 1);
        assert!(seg.labels.iter().all(|&l| l == 0));
        assert_eq!(stats.tiles, 12);
        assert_eq!(stats.tile_regions, 12);
        assert_eq!(stats.stitch_merges, 11);
        assert!(stats.seam_edges > 0);
    }

    #[test]
    fn telemetry_run_nests_tile_and_stitch_spans() {
        use crate::journal::{validate_journal, EventKind, EventLog};
        let img = synth::rect_collection(64);
        let cfg = Config::with_threshold(10).tie_break(TieBreak::SmallestId);
        let mut runner = TiledRunner::new(cfg, false, TileGrid::new(2, 2), 4);
        let mut log = EventLog::in_memory();
        let mut out = Segmentation::default();
        let stats = runner.run_into(&img, &mut log, &mut out);
        assert_eq!(stats.tiles, 4);
        validate_journal(log.events()).expect("tiled journal must validate");
        let labels: Vec<String> = log
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SpanBegin { span } => Some(span.label()),
                _ => None,
            })
            .collect();
        assert_eq!(labels[0], "tiled");
        assert_eq!(labels[1], "tile:0");
        assert_eq!(labels[2], "run");
        assert!(labels.contains(&"tile:3".to_string()));
        assert!(labels.contains(&"stitch".to_string()));
        let counters: Vec<&str> = log
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Counter { name, .. } if name.starts_with("tiles.") => {
                    Some(name.as_str())
                }
                _ => None,
            })
            .collect();
        for want in ["tiles.count", "tiles.seam_edges", "tiles.stitch_merges"] {
            assert!(counters.contains(&want), "missing counter {want}");
        }
        // Telemetry output is bit-identical to the untraced path.
        let quiet = segment_tiled(&img, &cfg, TileGrid::new(2, 2), 1);
        assert_eq!(out.labels, quiet.labels);
    }

    #[test]
    fn runner_reuse_matches_fresh_runs_across_shapes() {
        let cfg = Config::with_threshold(10).tie_break(TieBreak::SmallestId);
        let mut runner = TiledRunner::new(cfg, false, TileGrid::new(2, 3), 2);
        let images = [
            synth::rect_collection(64),
            synth::nested_rects(96),
            synth::rect_collection(64),
        ];
        let mut out = Segmentation::default();
        for img in &images {
            runner.run_into(img, &mut NullTelemetry, &mut out);
            let fresh = segment_tiled(img, &cfg, TileGrid::new(2, 3), 1);
            assert_eq!(out.labels, fresh.labels);
            assert_eq!(out.num_regions, fresh.num_regions);
        }
    }
}
