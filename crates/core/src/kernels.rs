//! Shared scalar kernels for the accelerator engines' choice/weight glue.
//!
//! The data-parallel (`rg-datapar`) and message-passing (`rg-msgpass`)
//! engines both lower the merge criterion onto their machine primitives —
//! elementwise zips over gathered endpoint fields on the CM-2, and a
//! fixed-width wire codec for ghost-region stats on the CM-5. Before this
//! module each crate carried its own copy of the scalar glue (pooled
//! extrema, mean-pair weights, the 7-word stats codec); both now call the
//! named kernels below, so the two lowerings cannot drift apart.
//!
//! Everything here is a **pure scalar function**: the engines keep their
//! own zip/gather shapes (machine op counts are part of the simulated cost
//! model and must not change), only the closure bodies are shared.

use crate::config::{
    mean_satisfies, mean_weight_fp16, range_satisfies, range_weight_fp16, RegionStats,
};

/// Pooled minimum of two region minima (the union's `lo`).
#[inline]
pub fn union_lo(a: u32, b: u32) -> u32 {
    a.min(b)
}

/// Pooled maximum of two region maxima (the union's `hi`).
#[inline]
pub fn union_hi(a: u32, b: u32) -> u32 {
    a.max(b)
}

/// Pixel-range merge weight of a pooled `(lo, hi)` pair (16.16 fixed
/// point) — the elementwise kernel of the CM-2 weight zip.
#[inline]
pub fn range_pair_weight(lo: u32, hi: u32) -> u64 {
    range_weight_fp16(lo, hi)
}

/// Pixel-range criterion test of a pooled `(lo, hi)` pair at threshold
/// `t`.
#[inline]
pub fn range_pair_satisfies(lo: u32, hi: u32, t: u32) -> bool {
    range_satisfies(lo, hi, t)
}

/// Mean-difference merge weight of two `(sum, count)` accumulators (16.16
/// fixed point).
#[inline]
pub fn mean_pair_weight(a: (u64, u64), b: (u64, u64)) -> u64 {
    mean_weight_fp16(a.0, a.1, b.0, b.1)
}

/// Mean-difference criterion test of two `(sum, count)` accumulators at
/// threshold `t`.
#[inline]
pub fn mean_pair_satisfies(a: (u64, u64), b: (u64, u64), t: u32) -> bool {
    mean_satisfies(a.0, a.1, b.0, b.1, t)
}

/// Width of the region-stats wire record in `u32` words:
/// `id, min, max, sum_lo, sum_hi, count_lo, count_hi`.
pub const STATS_WIRE_WORDS: usize = 7;

/// Encodes a region's `(id, stats)` into the canonical
/// [`STATS_WIRE_WORDS`]-word wire record the message-passing engine ships
/// between nodes.
#[inline]
pub fn stats_to_words(id: u32, s: &RegionStats<u32>) -> [u32; STATS_WIRE_WORDS] {
    [
        id,
        s.min,
        s.max,
        s.sum as u32,
        (s.sum >> 32) as u32,
        s.count as u32,
        (s.count >> 32) as u32,
    ]
}

/// Decodes one wire record (inverse of [`stats_to_words`]).
///
/// # Panics
/// Panics if `words` is shorter than [`STATS_WIRE_WORDS`].
#[inline]
pub fn stats_from_words(words: &[u32]) -> (u32, RegionStats<u32>) {
    (
        words[0],
        RegionStats {
            min: words[1],
            max: words[2],
            sum: words[3] as u64 | ((words[4] as u64) << 32),
            count: words[5] as u64 | ((words[6] as u64) << 32),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Criterion;

    #[test]
    fn pooled_kernels_match_criterion_methods() {
        let a = RegionStats::<u32> {
            min: 3,
            max: 9,
            sum: 120,
            count: 16,
        };
        let b = RegionStats::<u32> {
            min: 5,
            max: 14,
            sum: 77,
            count: 7,
        };
        let (lo, hi) = (union_lo(a.min, b.min), union_hi(a.max, b.max));
        assert_eq!(
            range_pair_weight(lo, hi),
            Criterion::PixelRange.weight(&a, &b)
        );
        assert_eq!(
            mean_pair_weight((a.sum, a.count), (b.sum, b.count)),
            Criterion::MeanDifference.weight(&a, &b)
        );
        for t in [0, 5, 11, 100] {
            assert_eq!(
                range_pair_satisfies(lo, hi, t),
                Criterion::PixelRange.satisfies(&a, &b, t)
            );
            assert_eq!(
                mean_pair_satisfies((a.sum, a.count), (b.sum, b.count), t),
                Criterion::MeanDifference.satisfies(&a, &b, t)
            );
        }
    }

    #[test]
    fn stats_wire_codec_round_trips() {
        let s = RegionStats::<u32> {
            min: 2,
            max: 250,
            sum: (7u64 << 33) | 12345,
            count: (1u64 << 32) | 42,
        };
        let words = stats_to_words(77, &s);
        assert_eq!(words.len(), STATS_WIRE_WORDS);
        let (id, back) = stats_from_words(&words);
        assert_eq!(id, 77);
        assert_eq!(back, s);
    }
}
