//! Shared scalar kernels for the accelerator engines' choice/weight glue.
//!
//! The data-parallel (`rg-datapar`) and message-passing (`rg-msgpass`)
//! engines both lower the merge criterion onto their machine primitives —
//! elementwise zips over gathered endpoint fields on the CM-2, and a
//! fixed-width wire codec for ghost-region stats on the CM-5. Before this
//! module each crate carried its own copy of the scalar glue (pooled
//! extrema, mean-pair weights, the 7-word stats codec); both now call the
//! named kernels below, so the two lowerings cannot drift apart.
//!
//! Everything here is a **pure scalar function**: the engines keep their
//! own zip/gather shapes (machine op counts are part of the simulated cost
//! model and must not change), only the closure bodies are shared.

use crate::config::{
    mean_satisfies, mean_weight_fp16, range_satisfies, range_weight_fp16, RegionStats,
};

/// Pooled minimum of two region minima (the union's `lo`).
#[inline]
pub fn union_lo(a: u32, b: u32) -> u32 {
    a.min(b)
}

/// Pooled maximum of two region maxima (the union's `hi`).
#[inline]
pub fn union_hi(a: u32, b: u32) -> u32 {
    a.max(b)
}

/// Pixel-range merge weight of a pooled `(lo, hi)` pair (16.16 fixed
/// point) — the elementwise kernel of the CM-2 weight zip.
#[inline]
pub fn range_pair_weight(lo: u32, hi: u32) -> u64 {
    range_weight_fp16(lo, hi)
}

/// Pixel-range criterion test of a pooled `(lo, hi)` pair at threshold
/// `t`.
#[inline]
pub fn range_pair_satisfies(lo: u32, hi: u32, t: u32) -> bool {
    range_satisfies(lo, hi, t)
}

/// Mean-difference merge weight of two `(sum, count)` accumulators (16.16
/// fixed point).
#[inline]
pub fn mean_pair_weight(a: (u64, u64), b: (u64, u64)) -> u64 {
    mean_weight_fp16(a.0, a.1, b.0, b.1)
}

/// Mean-difference criterion test of two `(sum, count)` accumulators at
/// threshold `t`.
#[inline]
pub fn mean_pair_satisfies(a: (u64, u64), b: (u64, u64), t: u32) -> bool {
    mean_satisfies(a.0, a.1, b.0, b.1, t)
}

/// Mask of the even-index bits of a 64-bit word (the CM-2 context-mask
/// idiom: child blocks of one parent sit at bit positions `2i`, `2i+1`).
pub const EVEN_BITS: u64 = 0x5555_5555_5555_5555;

/// Compresses the 32 even-index bits of `w` into the low 32 bits: input
/// bit `2i` becomes output bit `i`; odd-index bits are ignored; the high
/// 32 output bits are zero. This is the inverse of a Morton interleave,
/// done in five shift/mask rounds.
#[inline]
pub fn gather_even_bits(w: u64) -> u64 {
    let mut x = w & EVEN_BITS;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// AND-combines adjacent bit pairs of `w` and compresses: output bit `i`
/// (low 32 bits) is `w[2i] & w[2i+1]`.
#[inline]
pub fn pair_and_compress(w: u64) -> u64 {
    gather_even_bits(w & (w >> 1))
}

/// Coalesces two adjacent child-bitset words into one parent word: output
/// bit `i` is set iff both horizontal children of parent block `i` are
/// set, with parents `0..32` taken from `lo` and `32..64` from `hi`. One
/// call tests 64 parent blocks against 128 child bits.
#[inline]
pub fn coalesce_pair_words(lo: u64, hi: u64) -> u64 {
    pair_and_compress(lo) | (pair_and_compress(hi) << 32)
}

/// Gathers the 2×2 child block of parent `(bx, by)` from a row-major
/// plane with row stride `stride`, in TL, TR, BL, BR order (the canonical
/// child order of the split stage's `combine_ok` calls).
#[inline]
pub fn gather2x2<T: Copy>(plane: &[T], stride: usize, bx: usize, by: usize) -> [T; 4] {
    let i = 2 * by * stride + 2 * bx;
    [
        plane[i],
        plane[i + 1],
        plane[i + stride],
        plane[i + stride + 1],
    ]
}

/// Minimum of a gathered 2×2 lane quad (branch-free tree fold).
#[inline]
pub fn lane_min4<T: Ord + Copy>(v: [T; 4]) -> T {
    v[0].min(v[1]).min(v[2].min(v[3]))
}

/// Maximum of a gathered 2×2 lane quad (branch-free tree fold).
#[inline]
pub fn lane_max4<T: Ord + Copy>(v: [T; 4]) -> T {
    v[0].max(v[1]).max(v[2].max(v[3]))
}

/// Sum of a gathered 2×2 accumulator quad (tree-shaped for the
/// autovectorizer's benefit).
#[inline]
pub fn lane_sum4(v: [u64; 4]) -> u64 {
    (v[0] + v[1]) + (v[2] + v[3])
}

/// Width of the region-stats wire record in `u32` words:
/// `id, min, max, sum_lo, sum_hi, count_lo, count_hi`.
pub const STATS_WIRE_WORDS: usize = 7;

/// Encodes a region's `(id, stats)` into the canonical
/// [`STATS_WIRE_WORDS`]-word wire record the message-passing engine ships
/// between nodes.
#[inline]
pub fn stats_to_words(id: u32, s: &RegionStats<u32>) -> [u32; STATS_WIRE_WORDS] {
    [
        id,
        s.min,
        s.max,
        s.sum as u32,
        (s.sum >> 32) as u32,
        s.count as u32,
        (s.count >> 32) as u32,
    ]
}

/// Decodes one wire record (inverse of [`stats_to_words`]).
///
/// # Panics
/// Panics if `words` is shorter than [`STATS_WIRE_WORDS`].
#[inline]
pub fn stats_from_words(words: &[u32]) -> (u32, RegionStats<u32>) {
    (
        words[0],
        RegionStats {
            min: words[1],
            max: words[2],
            sum: words[3] as u64 | ((words[4] as u64) << 32),
            count: words[5] as u64 | ((words[6] as u64) << 32),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Criterion;

    #[test]
    fn pooled_kernels_match_criterion_methods() {
        let a = RegionStats::<u32> {
            min: 3,
            max: 9,
            sum: 120,
            count: 16,
        };
        let b = RegionStats::<u32> {
            min: 5,
            max: 14,
            sum: 77,
            count: 7,
        };
        let (lo, hi) = (union_lo(a.min, b.min), union_hi(a.max, b.max));
        assert_eq!(
            range_pair_weight(lo, hi),
            Criterion::PixelRange.weight(&a, &b)
        );
        assert_eq!(
            mean_pair_weight((a.sum, a.count), (b.sum, b.count)),
            Criterion::MeanDifference.weight(&a, &b)
        );
        for t in [0, 5, 11, 100] {
            assert_eq!(
                range_pair_satisfies(lo, hi, t),
                Criterion::PixelRange.satisfies(&a, &b, t)
            );
            assert_eq!(
                mean_pair_satisfies((a.sum, a.count), (b.sum, b.count), t),
                Criterion::MeanDifference.satisfies(&a, &b, t)
            );
        }
    }

    #[test]
    fn gather_even_bits_matches_naive() {
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..256 {
            let w = next();
            let mut naive = 0u64;
            for i in 0..32 {
                naive |= ((w >> (2 * i)) & 1) << i;
            }
            assert_eq!(gather_even_bits(w), naive, "w={w:#x}");
        }
        assert_eq!(gather_even_bits(EVEN_BITS), 0xFFFF_FFFF);
        assert_eq!(gather_even_bits(!EVEN_BITS), 0);
    }

    #[test]
    fn pair_and_compress_matches_naive() {
        let mut rng = 0xfeed_f00d_dead_beefu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..256 {
            let w = next();
            let mut naive = 0u64;
            for i in 0..32 {
                let pair = ((w >> (2 * i)) & 1) & ((w >> (2 * i + 1)) & 1);
                naive |= pair << i;
            }
            assert_eq!(pair_and_compress(w), naive, "w={w:#x}");
        }
        assert_eq!(pair_and_compress(!0), 0xFFFF_FFFF);
        assert_eq!(pair_and_compress(EVEN_BITS), 0);
    }

    #[test]
    fn coalesce_pair_words_matches_naive() {
        let cases = [
            (0u64, 0u64),
            (!0, !0),
            (0b11, 0),
            (0, 0b1100),
            (0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210),
        ];
        for (lo, hi) in cases {
            let mut naive = 0u64;
            for i in 0..32 {
                let pair = ((lo >> (2 * i)) & 1) & ((lo >> (2 * i + 1)) & 1);
                naive |= pair << i;
            }
            for i in 0..32 {
                let pair = ((hi >> (2 * i)) & 1) & ((hi >> (2 * i + 1)) & 1);
                naive |= pair << (32 + i);
            }
            assert_eq!(coalesce_pair_words(lo, hi), naive, "lo={lo:#x} hi={hi:#x}");
        }
    }

    #[test]
    fn gather2x2_and_lane_folds() {
        // 4×2 plane: parent (bx=1, by=0) gathers columns 2..4 of both rows.
        let plane: [u32; 8] = [9, 1, 7, 3, 2, 8, 5, 4];
        let q = gather2x2(&plane, 4, 1, 0);
        assert_eq!(q, [7, 3, 5, 4]); // TL, TR, BL, BR
        assert_eq!(lane_min4(q), 3);
        assert_eq!(lane_max4(q), 7);
        let s = gather2x2(&[1u64, 2, 3, 4, 10, 20, 30, 40], 4, 0, 0);
        assert_eq!(lane_sum4(s), 1 + 2 + 10 + 20);
    }

    #[test]
    fn stats_wire_codec_round_trips() {
        let s = RegionStats::<u32> {
            min: 2,
            max: 250,
            sum: (7u64 << 33) | 12345,
            count: (1u64 << 32) | 42,
        };
        let words = stats_to_words(77, &s);
        assert_eq!(words.len(), STATS_WIRE_WORDS);
        let (id, back) = stats_from_words(&words);
        assert_eq!(id, 77);
        assert_eq!(back, s);
    }
}
