//! Streaming JSONL event journal: the durable, mid-flight-observable form
//! of a telemetry stream.
//!
//! The in-memory [`Recorder`](crate::telemetry::Recorder) only materialises
//! a report after `run_end` — a hung merge loop or a panic leaves nothing
//! behind. This module streams every [`Telemetry`] callback as one JSON
//! object per line (JSONL) the moment it happens:
//!
//! * [`Event`] / [`EventKind`] — the canonical event model. Each event is
//!   timestamped (`t_us`, microseconds since `run_start`) by the sink *on
//!   receipt*, so engines never touch a clock for the journal's sake.
//! * [`Streaming`] — adapts any [`EmitEvent`] byte/event consumer into a
//!   full [`Telemetry`] sink (this is the single trait-call → [`Event`]
//!   conversion site).
//! * [`JsonlWriter`] / [`JsonlSink`] — writes events as JSONL with bounded
//!   buffering and a drop counter: when the underlying writer fails the
//!   journal degrades (events are counted, not lost silently, and the run
//!   is never aborted). The final `run_end` line carries the drop count.
//! * [`parse_journal`] — crash-tolerant reader: any *prefix* of a journal
//!   (e.g. after `kill -9`) parses event-by-event; a damaged tail line is
//!   reported, not fatal. [`parse_journal_strict`] is the schema-validation
//!   mode used by CI (unknown event kinds are errors).
//! * [`replay`] — folds a (possibly partial) event stream back into a
//!   [`TelemetryReport`], so post-mortem journals feed the same tooling as
//!   live reports.
//! * [`validate_journal`] — enforces the span schema: every `span_begin`
//!   nests per [`SpanKind::may_nest_in`], every `span_end` matches the
//!   innermost open span, and a complete journal closes every span.
//!
//! ## Line schema
//!
//! Every line is a JSON object with an `"ev"` tag and a `"t_us"`
//! timestamp. The tags are:
//!
//! | `ev`          | payload                                              |
//! |---------------|------------------------------------------------------|
//! | `run_start`   | `engine`, `width`, `height`, `config` object         |
//! | `b` / `e`     | `span` label (see [`SpanKind::label`])               |
//! | `stage`       | `stage`, `wall_seconds`, optional `sim_seconds`      |
//! | `split_done`  | `iterations`, `num_squares`                          |
//! | `merge_iter`  | `iter`, `merges`, `fallback`, opt. `active_edges`, `compacted` |
//! | `merge_done`  | `num_regions`                                        |
//! | `comm`        | `scheme`, `nodes`, `rounds`, `messages`, `bytes`     |
//! | `fault`       | `kind`, `src`, `dst`, `seq`, `ts_ns` (chaos runs)    |
//! | `send` / `recv` / `coll` | `stream`, `src`, `dst`, `seq`, `bytes`, `t_ns`, `wait_ns` (traced msgpass runs) |
//! | `counter`     | `name`, `value`                                      |
//! | `hist`        | `name`, `hist` object (see [`Histogram::to_json`])   |
//! | `run_end`     | `dropped` (events lost to sink back-pressure)        |

use std::collections::HashMap;
use std::io::{self, Write};
use std::time::Instant;

use crate::config::Config;
use crate::json::{Json, JsonError};
use crate::telemetry::{
    CommRecord, ConfigRecord, FaultRecord, FlowKind, FlowRecord, Histogram, MergeIterationRecord,
    SpanKind, Stage, StageSpan, Telemetry, TelemetryReport,
};

/// What happened (the payload of one journal line).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A run began.
    RunStart {
        /// Engine label (see [`Telemetry::run_start`]).
        engine: String,
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
        /// Configuration snapshot.
        config: ConfigRecord,
    },
    /// A hierarchical span opened.
    SpanBegin {
        /// Which span.
        span: SpanKind,
    },
    /// The innermost open span closed.
    SpanEnd {
        /// Which span.
        span: SpanKind,
    },
    /// A pipeline stage completed (aggregate timing).
    Stage {
        /// The stage span.
        span: StageSpan,
    },
    /// The split stage's outcome.
    SplitDone {
        /// Productive split iterations.
        iterations: u32,
        /// Squares at the end of the split stage.
        num_squares: usize,
    },
    /// One merge iteration's counters.
    MergeIteration {
        /// The record.
        rec: MergeIterationRecord,
    },
    /// The merge stage's outcome.
    MergeDone {
        /// Final region count.
        num_regions: usize,
    },
    /// Aggregate communication counters.
    Comm {
        /// The record.
        rec: CommRecord,
    },
    /// One injected-fault event (chaos runs only).
    Fault {
        /// The record.
        rec: FaultRecord,
    },
    /// One causal flow event (traced message-passing runs only): a
    /// point-to-point send/receive edge or a collective participation,
    /// correlated by `(stream, src, dst, seq)` and stamped with the
    /// virtual clock (`t_ns`). The `"ev"` tag is `"send"`, `"recv"`, or
    /// `"coll"` per [`FlowKind::label`].
    Flow {
        /// The record.
        rec: FlowRecord,
    },
    /// A named scalar counter.
    Counter {
        /// Counter name.
        name: String,
        /// Counter value.
        value: f64,
    },
    /// A named histogram.
    Histogram {
        /// Histogram name.
        name: String,
        /// The histogram (boxed: it is ~0.5 KiB, far larger than any
        /// other variant, and events are stored by the `Vec`-load in
        /// every sink).
        hist: Box<Histogram>,
    },
    /// The run completed. `dropped` is the number of events the sink had
    /// to discard (writer failure); 0 on a healthy run.
    RunEnd {
        /// Events dropped by the sink.
        dropped: u64,
    },
}

impl EventKind {
    /// The stable `"ev"` tag of this kind.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::RunStart { .. } => "run_start",
            EventKind::SpanBegin { .. } => "b",
            EventKind::SpanEnd { .. } => "e",
            EventKind::Stage { .. } => "stage",
            EventKind::SplitDone { .. } => "split_done",
            EventKind::MergeIteration { .. } => "merge_iter",
            EventKind::MergeDone { .. } => "merge_done",
            EventKind::Comm { .. } => "comm",
            EventKind::Fault { .. } => "fault",
            EventKind::Flow { rec } => rec.kind.label(),
            EventKind::Counter { .. } => "counter",
            EventKind::Histogram { .. } => "hist",
            EventKind::RunEnd { .. } => "run_end",
        }
    }
}

/// One timestamped journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the sink observed `run_start` (0 for the
    /// `run_start` event itself).
    pub t_us: u64,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// Serializes to a single-line JSON object (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> =
            vec![("ev", self.kind.tag().into()), ("t_us", self.t_us.into())];
        match &self.kind {
            EventKind::RunStart {
                engine,
                width,
                height,
                config,
            } => {
                pairs.push(("engine", engine.as_str().into()));
                pairs.push(("width", (*width).into()));
                pairs.push(("height", (*height).into()));
                pairs.push(("config", config.to_json()));
            }
            EventKind::SpanBegin { span } | EventKind::SpanEnd { span } => {
                pairs.push(("span", span.label().into()));
            }
            EventKind::Stage { span } => {
                pairs.push(("stage", span.stage.name().into()));
                pairs.push(("wall_seconds", span.wall_seconds.into()));
                if let Some(sim) = span.sim_seconds {
                    pairs.push(("sim_seconds", sim.into()));
                }
            }
            EventKind::SplitDone {
                iterations,
                num_squares,
            } => {
                pairs.push(("iterations", (*iterations).into()));
                pairs.push(("num_squares", (*num_squares).into()));
            }
            EventKind::MergeIteration { rec } => {
                pairs.push(("iter", rec.iteration.into()));
                pairs.push(("merges", rec.merges.into()));
                pairs.push(("fallback", rec.used_fallback.into()));
                if let Some(a) = rec.active_edges {
                    pairs.push(("active_edges", a.into()));
                }
                if let Some(c) = rec.compacted {
                    pairs.push(("compacted", c.into()));
                }
            }
            EventKind::MergeDone { num_regions } => {
                pairs.push(("num_regions", (*num_regions).into()));
            }
            EventKind::Comm { rec } => {
                pairs.push(("scheme", rec.scheme.as_str().into()));
                pairs.push(("nodes", rec.nodes.into()));
                pairs.push(("rounds", rec.rounds.into()));
                pairs.push(("messages", rec.messages.into()));
                pairs.push(("bytes", rec.bytes.into()));
            }
            EventKind::Fault { rec } => {
                pairs.push(("kind", rec.kind.as_str().into()));
                pairs.push(("src", u64::from(rec.src).into()));
                pairs.push(("dst", u64::from(rec.dst).into()));
                pairs.push(("seq", rec.seq.into()));
                pairs.push(("ts_ns", rec.ts_ns.into()));
            }
            EventKind::Flow { rec } => {
                pairs.push(("stream", rec.stream.as_str().into()));
                pairs.push(("src", u64::from(rec.src).into()));
                pairs.push(("dst", u64::from(rec.dst).into()));
                pairs.push(("seq", rec.seq.into()));
                pairs.push(("bytes", rec.bytes.into()));
                pairs.push(("t_ns", rec.t_ns.into()));
                pairs.push(("wait_ns", rec.wait_ns.into()));
            }
            EventKind::Counter { name, value } => {
                pairs.push(("name", name.as_str().into()));
                pairs.push(("value", (*value).into()));
            }
            EventKind::Histogram { name, hist } => {
                pairs.push(("name", name.as_str().into()));
                pairs.push(("hist", hist.to_json()));
            }
            EventKind::RunEnd { dropped } => {
                pairs.push(("dropped", (*dropped).into()));
            }
        }
        Json::obj(pairs)
    }

    /// One JSONL line, newline included.
    pub fn to_line(&self) -> String {
        let mut s = self.to_json().to_compact();
        s.push('\n');
        s
    }

    /// Parses an event from a JSON value produced by [`Event::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let bad = |what: &str| JsonError {
            message: format!("journal event: bad or missing {what}"),
            offset: 0,
        };
        let tag = v
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("ev"))?;
        let t_us = v
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("t_us"))?;
        let span_of = |v: &Json| -> Result<SpanKind, JsonError> {
            let label = v
                .get("span")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("span"))?;
            SpanKind::parse(label).ok_or_else(|| JsonError {
                message: format!("journal event: unknown span label {label:?}"),
                offset: 0,
            })
        };
        let kind = match tag {
            "run_start" => EventKind::RunStart {
                engine: v
                    .get("engine")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("engine"))?
                    .to_string(),
                width: v
                    .get("width")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("width"))? as usize,
                height: v
                    .get("height")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("height"))? as usize,
                config: ConfigRecord::from_json(v.get("config").ok_or_else(|| bad("config"))?)?,
            },
            "b" => EventKind::SpanBegin { span: span_of(v)? },
            "e" => EventKind::SpanEnd { span: span_of(v)? },
            "stage" => {
                let name = v
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("stage"))?;
                EventKind::Stage {
                    span: StageSpan {
                        stage: Stage::from_name(name).ok_or_else(|| JsonError {
                            message: format!("journal event: unknown stage {name:?}"),
                            offset: 0,
                        })?,
                        wall_seconds: v
                            .get("wall_seconds")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| bad("wall_seconds"))?,
                        sim_seconds: v.get("sim_seconds").and_then(Json::as_f64),
                    },
                }
            }
            "split_done" => EventKind::SplitDone {
                iterations: v
                    .get("iterations")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("iterations"))? as u32,
                num_squares: v
                    .get("num_squares")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("num_squares"))? as usize,
            },
            "merge_iter" => EventKind::MergeIteration {
                rec: MergeIterationRecord {
                    iteration: v
                        .get("iter")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("iter"))? as u32,
                    merges: v
                        .get("merges")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("merges"))? as u32,
                    used_fallback: v
                        .get("fallback")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| bad("fallback"))?,
                    active_edges: v.get("active_edges").and_then(Json::as_u64),
                    compacted: v.get("compacted").and_then(Json::as_bool),
                },
            },
            "merge_done" => EventKind::MergeDone {
                num_regions: v
                    .get("num_regions")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("num_regions"))? as usize,
            },
            "comm" => EventKind::Comm {
                rec: CommRecord {
                    scheme: v
                        .get("scheme")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("scheme"))?
                        .to_string(),
                    nodes: v
                        .get("nodes")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("nodes"))? as usize,
                    rounds: v
                        .get("rounds")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("rounds"))?,
                    messages: v
                        .get("messages")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("messages"))?,
                    bytes: v
                        .get("bytes")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("bytes"))?,
                },
            },
            "fault" => EventKind::Fault {
                rec: FaultRecord {
                    kind: v
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("kind"))?
                        .to_string(),
                    src: v
                        .get("src")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("src"))? as u32,
                    dst: v
                        .get("dst")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("dst"))? as u32,
                    seq: v
                        .get("seq")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("seq"))?,
                    ts_ns: v
                        .get("ts_ns")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("ts_ns"))?,
                },
            },
            "send" | "recv" | "coll" => EventKind::Flow {
                rec: FlowRecord {
                    kind: FlowKind::parse(tag).unwrap(),
                    stream: v
                        .get("stream")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("stream"))?
                        .to_string(),
                    src: v
                        .get("src")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("src"))? as u32,
                    dst: v
                        .get("dst")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("dst"))? as u32,
                    seq: v
                        .get("seq")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("seq"))?,
                    bytes: v
                        .get("bytes")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("bytes"))?,
                    t_ns: v
                        .get("t_ns")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("t_ns"))?,
                    wait_ns: v
                        .get("wait_ns")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("wait_ns"))?,
                },
            },
            "counter" => EventKind::Counter {
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("name"))?
                    .to_string(),
                value: v
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("value"))?,
            },
            "hist" => EventKind::Histogram {
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("name"))?
                    .to_string(),
                hist: Box::new(Histogram::from_json(
                    v.get("hist").ok_or_else(|| bad("hist"))?,
                )?),
            },
            "run_end" => EventKind::RunEnd {
                dropped: v
                    .get("dropped")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("dropped"))?,
            },
            other => {
                return Err(JsonError {
                    message: format!("journal event: unknown event kind {other:?}"),
                    offset: 0,
                })
            }
        };
        Ok(Event { t_us, kind })
    }

    /// Parses one JSONL line.
    pub fn parse_line(line: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(line)?)
    }
}

/// A consumer of journal [`Event`]s. Implementors must never panic or
/// block the run on failure: count drops instead.
pub trait EmitEvent {
    /// Consumes one event.
    fn emit(&mut self, ev: Event);
    /// Events discarded so far (writer failure / back-pressure).
    fn dropped(&self) -> u64 {
        0
    }
    /// Flushes any internal buffering (called at `run_end`).
    fn flush_events(&mut self) {}
}

/// Adapts an [`EmitEvent`] consumer into a [`Telemetry`] sink, stamping
/// each event with microseconds since the current time origin on receipt.
///
/// The origin is reset by each **top-level** `run_start` (so a standalone
/// run's timestamps are microseconds since `run_start`, and back-to-back
/// runs each restart at ~0, which [`crate::chrome::split_runs`] relies
/// on). A `run_start` arriving while a span is already open — the nested
/// `batch > image:<i> > run` shape emitted by [`crate::batch::run_batch`]
/// — does **not** reset the clock, keeping the whole batch journal on one
/// monotonic timeline so [`validate_journal`] accepts it.
pub struct Streaming<S: EmitEvent> {
    sink: S,
    clock: Instant,
    open_spans: usize,
    /// `Some(next ordinal)` in logical-clock mode: `t_us` is the event
    /// ordinal instead of elapsed wall time, so two identical event
    /// streams serialize to byte-identical journals (chaos determinism).
    logical: Option<u64>,
}

impl<S: EmitEvent> Streaming<S> {
    /// Wraps `sink`.
    pub fn new(sink: S) -> Self {
        Self {
            sink,
            clock: Instant::now(),
            open_spans: 0,
            logical: None,
        }
    }

    /// Switches to the logical clock: `t_us` becomes the event ordinal
    /// (0, 1, 2, ...) instead of wall microseconds. Ordinals are monotonic
    /// so [`validate_journal`] accepts logical journals unchanged; two
    /// runs emitting the same events produce byte-identical JSONL — the
    /// reproducibility contract of `--chaos` traces.
    pub fn with_logical_clock(mut self) -> Self {
        self.logical = Some(0);
        self
    }

    /// The wrapped consumer.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The wrapped consumer, mutably.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Unwraps the consumer.
    pub fn into_sink(self) -> S {
        self.sink
    }

    fn now_us(&self) -> u64 {
        self.clock.elapsed().as_micros() as u64
    }

    fn push(&mut self, kind: EventKind) {
        let t_us = match &mut self.logical {
            Some(next) => {
                let t = *next;
                *next += 1;
                t
            }
            None => self.now_us(),
        };
        self.sink.emit(Event { t_us, kind });
    }
}

impl<S: EmitEvent> Telemetry for Streaming<S> {
    fn run_start(&mut self, engine: &str, width: usize, height: usize, config: &Config) {
        if self.open_spans == 0 {
            self.clock = Instant::now();
        }
        self.push(EventKind::RunStart {
            engine: engine.to_string(),
            width,
            height,
            config: ConfigRecord::of(config),
        });
    }

    fn span_begin(&mut self, kind: SpanKind) {
        self.open_spans += 1;
        self.push(EventKind::SpanBegin { span: kind });
    }

    fn span_end(&mut self, kind: SpanKind) {
        self.open_spans = self.open_spans.saturating_sub(1);
        self.push(EventKind::SpanEnd { span: kind });
    }

    fn stage(&mut self, span: StageSpan) {
        self.push(EventKind::Stage { span });
    }

    fn split_done(&mut self, iterations: u32, num_squares: usize) {
        self.push(EventKind::SplitDone {
            iterations,
            num_squares,
        });
    }

    fn merge_iteration(&mut self, rec: MergeIterationRecord) {
        self.push(EventKind::MergeIteration { rec });
    }

    fn merge_done(&mut self, num_regions: usize) {
        self.push(EventKind::MergeDone { num_regions });
    }

    fn comm(&mut self, rec: CommRecord) {
        self.push(EventKind::Comm { rec });
    }

    fn fault(&mut self, rec: FaultRecord) {
        self.push(EventKind::Fault { rec });
    }

    fn flow(&mut self, rec: FlowRecord) {
        self.push(EventKind::Flow { rec });
    }

    fn counter(&mut self, name: &str, value: f64) {
        self.push(EventKind::Counter {
            name: name.to_string(),
            value,
        });
    }

    fn histogram(&mut self, name: &str, hist: &Histogram) {
        self.push(EventKind::Histogram {
            name: name.to_string(),
            hist: Box::new(hist.clone()),
        });
    }

    fn run_end(&mut self) {
        let dropped = self.sink.dropped();
        self.push(EventKind::RunEnd { dropped });
        self.sink.flush_events();
    }
}

/// Writes events as JSONL with bounded buffering.
///
/// Lines accumulate in an internal buffer of at most `buffer_cap` bytes
/// and are written out whenever the next line would overflow it (so memory
/// stays bounded on arbitrarily long runs). `buffer_cap == 0` writes and
/// flushes every line immediately — the mid-flight-observable mode used
/// for `--trace-out -`. The buffer is also flushed at `run_end` and on
/// [`Drop`], so a panicking run still leaves a readable journal prefix
/// behind (drop runs during unwind).
///
/// When the underlying writer errors, the writer is marked broken and
/// every subsequent event increments [`JsonlWriter::dropped`] instead of
/// aborting the run; the drop count is reported on the final `run_end`
/// line (and by the CLI).
pub struct JsonlWriter<W: Write> {
    out: W,
    buf: Vec<u8>,
    buffer_cap: usize,
    dropped: u64,
    broken: bool,
}

/// Default buffer bound: 64 KiB.
pub const DEFAULT_BUFFER_CAP: usize = 64 * 1024;

impl<W: Write> JsonlWriter<W> {
    /// A writer with the default 64 KiB buffer bound.
    pub fn new(out: W) -> Self {
        Self::with_buffer_cap(out, DEFAULT_BUFFER_CAP)
    }

    /// A writer with an explicit buffer bound (0 = flush every line).
    pub fn with_buffer_cap(out: W, buffer_cap: usize) -> Self {
        Self {
            out,
            buf: Vec::new(),
            buffer_cap,
            dropped: 0,
            broken: false,
        }
    }

    fn write_out(&mut self) {
        if self.broken || self.buf.is_empty() {
            return;
        }
        if self.out.write_all(&self.buf).is_err() || self.out.flush().is_err() {
            self.broken = true;
            // The buffered lines are lost; count them.
            self.dropped += self.buf.iter().filter(|&&b| b == b'\n').count() as u64;
        }
        self.buf.clear();
    }
}

impl<W: Write> EmitEvent for JsonlWriter<W> {
    fn emit(&mut self, ev: Event) {
        if self.broken {
            self.dropped += 1;
            return;
        }
        let line = ev.to_line();
        if !self.buf.is_empty() && self.buf.len() + line.len() > self.buffer_cap {
            self.write_out();
            if self.broken {
                self.dropped += 1;
                return;
            }
        }
        self.buf.extend_from_slice(line.as_bytes());
        if self.buf.len() > self.buffer_cap {
            self.write_out();
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn flush_events(&mut self) {
        self.write_out();
    }
}

impl<W: Write> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        self.write_out();
    }
}

/// A streaming JSONL [`Telemetry`] sink (see [`JsonlWriter`]).
pub type JsonlSink<W> = Streaming<JsonlWriter<W>>;

/// Which clock a streaming journal sink stamps `t_us` with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Wall microseconds since the sink observed `run_start`.
    #[default]
    Wall,
    /// Event ordinals (0, 1, 2, ...) — see
    /// [`Streaming::with_logical_clock`]. Two identical event streams
    /// serialize to byte-identical journals, the reproducibility contract
    /// seeded `--chaos` runs rely on.
    Logical,
}

/// Opens a JSONL sink for a `--trace-out` style path: `"-"` streams to
/// stderr line-by-line (unbuffered); anything else creates/truncates a
/// file with the default buffer bound. `clock` selects wall-microsecond or
/// logical-ordinal timestamps (see [`ClockMode`]).
pub fn jsonl_sink(path: &str, clock: ClockMode) -> io::Result<JsonlSink<Box<dyn Write>>> {
    let writer: JsonlWriter<Box<dyn Write>> = if path == "-" {
        JsonlWriter::with_buffer_cap(Box::new(io::stderr()), 0)
    } else {
        JsonlWriter::new(Box::new(std::fs::File::create(path)?))
    };
    let sink = Streaming::new(writer);
    Ok(match clock {
        ClockMode::Wall => sink,
        ClockMode::Logical => sink.with_logical_clock(),
    })
}

/// An in-memory event consumer (testing and trace export).
#[derive(Debug, Clone, Default)]
pub struct EventVec {
    /// The events, in emission order.
    pub events: Vec<Event>,
}

impl EmitEvent for EventVec {
    fn emit(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// An in-memory streaming [`Telemetry`] sink capturing the event stream.
pub type EventLog = Streaming<EventVec>;

impl EventLog {
    /// A fresh in-memory event log.
    pub fn in_memory() -> Self {
        Streaming::new(EventVec::default())
    }

    /// The captured events.
    pub fn events(&self) -> &[Event] {
        &self.sink().events
    }

    /// Consumes the log, returning the events.
    pub fn into_events(self) -> Vec<Event> {
        self.into_sink().events
    }
}

/// Summary of a tolerant [`parse_journal`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Non-empty lines seen.
    pub lines: usize,
    /// Events successfully parsed.
    pub events: usize,
    /// `true` when parsing stopped at a damaged line (crash-truncated
    /// tail); the message describes the first failure.
    pub truncated: bool,
    /// Parse error at the truncation point, if any.
    pub error: Option<String>,
}

/// Crash-tolerant journal reader: parses events line-by-line and stops at
/// the first damaged line (the model is a process killed mid-write — only
/// the final line can be torn). Every prefix of a valid journal parses
/// without error.
pub fn parse_journal(text: &str) -> (Vec<Event>, JournalStats) {
    let mut events = Vec::new();
    let mut stats = JournalStats::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        stats.lines += 1;
        match Event::parse_line(line) {
            Ok(ev) => {
                events.push(ev);
                stats.events += 1;
            }
            Err(e) => {
                stats.truncated = true;
                stats.error = Some(e.message);
                break;
            }
        }
    }
    (events, stats)
}

/// Strict journal reader: any malformed line or unknown event kind is an
/// error (`Err((line_number, message))`, 1-based). This is the
/// schema-validation mode CI runs on freshly emitted journals.
pub fn parse_journal_strict(text: &str) -> Result<Vec<Event>, (usize, String)> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => return Err((i + 1, e.message)),
        }
    }
    Ok(events)
}

/// Folds a (possibly truncated) event stream into a [`TelemetryReport`].
///
/// This mirrors what [`Recorder`](crate::telemetry::Recorder) accumulates
/// live, so a post-mortem journal prefix feeds the same reporting and
/// diffing tools as a completed run. Missing trailing events simply leave
/// the corresponding fields at their defaults.
pub fn replay(events: &[Event]) -> TelemetryReport {
    let mut r = TelemetryReport::default();
    for ev in events {
        match &ev.kind {
            EventKind::RunStart {
                engine,
                width,
                height,
                config,
            } => {
                r = TelemetryReport {
                    engine: engine.clone(),
                    width: *width,
                    height: *height,
                    config: Some(config.clone()),
                    ..TelemetryReport::default()
                };
            }
            EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => {}
            EventKind::Stage { span } => r.stages.push(*span),
            EventKind::SplitDone {
                iterations,
                num_squares,
            } => {
                r.split_iterations = *iterations;
                r.num_squares = *num_squares;
            }
            EventKind::MergeIteration { rec } => {
                if rec.merges == 0 {
                    r.stall_iterations += 1;
                }
                if rec.used_fallback {
                    r.fallback_iterations += 1;
                }
                r.merge_iterations.push(*rec);
            }
            EventKind::MergeDone { num_regions } => r.num_regions = *num_regions,
            EventKind::Comm { rec } => r.comm = Some(rec.clone()),
            EventKind::Fault { rec } => {
                if rec.kind == "degraded" {
                    r.degraded = true;
                }
                r.faults.push(rec.clone());
            }
            // Flow events are analysis-grade detail (see [`crate::analyze`]);
            // folding thousands of them into the aggregate report would
            // bloat it without informing any report-level metric.
            EventKind::Flow { .. } => {}
            EventKind::Counter { name, value } => r.counters.push((name.clone(), *value)),
            EventKind::Histogram { name, hist } => {
                r.histograms.push((name.clone(), (**hist).clone()))
            }
            EventKind::RunEnd { .. } => {}
        }
    }
    r
}

/// A span-schema violation found by [`validate_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalInvalid {
    /// 0-based index of the offending event.
    pub event_index: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JournalInvalid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: {}", self.event_index, self.message)
    }
}

/// Validates span discipline over a complete journal: begins nest per
/// [`SpanKind::may_nest_in`], every end matches the innermost open span,
/// timestamps are monotonic, and no span is left open at the end.
///
/// Flow events are held to the causal-trace schema on top of that:
/// per-rank virtual clocks (`t_ns` keyed by the recording rank) must be
/// monotonic, every `recv` must match an earlier `send` with the same
/// `(stream, src, dst, seq)` correlation key, and a complete journal pairs
/// every send. Flow state resets at each `run_start` (per-image runs in a
/// batch journal re-start rank clocks and sequence counters at zero).
///
/// Truncated journals fail the final balance check by design — use
/// [`replay`] (which ignores spans) for post-mortem analysis plus
/// [`flow_pairing`] for a tolerant pairing summary, and this function to
/// certify a journal a run claims to have completed.
pub fn validate_journal(events: &[Event]) -> Result<(), JournalInvalid> {
    let mut stack: Vec<SpanKind> = Vec::new();
    let mut last_t = 0u64;
    // Causal-trace state, reset at each run_start.
    let mut rank_clock: HashMap<u32, f64> = HashMap::new();
    let mut in_flight: HashMap<(String, u32, u32, u64), u32> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.t_us < last_t {
            return Err(JournalInvalid {
                event_index: i,
                message: format!("timestamp regressed: {} after {}", ev.t_us, last_t),
            });
        }
        last_t = ev.t_us;
        match &ev.kind {
            EventKind::RunStart { .. } => {
                if let Some(n) = in_flight.values().copied().reduce(|a, b| a + b) {
                    return Err(JournalInvalid {
                        event_index: i,
                        message: format!("{n} send(s) without a matching recv at run boundary"),
                    });
                }
                rank_clock.clear();
            }
            EventKind::Flow { rec } => {
                let rank = rec.rank();
                let last = rank_clock.entry(rank).or_insert(f64::NEG_INFINITY);
                if rec.t_ns < *last {
                    return Err(JournalInvalid {
                        event_index: i,
                        message: format!(
                            "rank {rank} virtual clock regressed: {} after {}",
                            rec.t_ns, *last
                        ),
                    });
                }
                *last = rec.t_ns;
                let key = (rec.stream.clone(), rec.src, rec.dst, rec.seq);
                match rec.kind {
                    FlowKind::Send => *in_flight.entry(key).or_insert(0) += 1,
                    FlowKind::Recv => match in_flight.get_mut(&key) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            if *n == 0 {
                                in_flight.remove(&key);
                            }
                        }
                        _ => {
                            return Err(JournalInvalid {
                                event_index: i,
                                message: format!(
                                    "recv without a matching prior send: \
                                     stream {:?} {}->{} seq {}",
                                    rec.stream, rec.src, rec.dst, rec.seq
                                ),
                            })
                        }
                    },
                    FlowKind::Collective => {}
                }
            }
            EventKind::SpanBegin { span } => {
                if !span.may_nest_in(stack.last().copied()) {
                    return Err(JournalInvalid {
                        event_index: i,
                        message: format!(
                            "span {:?} may not open inside {:?}",
                            span.label(),
                            stack.last().map(|s| s.label()),
                        ),
                    });
                }
                stack.push(*span);
            }
            EventKind::SpanEnd { span } => match stack.pop() {
                Some(top) if top == *span => {}
                Some(top) => {
                    return Err(JournalInvalid {
                        event_index: i,
                        message: format!(
                            "span end {:?} does not match open span {:?}",
                            span.label(),
                            top.label()
                        ),
                    })
                }
                None => {
                    return Err(JournalInvalid {
                        event_index: i,
                        message: format!("span end {:?} with no span open", span.label()),
                    })
                }
            },
            _ => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(JournalInvalid {
            event_index: events.len(),
            message: format!(
                "journal ended with {} span(s) open (innermost {:?})",
                stack.len(),
                open.label()
            ),
        });
    }
    if let Some(n) = in_flight.values().copied().reduce(|a, b| a + b) {
        return Err(JournalInvalid {
            event_index: events.len(),
            message: format!("journal ended with {n} send(s) without a matching recv"),
        });
    }
    Ok(())
}

/// Tolerant flow-pairing summary over a (possibly truncated) journal.
///
/// Unlike [`validate_journal`], nothing here is fatal: a truncated journal
/// legitimately loses the receives of its final in-flight sends, so this
/// reports what paired and what did not. Pairing state resets at each
/// `run_start` (per-image runs restart sequence counters); sends left
/// unpaired at a boundary are counted, not errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowPairing {
    /// `send` events seen.
    pub sends: usize,
    /// `recv` events seen.
    pub recvs: usize,
    /// `coll` events seen.
    pub colls: usize,
    /// Receives that matched a prior send on `(stream, src, dst, seq)`.
    pub matched: usize,
    /// Receives with no matching prior send.
    pub unmatched_recvs: usize,
    /// Sends never claimed by a receive (in-flight at a run boundary or at
    /// the end of the journal — expected for truncated journals).
    pub unpaired_sends: usize,
    /// Flow events whose recording rank's virtual clock went backwards.
    pub clock_regressions: usize,
}

impl FlowPairing {
    /// `true` when the journal contains any flow events at all.
    pub fn any(&self) -> bool {
        self.sends + self.recvs + self.colls > 0
    }

    /// `true` when every receive matched and no send was left unpaired.
    pub fn fully_paired(&self) -> bool {
        self.unmatched_recvs == 0 && self.unpaired_sends == 0 && self.clock_regressions == 0
    }
}

/// Computes the [`FlowPairing`] summary of an event stream.
pub fn flow_pairing(events: &[Event]) -> FlowPairing {
    let mut fp = FlowPairing::default();
    let mut rank_clock: HashMap<u32, f64> = HashMap::new();
    let mut in_flight: HashMap<(String, u32, u32, u64), u32> = HashMap::new();
    let flush = |in_flight: &mut HashMap<(String, u32, u32, u64), u32>, fp: &mut FlowPairing| {
        fp.unpaired_sends += in_flight.values().map(|&n| n as usize).sum::<usize>();
        in_flight.clear();
    };
    for ev in events {
        match &ev.kind {
            EventKind::RunStart { .. } => {
                flush(&mut in_flight, &mut fp);
                rank_clock.clear();
            }
            EventKind::Flow { rec } => {
                let last = rank_clock.entry(rec.rank()).or_insert(f64::NEG_INFINITY);
                if rec.t_ns < *last {
                    fp.clock_regressions += 1;
                }
                *last = rec.t_ns;
                let key = (rec.stream.clone(), rec.src, rec.dst, rec.seq);
                match rec.kind {
                    FlowKind::Send => {
                        fp.sends += 1;
                        *in_flight.entry(key).or_insert(0) += 1;
                    }
                    FlowKind::Recv => {
                        fp.recvs += 1;
                        match in_flight.get_mut(&key) {
                            Some(n) if *n > 0 => {
                                *n -= 1;
                                if *n == 0 {
                                    in_flight.remove(&key);
                                }
                                fp.matched += 1;
                            }
                            _ => fp.unmatched_recvs += 1,
                        }
                    }
                    FlowKind::Collective => fp.colls += 1,
                }
            }
            _ => {}
        }
    }
    flush(&mut in_flight, &mut fp);
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TieBreak;

    fn sample_events() -> Vec<Event> {
        let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 7 });
        let mut log = EventLog::in_memory();
        let tel: &mut dyn Telemetry = &mut log;
        tel.run_start("seq", 64, 64, &cfg);
        tel.span_begin(SpanKind::Run);
        tel.span_begin(SpanKind::Stage(Stage::Split));
        tel.split_done(3, 40);
        tel.span_end(SpanKind::Stage(Stage::Split));
        tel.stage(StageSpan {
            stage: Stage::Split,
            wall_seconds: 0.01,
            sim_seconds: None,
        });
        tel.span_begin(SpanKind::Stage(Stage::Merge));
        tel.span_begin(SpanKind::MergeIteration(0));
        tel.span_begin(SpanKind::Choice);
        tel.span_end(SpanKind::Choice);
        tel.span_begin(SpanKind::Apply);
        tel.span_end(SpanKind::Apply);
        tel.span_begin(SpanKind::Compact);
        tel.span_end(SpanKind::Compact);
        tel.merge_iteration(MergeIterationRecord {
            iteration: 0,
            merges: 12,
            used_fallback: false,
            active_edges: Some(88),
            compacted: Some(false),
        });
        tel.span_end(SpanKind::MergeIteration(0));
        tel.span_end(SpanKind::Stage(Stage::Merge));
        tel.merge_done(5);
        let mut h = Histogram::new();
        h.record(12);
        tel.histogram("merge.merges_per_iteration", &h);
        tel.counter("merge.compactions", 0.0);
        tel.span_end(SpanKind::Run);
        tel.run_end();
        log.into_events()
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let events = sample_events();
        let text: String = events.iter().map(Event::to_line).collect();
        let parsed = parse_journal_strict(&text).unwrap();
        assert_eq!(parsed, events);
        let (tolerant, stats) = parse_journal(&text);
        assert_eq!(tolerant, events);
        assert!(!stats.truncated);
        assert_eq!(stats.events, events.len());
    }

    #[test]
    fn journal_validates_and_replays() {
        let events = sample_events();
        validate_journal(&events).unwrap();
        let report = replay(&events);
        assert_eq!(report.engine, "seq");
        assert_eq!(report.split_iterations, 3);
        assert_eq!(report.num_squares, 40);
        assert_eq!(report.merges_per_iteration(), vec![12]);
        assert_eq!(report.num_regions, 5);
        assert_eq!(
            report
                .histogram("merge.merges_per_iteration")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(report.counter("merge.compactions"), Some(0.0));
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let events = sample_events();
        let text: String = events.iter().map(Event::to_line).collect();
        // Cut mid-way through the final line.
        let cut = text.len() - 7;
        let (parsed, stats) = parse_journal(&text[..cut]);
        assert!(stats.truncated);
        assert_eq!(parsed.len(), events.len() - 1);
        // Replay of the prefix still yields a coherent partial report.
        let report = replay(&parsed);
        assert_eq!(report.num_regions, 5);
        // Strict mode rejects the damage, naming the line.
        let err = parse_journal_strict(&text[..cut]).unwrap_err();
        assert_eq!(err.0, events.len());
    }

    #[test]
    fn unknown_event_kind_is_rejected() {
        let line = r#"{"ev":"mystery","t_us":0}"#;
        let err = Event::parse_line(line).unwrap_err();
        assert!(
            err.message.contains("unknown event kind"),
            "{}",
            err.message
        );
        // Tolerant mode stops there; strict mode errors.
        let (evs, stats) = parse_journal(line);
        assert!(evs.is_empty() && stats.truncated);
        assert!(parse_journal_strict(line).is_err());
    }

    #[test]
    fn validator_rejects_unbalanced_and_misnested_spans() {
        let mk = |kind: EventKind| Event { t_us: 0, kind };
        // Unclosed span.
        let open = vec![mk(EventKind::SpanBegin {
            span: SpanKind::Run,
        })];
        assert!(validate_journal(&open).is_err());
        // End without begin.
        let stray = vec![mk(EventKind::SpanEnd {
            span: SpanKind::Run,
        })];
        assert!(validate_journal(&stray).is_err());
        // Mis-nesting: iter outside stage:merge.
        let misnested = vec![
            mk(EventKind::SpanBegin {
                span: SpanKind::Run,
            }),
            mk(EventKind::SpanBegin {
                span: SpanKind::MergeIteration(0),
            }),
        ];
        let err = validate_journal(&misnested).unwrap_err();
        assert_eq!(err.event_index, 1);
        // Crossed end.
        let crossed = vec![
            mk(EventKind::SpanBegin {
                span: SpanKind::Run,
            }),
            mk(EventKind::SpanBegin {
                span: SpanKind::Stage(Stage::Merge),
            }),
            mk(EventKind::SpanEnd {
                span: SpanKind::Run,
            }),
        ];
        assert!(validate_journal(&crossed).is_err());
        // Timestamp regression.
        let backwards = vec![
            Event {
                t_us: 5,
                kind: EventKind::SpanBegin {
                    span: SpanKind::Run,
                },
            },
            Event {
                t_us: 4,
                kind: EventKind::SpanEnd {
                    span: SpanKind::Run,
                },
            },
        ];
        assert!(validate_journal(&backwards).is_err());
    }

    fn flow(kind: FlowKind, stream: &str, src: u32, dst: u32, seq: u64, t_ns: f64) -> EventKind {
        EventKind::Flow {
            rec: FlowRecord {
                kind,
                stream: stream.to_string(),
                src,
                dst,
                seq,
                bytes: 16,
                t_ns,
                wait_ns: 0.5,
            },
        }
    }

    #[test]
    fn flow_events_round_trip_and_validate() {
        let mk = |t_us: u64, kind: EventKind| Event { t_us, kind };
        let events = vec![
            mk(0, flow(FlowKind::Send, "boundary", 0, 1, 0, 10.0)),
            mk(1, flow(FlowKind::Send, "boundary", 1, 0, 0, 11.0)),
            mk(2, flow(FlowKind::Recv, "boundary", 0, 1, 0, 20.0)),
            mk(3, flow(FlowKind::Recv, "boundary", 1, 0, 0, 21.0)),
            mk(4, flow(FlowKind::Collective, "sync", 0, 0, 0, 30.0)),
            mk(5, flow(FlowKind::Collective, "sync", 1, 1, 0, 30.0)),
        ];
        let text: String = events.iter().map(Event::to_line).collect();
        assert!(text.contains(r#""ev":"send""#) && text.contains(r#""ev":"coll""#));
        let parsed = parse_journal_strict(&text).unwrap();
        assert_eq!(parsed, events);
        validate_journal(&events).unwrap();
        let fp = flow_pairing(&events);
        assert!(fp.any() && fp.fully_paired());
        assert_eq!((fp.sends, fp.recvs, fp.colls, fp.matched), (2, 2, 2, 2));
        // Flow events leave the replayed report untouched.
        assert_eq!(replay(&events), TelemetryReport::default());
    }

    #[test]
    fn validator_rejects_broken_flow_schemas() {
        let mk = |t_us: u64, kind: EventKind| Event { t_us, kind };
        // A recv with no prior send.
        let orphan = vec![mk(0, flow(FlowKind::Recv, "boundary", 0, 1, 0, 5.0))];
        let err = validate_journal(&orphan).unwrap_err();
        assert!(err.message.contains("matching prior send"), "{err}");
        assert_eq!(flow_pairing(&orphan).unmatched_recvs, 1);
        // A send never received.
        let dangling = vec![mk(0, flow(FlowKind::Send, "boundary", 0, 1, 0, 5.0))];
        let err = validate_journal(&dangling).unwrap_err();
        assert!(err.message.contains("without a matching recv"), "{err}");
        let fp = flow_pairing(&dangling);
        assert_eq!(fp.unpaired_sends, 1);
        assert!(!fp.fully_paired());
        // Per-rank virtual clock regression (rank 0 records t_ns 9 after 10).
        let backwards = vec![
            mk(0, flow(FlowKind::Send, "a", 0, 1, 0, 10.0)),
            mk(1, flow(FlowKind::Send, "a", 0, 1, 1, 9.0)),
            mk(2, flow(FlowKind::Recv, "a", 0, 1, 0, 12.0)),
            mk(3, flow(FlowKind::Recv, "a", 0, 1, 1, 13.0)),
        ];
        let err = validate_journal(&backwards).unwrap_err();
        assert!(err.message.contains("virtual clock regressed"), "{err}");
        assert_eq!(flow_pairing(&backwards).clock_regressions, 1);
        // A run boundary resets rank clocks but in-flight sends across it
        // are an error.
        let cfg = Config::with_threshold(10);
        let run_start = EventKind::RunStart {
            engine: "mp".into(),
            width: 8,
            height: 8,
            config: ConfigRecord::of(&cfg),
        };
        let crossing = vec![
            mk(0, flow(FlowKind::Send, "a", 0, 1, 0, 10.0)),
            mk(1, run_start.clone()),
            mk(2, flow(FlowKind::Recv, "a", 0, 1, 0, 12.0)),
        ];
        let err = validate_journal(&crossing).unwrap_err();
        assert!(err.message.contains("run boundary"), "{err}");
        // ... while fully-paired runs back-to-back validate even though
        // rank clocks restart at zero.
        let stacked = vec![
            mk(0, run_start.clone()),
            mk(1, flow(FlowKind::Send, "a", 0, 1, 0, 10.0)),
            mk(2, flow(FlowKind::Recv, "a", 0, 1, 0, 12.0)),
            mk(3, run_start),
            mk(4, flow(FlowKind::Send, "a", 0, 1, 0, 1.0)),
            mk(5, flow(FlowKind::Recv, "a", 0, 1, 0, 2.0)),
        ];
        validate_journal(&stacked).unwrap();
        assert!(flow_pairing(&stacked).fully_paired());
    }

    #[test]
    fn jsonl_sink_clock_modes() {
        // One constructor, two clock modes (stderr path: no file side
        // effects): wall timestamps by default, logical ordinals on demand.
        let a = jsonl_sink("-", ClockMode::Wall).unwrap();
        assert!(a.logical.is_none());
        let b = jsonl_sink("-", ClockMode::Logical).unwrap();
        assert_eq!(b.logical, Some(0));
    }

    #[test]
    fn jsonl_writer_bounded_buffer_and_drop_counter() {
        // A writer that fails after `ok_bytes` bytes.
        struct Flaky {
            written: Vec<u8>,
            ok_bytes: usize,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.written.len() + buf.len() > self.ok_bytes {
                    return Err(io::Error::other("disk full"));
                }
                self.written.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        // Healthy path: per-line flushing (cap 0) writes every event.
        let mut w = JsonlWriter::with_buffer_cap(Vec::new(), 0);
        for ev in sample_events() {
            w.emit(ev);
        }
        assert_eq!(w.dropped(), 0);
        w.flush_events();
        let text = String::from_utf8(std::mem::take(&mut w.out)).unwrap();
        assert!(parse_journal_strict(&text).is_ok());
        drop(w);

        // Failing path: events are counted as dropped, never panicking.
        let flaky = Flaky {
            written: Vec::new(),
            ok_bytes: 0,
        };
        let mut w = JsonlWriter::with_buffer_cap(flaky, 0);
        let events = sample_events();
        let n = events.len() as u64;
        for ev in events {
            w.emit(ev);
        }
        assert_eq!(w.dropped(), n);
    }
}
