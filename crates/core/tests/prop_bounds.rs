//! Property tests of the paper's complexity-section iteration bounds.
//!
//! *Split:* best case 1 iteration, worst case log₂(N).
//! *Merge:* a region of R sub-regions needs at least ⌈log₂ R⌉ iterations
//! (regions at most double per iteration) and — for the deterministic
//! policies, which merge at least one pair every iteration — at most
//! `R_initial − R_final` iterations.

use proptest::prelude::*;
use rg_core::{segment, split, Config, TieBreak};
use rg_imaging::{synth, Image};

prop_compose! {
    fn scene()(
        seed in 0u64..100_000,
        w in 8usize..64,
        h in 8usize..64,
        count in 0usize..8,
    ) -> Image<u8> {
        synth::random_rects(w, h, count, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn split_iterations_bounded_by_log_n(img in scene(), t in 0u32..200) {
        let s = split(&img, &Config::with_threshold(t));
        let side = img.width().max(img.height()).next_power_of_two();
        prop_assert!(s.iterations <= side.trailing_zeros());
    }

    #[test]
    fn merge_iterations_bounded_for_deterministic_policies(
        img in scene(),
        t in 0u32..200,
        largest in proptest::bool::ANY,
    ) {
        let tie = if largest { TieBreak::LargestId } else { TieBreak::SmallestId };
        let cfg = Config::with_threshold(t).tie_break(tie);
        let seg = segment(&img, &cfg);
        // Worst case: one merge per iteration.
        prop_assert!(
            (seg.merge_iterations as usize) <= seg.num_squares - seg.num_regions
                || seg.merge_iterations == 0
        );
        // Deterministic policies never have an empty iteration.
        prop_assert!(seg.merges_per_iteration.iter().all(|&m| m >= 1));
    }

    #[test]
    fn merge_iterations_at_least_log_of_largest_region(img in scene(), t in 0u32..200) {
        let cfg = Config::with_threshold(t);
        let seg = segment(&img, &cfg);
        // Count the squares composing each final region by re-running the
        // split and mapping squares through final labels.
        let s = split(&img, &cfg);
        let mut squares_per_region = vec![0u64; seg.num_regions];
        for sq in &s.squares {
            let label = seg.labels[sq.y as usize * img.width() + sq.x as usize];
            squares_per_region[label as usize] += 1;
        }
        let r = *squares_per_region.iter().max().unwrap();
        let lower = 64 - r.leading_zeros() - 1 + u32::from(!r.is_power_of_two());
        prop_assert!(
            seg.merge_iterations >= lower,
            "region of {r} squares needs >= {lower} iterations, got {}",
            seg.merge_iterations
        );
    }

    #[test]
    fn total_merges_equal_squares_minus_regions(img in scene(), t in 0u32..200, seed in 0u64..50) {
        let cfg = Config::with_threshold(t).tie_break(TieBreak::Random { seed });
        let seg = segment(&img, &cfg);
        let merged: u32 = seg.merges_per_iteration.iter().sum();
        prop_assert_eq!(merged as usize, seg.num_squares - seg.num_regions);
    }

    #[test]
    fn uniform_image_split_is_logarithmic(k in 1u32..7) {
        // Whole-image coalescing: exactly log2(N) productive iterations.
        let n = 1usize << k;
        let img: Image<u8> = Image::new(n, n, 7);
        let s = split(&img, &Config::with_threshold(0));
        prop_assert_eq!(s.iterations, k);
        prop_assert_eq!(s.num_squares(), 1);
    }
}
