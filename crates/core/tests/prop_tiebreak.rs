//! Property tests for the tie-break machinery shared by all four engines.
//!
//! Two families of properties:
//!
//! 1. **Order invariance** — `tie_key` induces a strict total order over a
//!    chooser's candidates, so the winning candidate (the argmin) does not
//!    depend on the order the candidates are visited in. This is what lets
//!    the sequential, rayon, data-parallel, and message-passing engines —
//!    which all enumerate neighbours in different orders — make identical
//!    choices.
//!
//! 2. **Stall-guard termination** — under `TieBreak::Random`, an iteration
//!    may produce no merge when choices form a cycle. The engine's guard
//!    (`Config::max_stall` empty iterations, then one smallest-ID fallback
//!    iteration) must force termination on adversarial graphs where *every*
//!    edge is an exact tie: equal-intensity rings and chorded rings, the
//!    worst case for cyclic choices.

use proptest::prelude::*;
use rg_core::graph::Rag;
use rg_core::merge::{tie_key, tie_priority, Merger};
use rg_core::telemetry::derive_merge_iterations;
use rg_core::{segment, segment_par, Config, Connectivity, MergeBackend, RegionStats, TieBreak};
use rg_imaging::synth;

/// Deterministically shuffles `v` with a splitmix-style keyed sort.
fn shuffle<T: Copy>(v: &[T], key: u64) -> Vec<T> {
    let mut pairs: Vec<(u64, T)> = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (tie_priority(key, 0, i as u64, 0), x))
        .collect();
    pairs.sort_by_key(|&(k, _)| k);
    pairs.into_iter().map(|(_, x)| x).collect()
}

/// The winner `chooser` picks among `candidates` under `policy` at
/// `iteration`: minimum `tie_key`, scanning in the given order.
fn pick(policy: TieBreak, iteration: u32, chooser: u64, candidates: &[u64]) -> u64 {
    let mut best: Option<(u64, (u64, u64))> = None;
    for &c in candidates {
        let k = tie_key(policy, iteration, chooser, c);
        if best.is_none_or(|(_, bk)| k < bk) {
            best = Some((c, k));
        }
    }
    best.expect("non-empty candidate list").0
}

/// An equal-intensity ring of `n` regions with `chords` extra edges: every
/// edge weight is 0, so every neighbour choice is a pure tie.
fn adversarial_ring(n: usize, chords: &[(usize, usize)]) -> (Rag<'static, u8>, Vec<u64>) {
    let stats = vec![RegionStats::of_pixel(128u8); n];
    let mut edges: Vec<(u32, u32)> = (0..n)
        .map(|i| {
            let j = (i + 1) % n;
            ((i.min(j)) as u32, (i.max(j)) as u32)
        })
        .collect();
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b {
            edges.push(((a.min(b)) as u32, (a.max(b)) as u32));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    // Canonical IDs must be strictly increasing but need not be dense.
    let ids: Vec<u64> = (0..n as u64).map(|i| i * 5 + 2).collect();
    (Rag::from_parts(stats, edges), ids)
}

prop_compose! {
    fn candidate_set()(
        raw in proptest::collection::vec(0u64..10_000, 1..24),
    ) -> Vec<u64> {
        let mut v = raw;
        v.sort_unstable();
        v.dedup();
        v
    }
}

prop_compose! {
    fn ring()(
        n in 3usize..48,
    )(
        chords in proptest::collection::vec((0usize.., 0usize..), 0..16),
        n in Just(n),
    ) -> (usize, Vec<(usize, usize)>) {
        (n, chords.into_iter().map(|(a, b)| (a % n, b % n)).collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `tie_key` is injective over distinct candidates for a fixed chooser
    /// (the secondary component guarantees it even on hash collisions), so
    /// the argmin is unique.
    #[test]
    fn tie_key_is_injective_per_chooser(
        cands in candidate_set(),
        chooser in 0u64..10_000,
        iteration in 0u32..64,
        seed in 0u64..1_000,
    ) {
        for policy in [
            TieBreak::SmallestId,
            TieBreak::LargestId,
            TieBreak::Random { seed },
        ] {
            let mut keys: Vec<(u64, u64)> = cands
                .iter()
                .map(|&c| tie_key(policy, iteration, chooser, c))
                .collect();
            keys.sort_unstable();
            let len = keys.len();
            keys.dedup();
            prop_assert_eq!(keys.len(), len, "{:?}: duplicate keys", policy);
        }
    }

    /// The winning candidate is invariant under any enumeration order of
    /// the candidate list — the property the engines rely on.
    #[test]
    fn winner_is_enumeration_order_invariant(
        cands in candidate_set(),
        chooser in 0u64..10_000,
        iteration in 0u32..64,
        seed in 0u64..1_000,
        shuffles in proptest::collection::vec(0u64.., 1..6),
    ) {
        for policy in [
            TieBreak::SmallestId,
            TieBreak::LargestId,
            TieBreak::Random { seed },
        ] {
            let base = pick(policy, iteration, chooser, &cands);
            for &k in &shuffles {
                let shuffled = shuffle(&cands, k);
                prop_assert_eq!(
                    pick(policy, iteration, chooser, &shuffled),
                    base,
                    "{:?}: winner changed under shuffle", policy
                );
            }
            // Reversal is the adversarial order for scan-based argmins.
            let mut rev = cands.clone();
            rev.reverse();
            prop_assert_eq!(pick(policy, iteration, chooser, &rev), base);
        }
    }

    /// `tie_priority` is a pure function: identical inputs give identical
    /// outputs across calls (no hidden state), and it actually depends on
    /// the iteration (re-randomisation between rounds).
    #[test]
    fn tie_priority_is_pure_and_reseeds_each_iteration(
        seed in 0u64.., chooser in 0u64.., candidate in 0u64..,
        iteration in 0u32..1_000,
    ) {
        let a = tie_priority(seed, iteration, chooser, candidate);
        let b = tie_priority(seed, iteration, chooser, candidate);
        prop_assert_eq!(a, b);
        // Not a proof of independence, just a regression guard: the next
        // iteration's priority differs somewhere in a small window.
        let differs = (1..=4u32).any(|d| {
            tie_priority(seed, iteration + d, chooser, candidate) != a
        });
        prop_assert!(differs, "priorities constant across iterations");
    }

    /// Random tie-breaking with the stall guard terminates on fully-tied
    /// adversarial rings, fully merging them, within the guard's bound:
    /// each fallback window (`max_stall` empty iterations + 1 forced
    /// smallest-ID iteration) guarantees at least one merge.
    #[test]
    fn random_ties_terminate_on_adversarial_rings(
        (n, chords) in ring(),
        seed in 0u64..10_000,
        max_stall in 1u32..4,
    ) {
        let (rag, ids) = adversarial_ring(n, &chords);
        let config = Config::with_threshold(10)
            .tie_break(TieBreak::Random { seed });
        let config = Config { max_stall, ..config };
        let mut merger = Merger::new(rag, ids, &config, false);
        let summary = merger.run();
        prop_assert_eq!(summary.num_regions, 1, "ring must fully coalesce");
        let total: u32 = summary.merges_per_iteration.iter().sum();
        prop_assert_eq!(total as usize, n - 1);
        // Worst case: every productive iteration merges exactly one pair
        // and is preceded by a full stall window.
        let bound = (n as u32 - 1) * (max_stall + 1) + max_stall;
        prop_assert!(
            summary.iterations <= bound,
            "{} iterations exceeds stall-guard bound {}", summary.iterations, bound
        );
    }

    /// `derive_merge_iterations` (used by the simulated engines' telemetry)
    /// replays exactly the fallback decisions the live `Merger` made.
    #[test]
    fn derived_fallback_flags_match_live_stepping(
        (n, chords) in ring(),
        seed in 0u64..10_000,
        max_stall in 1u32..4,
    ) {
        let (rag, ids) = adversarial_ring(n, &chords);
        let config = Config::with_threshold(10)
            .tie_break(TieBreak::Random { seed });
        let config = Config { max_stall, ..config };
        let mut merger = Merger::new(rag, ids, &config, false);
        let mut live = Vec::new();
        while !merger.is_done() {
            let rep = merger.step();
            live.push((rep.merges, rep.used_fallback));
        }
        let merges: Vec<u32> = live.iter().map(|&(m, _)| m).collect();
        let derived = derive_merge_iterations(&merges, config.tie_break, config.max_stall);
        prop_assert_eq!(derived.len(), live.len());
        for (i, (rec, &(m, f))) in derived.iter().zip(&live).enumerate() {
            prop_assert_eq!(rec.iteration as usize, i);
            prop_assert_eq!(rec.merges, m);
            prop_assert_eq!(rec.used_fallback, f, "iteration {}", i);
        }
    }

    /// **Differential backend equivalence.** The incremental CSR merge
    /// engine and the reference edge-list engine are different data
    /// structures implementing one algorithm: for any image, threshold,
    /// connectivity, tie policy, and engine (sequential or rayon), they must
    /// produce the *identical* [`rg_core::Segmentation`] — same final
    /// labels, same region count, and the same merge history iteration by
    /// iteration (the merges-per-iteration trajectory, which pins down
    /// every intermediate RAG state, not just the fixed point).
    #[test]
    fn csr_backend_matches_reference_backend(
        w in 8usize..48,
        h in 8usize..48,
        rects in 0usize..9,
        img_seed in 0u64..1_000,
        threshold in 0u32..48,
        eight in any::<bool>(),
        policy in 0usize..3,
        seed in 0u64..1_000,
        parallel in any::<bool>(),
    ) {
        let img = synth::random_rects(w, h, rects, img_seed);
        let tie = [
            TieBreak::SmallestId,
            TieBreak::LargestId,
            TieBreak::Random { seed },
        ][policy];
        let conn = if eight { Connectivity::Eight } else { Connectivity::Four };
        let base = Config::with_threshold(threshold)
            .tie_break(tie)
            .connectivity(conn);
        let csr = Config { merge_backend: MergeBackend::Csr, ..base };
        let reference = Config { merge_backend: MergeBackend::Reference, ..base };
        let (a, b) = if parallel {
            (segment_par(&img, &csr), segment_par(&img, &reference))
        } else {
            (segment(&img, &csr), segment(&img, &reference))
        };
        prop_assert_eq!(
            a, b,
            "backends diverged: {:?} conn={:?} t={} parallel={}",
            tie, conn, threshold, parallel
        );
    }
}
