//! Property-based tests of the segmentation invariants on arbitrary
//! scenes: for any image, threshold, policy, and connectivity, the result
//! must verify (connected + homogeneous + maximal), and the sequential and
//! rayon engines must agree bit for bit.

use proptest::prelude::*;
use rg_core::{segment, segment_par, split, verify_segmentation, Config, Connectivity, TieBreak};
use rg_imaging::{synth, Image};

prop_compose! {
    fn scene()(
        seed in 0u64..1_000_000,
        w in 8usize..48,
        h in 8usize..48,
        count in 0usize..10,
    ) -> Image<u8> {
        synth::random_rects(w, h, count, seed)
    }
}

prop_compose! {
    fn config()(
        t in 0u32..120,
        tie in prop_oneof![
            Just(TieBreak::SmallestId),
            Just(TieBreak::LargestId),
            (0u64..1000).prop_map(|seed| TieBreak::Random { seed }),
        ],
        conn in prop_oneof![Just(Connectivity::Four), Just(Connectivity::Eight)],
        cap in prop_oneof![Just(None), (0u8..6).prop_map(Some)],
    ) -> Config {
        Config::with_threshold(t).tie_break(tie).connectivity(conn).max_square_log2(cap)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segmentation_invariants_hold(img in scene(), cfg in config()) {
        let seg = segment(&img, &cfg);
        if let Err(violations) = verify_segmentation(&img, &seg, &cfg) {
            prop_assert!(false, "violations: {:?}", &violations[..violations.len().min(3)]);
        }
    }

    #[test]
    fn par_engine_is_bit_identical(img in scene(), cfg in config()) {
        let a = segment(&img, &cfg);
        let b = segment_par(&img, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn split_squares_tile_and_are_maximal(img in scene(), t in 0u32..100) {
        let cfg = Config::with_threshold(t);
        let s = split(&img, &cfg);
        // Tiling: every pixel covered exactly once.
        let mut covered = vec![false; img.len()];
        for sq in &s.squares {
            for y in sq.y..sq.y + sq.side() {
                for x in sq.x..sq.x + sq.side() {
                    let i = y as usize * img.width() + x as usize;
                    prop_assert!(!covered[i], "double cover at ({x},{y})");
                    covered[i] = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
        // Homogeneity of every square.
        for (sq, st) in s.squares.iter().zip(&s.stats) {
            prop_assert!(st.range() <= t, "square ({},{}) range {}", sq.x, sq.y, st.range());
        }
        // Maximality: four sibling whole squares of equal size never have a
        // combined range within the threshold.
        use std::collections::HashMap;
        let mut by_pos: HashMap<(u32, u32), usize> = HashMap::new();
        for (i, sq) in s.squares.iter().enumerate() {
            by_pos.insert((sq.x, sq.y), i);
        }
        for (i, sq) in s.squares.iter().enumerate() {
            let b = sq.side();
            if sq.x % (2 * b) != 0 || sq.y % (2 * b) != 0 {
                continue;
            }
            if (sq.x + 2 * b) as usize > img.width() || (sq.y + 2 * b) as usize > img.height() {
                continue;
            }
            let sib = [
                by_pos.get(&(sq.x + b, sq.y)),
                by_pos.get(&(sq.x, sq.y + b)),
                by_pos.get(&(sq.x + b, sq.y + b)),
            ];
            let all_same_size = sib
                .iter()
                .all(|o| o.is_some_and(|&j| s.squares[j].log2 == sq.log2));
            if !all_same_size {
                continue;
            }
            let mut acc = s.stats[i];
            for o in sib.into_iter().flatten() {
                acc = acc.fold(s.stats[*o]);
            }
            prop_assert!(
                acc.range() > t,
                "four siblings at ({},{}) size {} should have coalesced (range {})",
                sq.x, sq.y, b, acc.range()
            );
        }
    }

    #[test]
    fn partition_is_threshold_monotone_in_region_count(img in scene()) {
        // Region counts are not monotone in T for split-and-merge in
        // general, but the extremes are safe anchors: T=255 always yields
        // one region, and T=0 yields the flat connected components, an
        // upper bound on every other threshold's count.
        let lo = segment(&img, &Config::with_threshold(0));
        let hi = segment(&img, &Config::with_threshold(255));
        prop_assert_eq!(hi.num_regions, 1);
        prop_assert!(lo.num_regions >= hi.num_regions);
    }
}
