//! Tests of merge-trace recording and the weight-cut hierarchy.

use rg_core::labels::compact_first_appearance;
use rg_core::{segment, segment_with_trace, Config, TieBreak};
use rg_imaging::synth;

#[test]
fn trace_does_not_change_segmentation() {
    let img = synth::circle_collection(64);
    let cfg = Config::with_threshold(10).tie_break(TieBreak::Random { seed: 4 });
    let plain = segment(&img, &cfg);
    let (traced, trace) = segment_with_trace(&img, &cfg);
    assert_eq!(plain, traced);
    // Total events = squares - final regions.
    assert_eq!(trace.len(), traced.num_squares - traced.num_regions);
    assert_eq!(trace.num_vertices, traced.num_squares);
}

#[test]
fn full_cut_reproduces_final_partition() {
    let img = synth::rect_collection(64);
    let cfg = Config::with_threshold(10);
    let (seg, trace) = segment_with_trace(&img, &cfg);
    // Cutting at the full threshold replays every merge.
    assert_eq!(trace.regions_at_cut(cfg.threshold), seg.num_regions);
    let by_vertex = trace.labels_at_cut(cfg.threshold);
    // Map through the split to per-pixel labels and compare partitions.
    let split = rg_core::split(&img, &cfg);
    let raw: Vec<u32> = split
        .square_of
        .iter()
        .map(|&q| by_vertex[q as usize])
        .collect();
    let (labels, n) = compact_first_appearance(&raw);
    assert_eq!(n, seg.num_regions);
    assert_eq!(labels, seg.labels);
}

#[test]
fn zero_cut_restores_squares() {
    let img = synth::rect_collection(64);
    let cfg = Config::with_threshold(10);
    let (seg, trace) = segment_with_trace(&img, &cfg);
    // All merges in these flat scenes happen at weight 0 (regions of equal
    // intensity), so a weight-0 cut replays everything...
    assert_eq!(trace.regions_at_cut(0), seg.num_regions);
    // ...and the curve is a single step.
    let curve = trace.compression_curve();
    assert_eq!(curve.len(), 1);
    assert_eq!(curve[0], (0, seg.num_regions));
}

#[test]
fn noisy_scene_has_monotone_compression_curve() {
    let img = synth::uniform_noise(96, 96, 40, 220, 9);
    let cfg = Config::with_threshold(60);
    let (seg, trace) = segment_with_trace(&img, &cfg);
    let curve = trace.compression_curve();
    assert!(!curve.is_empty());
    for w in curve.windows(2) {
        assert!(w[0].0 < w[1].0);
        assert!(w[0].1 >= w[1].1, "region count must not increase with cut");
    }
    // The last point admits every merge.
    assert_eq!(curve.last().unwrap().1, seg.num_regions);
    // Merges-per-iteration grouping is consistent with the summary.
    let per_iter = trace.merges_per_iteration();
    let total: u32 = per_iter.iter().map(|&(_, n)| n).sum();
    assert_eq!(total as usize, trace.len());
}

#[test]
fn absorbed_vertices_are_exactly_the_losers() {
    let img = synth::nested_rects(64);
    let cfg = Config::with_threshold(10);
    let (seg, trace) = segment_with_trace(&img, &cfg);
    let absorbed = (0..trace.num_vertices as u32)
        .filter(|&v| trace.absorbed_at(v).is_some())
        .count();
    assert_eq!(absorbed, trace.num_vertices - seg.num_regions);
}
