//! Property tests of the JSONL journal: a journal cut off at *any* byte —
//! the file a crashed or killed run leaves behind — must still parse
//! (tolerantly) into a prefix of the original event stream, replay into a
//! partial [`rg_core::TelemetryReport`], and export a valid Chrome trace,
//! all without panicking.

use proptest::prelude::*;
use rg_core::{
    chrome_trace, parse_journal, replay, segment_with_telemetry, validate_chrome_trace,
    validate_journal, Config, Event, EventLog, TieBreak,
};
use rg_imaging::synth;
use std::sync::OnceLock;

/// One real traced run (sequential engine, random-rects scene), rendered
/// to JSONL once and shared by every proptest case.
fn full_journal() -> &'static (Vec<Event>, String) {
    static CELL: OnceLock<(Vec<Event>, String)> = OnceLock::new();
    CELL.get_or_init(|| {
        let img = synth::random_rects(32, 24, 6, 11);
        let cfg = Config::with_threshold(18).tie_break(TieBreak::Random { seed: 5 });
        let mut log = EventLog::in_memory();
        segment_with_telemetry(&img, &cfg, &mut log);
        let events = log.into_events();
        let text: String = events.iter().map(Event::to_line).collect();
        assert!(
            events.len() > 20,
            "scene too simple to exercise the journal"
        );
        (events, text)
    })
}

#[test]
fn the_untruncated_journal_is_valid_and_replays() {
    let (events, text) = full_journal();
    let (parsed, stats) = parse_journal(text);
    assert!(!stats.truncated);
    assert_eq!(&parsed, events);
    validate_journal(&parsed).expect("engine journal must be balanced and strictly nested");
    let report = replay(&parsed);
    assert_eq!(report.engine, "seq");
    assert!(report.num_regions > 0);
}

proptest! {
    /// Cutting the journal at an arbitrary byte yields a clean prefix:
    /// tolerant parsing recovers exactly the complete leading lines,
    /// replay folds them into a partial report, and the Chrome exporter
    /// auto-closes whatever spans the cut left open.
    #[test]
    fn any_prefix_parses_replays_and_exports(cut in 0usize..=4096) {
        let (events, text) = full_journal();
        let cut = cut.min(text.len());
        let prefix = &text[..cut];

        let (parsed, stats) = parse_journal(prefix);
        // The parsed events are a strict prefix of the original stream —
        // a cut can only lose trailing lines, never corrupt earlier ones
        // or invent new ones.
        prop_assert!(parsed.len() <= events.len());
        prop_assert_eq!(&parsed[..], &events[..parsed.len()]);
        // A cut at a line boundary can never report truncation. (The
        // converse does not hold: cutting just *before* a newline leaves a
        // complete, parseable final line.)
        if cut == 0 || prefix.ends_with('\n') {
            prop_assert!(!stats.truncated);
            prop_assert_eq!(prefix.lines().count(), parsed.len());
        }

        // Replay never panics and keeps what it saw.
        let report = replay(&parsed);
        if !parsed.is_empty() {
            prop_assert_eq!(report.engine.as_str(), "seq");
        }
        prop_assert!(report.merge_iterations.len() <= replay(events).merge_iterations.len());

        // The Chrome export of a truncated journal is still schema-valid.
        let doc = chrome_trace(&parsed);
        prop_assert!(validate_chrome_trace(&doc).is_ok(), "chrome export invalid at cut {}", cut);
    }

    /// Same property measured in whole lines instead of bytes (exercises
    /// deep cuts across the entire journal, not just the first 4 KiB).
    #[test]
    fn any_line_prefix_replays(keep_permille in 0usize..=1000) {
        let (events, text) = full_journal();
        let lines: Vec<&str> = text.lines().collect();
        let keep = lines.len() * keep_permille / 1000;
        let prefix: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();

        let (parsed, stats) = parse_journal(&prefix);
        prop_assert!(!stats.truncated);
        prop_assert_eq!(parsed.len(), keep);
        prop_assert_eq!(&parsed[..], &events[..keep]);
        let _ = replay(&parsed);
        prop_assert!(validate_chrome_trace(&chrome_trace(&parsed)).is_ok());
    }
}
