//! Exact reproduction of the paper's worked examples (Figures 1 and 2).
//!
//! Figure 2's intermediate states were hand-verified from the paper (see
//! DESIGN.md): with smallest-ID tie-breaking the 4×4 example merges
//! {0,5} and {2,4} in iteration 1, {3,6} in iteration 2, and {0,3} plus
//! {1,2} in iteration 3, finishing with 2 regions.

use rg_core::graph::Rag;
use rg_core::{split, Config, Connectivity, Merger, TieBreak};
use rg_imaging::synth::figure1_image;

fn cfg() -> Config {
    Config::with_threshold(3).tie_break(TieBreak::SmallestId)
}

#[test]
fn figure1_square_regions() {
    let img = figure1_image();
    let s = split(&img, &cfg());
    // (b) after the first and final split iteration: three 2×2 squares and
    // the four raw pixels of the top-right quadrant.
    assert_eq!(s.iterations, 1);
    let squares: Vec<(u32, u32, u32)> = s.squares.iter().map(|q| (q.x, q.y, q.side())).collect();
    assert_eq!(
        squares,
        vec![
            (0, 0, 2),
            (2, 0, 1),
            (3, 0, 1),
            (2, 1, 1),
            (3, 1, 1),
            (0, 2, 2),
            (2, 2, 2),
        ]
    );
}

#[test]
fn figure2_rag_weights() {
    // Edge weights at the start of the merge stage, from the figure:
    // w(0,5)=2, w(0,3)=3, w(0,1)=7 (inactive at T=3), w(1,2)=2, w(3,4)=1,
    // w(3,6)=1, w(5,6)=3, ...
    let img = figure1_image();
    let s = split(&img, &cfg());
    let rag = Rag::from_split(&s, Connectivity::Four);
    let weight = |u: usize, v: usize| {
        rg_core::Criterion::PixelRange.weight(&rag.stats[u], &rag.stats[v]) >> 16
    };
    assert_eq!(weight(0, 5), 2);
    assert_eq!(weight(0, 3), 3);
    assert_eq!(weight(0, 1), 7);
    assert_eq!(weight(1, 2), 2);
    assert_eq!(weight(3, 4), 1);
    assert_eq!(weight(3, 6), 1);
    assert_eq!(weight(5, 6), 3);
}

#[test]
fn figure2_iteration_by_iteration() {
    let img = figure1_image();
    let config = cfg();
    let s = split(&img, &config);
    let rag = Rag::from_split(&s, Connectivity::Four);
    let ids: Vec<u64> = s.squares.iter().map(|q| q.id(4) as u64).collect();
    let mut m = Merger::new(rag, ids, &config, false);

    // (a) start: 7 regions.
    assert_eq!(m.num_regions(), 7);

    // (b) iteration 1: {0,5} and {2,4} merge.
    assert_eq!(m.step().merges, 2);
    let l = m.labels_by_vertex();
    assert_eq!(l[5], 0);
    assert_eq!(l[4], 2);
    assert_eq!(m.num_regions(), 5);

    // (c) iteration 2: {3,6} merges.
    assert_eq!(m.step().merges, 1);
    assert_eq!(m.labels_by_vertex()[6], 3);
    assert_eq!(m.num_regions(), 4);

    // (d) iteration 3 (final): {0,3} and {1,2} merge; no active edges.
    assert_eq!(m.step().merges, 2);
    assert!(m.is_done());
    assert_eq!(m.num_regions(), 2);
    assert_eq!(m.iterations(), 3);
    assert_eq!(m.labels_by_vertex(), vec![0, 1, 1, 0, 1, 0, 0]);
}
