//! Differential property tests of the packed word-parallel split engine
//! against the retained pre-optimisation oracle
//! ([`rg_core::split_reference`]): squares, per-square stats, the
//! pixel→square map and the iteration count must be bit-identical across
//! random sizes (including non-power-of-two rectangles and degenerate
//! 1×N / N×1 strips), both criteria, sequential vs rayon passes, and a
//! scratch reused across shape changes vs fresh calls.

use proptest::prelude::*;
use rg_core::{
    split, split_into, split_par, split_reference, Config, Criterion, SplitResult, SplitScratch,
};
use rg_imaging::{synth, Image};

// Random rectangles, biased toward awkward shapes: non-power-of-two
// sides, strips of width or height 1, and tiny images.
prop_compose! {
    fn scene()(
        seed in 0u64..1_000_000,
        shape in prop_oneof![
            ((2usize..70), (2usize..70)),
            ((1usize..2), (1usize..130)),   // 1×N strip
            ((1usize..130), (1usize..2)),   // N×1 strip
            (Just(65usize), Just(33usize)), // just past powers of two
        ],
        count in 0usize..12,
    ) -> Image<u8> {
        synth::random_rects(shape.0, shape.1, count, seed)
    }
}

prop_compose! {
    fn split_config()(
        t in 0u32..120,
        crit in prop_oneof![Just(Criterion::PixelRange), Just(Criterion::MeanDifference)],
        cap in prop_oneof![Just(None), (0u8..8).prop_map(Some)],
    ) -> Config {
        Config::with_threshold(t).criterion(crit).max_square_log2(cap)
    }
}

/// Full bit-identity check of the split output fields the consumers read.
fn assert_same(a: &SplitResult<u8>, b: &SplitResult<u8>, what: &str) {
    assert_eq!(a.squares, b.squares, "{what}: squares");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.square_of, b.square_of, "{what}: square_of");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!((a.width, a.height), (b.width, b.height), "{what}: shape");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packed_split_matches_reference(img in scene(), cfg in split_config()) {
        let oracle = split_reference(&img, &cfg);
        assert_same(&split(&img, &cfg), &oracle, "seq");
        assert_same(&split_par(&img, &cfg), &oracle, "par");
    }

    #[test]
    fn packed_counters_never_exceed_reference(img in scene(), cfg in split_config()) {
        // The machine-independent work counters must show the packing
        // doing no more work than the padded scalar oracle.
        let oracle = split_reference(&img, &cfg);
        let packed = split(&img, &cfg);
        prop_assert!(packed.metrics.cells_folded <= oracle.metrics.cells_folded);
        prop_assert!(packed.metrics.words_tested <= oracle.metrics.words_tested);
        prop_assert_eq!(packed.metrics.productive_levels, oracle.metrics.productive_levels);
    }

    #[test]
    fn reused_scratch_matches_reference_across_shapes(
        imgs in prop::collection::vec(scene(), 2..5),
        cfg in split_config(),
    ) {
        // One scratch + one output buffer across a stream of different
        // shapes (growing and shrinking) stays bit-identical to the
        // oracle, sequentially and in parallel.
        let mut scratch = SplitScratch::new();
        let mut out = SplitResult::default();
        for img in &imgs {
            let oracle = split_reference(img, &cfg);
            for parallel in [false, true] {
                split_into(img, &cfg, parallel, &mut scratch, &mut out);
                assert_same(&out, &oracle, if parallel { "reused/par" } else { "reused/seq" });
            }
        }
    }
}
