//! Local graph setup with boundary exchange (paper steps 1–2).
//!
//! Each node splits its sub-image independently, builds the vertices and
//! internal edges of its local graph, then exchanges boundary strips with
//! its grid neighbours so that *"edges connected to vertices in other
//! processors are created"*.
//!
//! Regions are identified by their canonical ID (linear index of the
//! top-left pixel in the **global** image) and owned by the node whose
//! tile contains that pixel. The graph is stored as *directed half-edges*
//! `(owned source, target)`; every undirected edge appears exactly once at
//! each endpoint's owner — the symmetry the distributed merge relies on to
//! route stats, choices, and redirects without extra handshakes.

use crate::decomp::{Decomposition, Tile};
use cmmd_sim::channel::{encode_u32s, try_decode_u32s};
use cmmd_sim::{Fault, Node};
use rg_core::graph::adjacent_label_pairs;
use rg_core::{split, Config, Connectivity, RegionStats};
use rg_imaging::{Image, Intensity};
use std::collections::{BTreeMap, HashMap};

/// Work-unit constants (abstract units × `t_cpu`): the F77 code's per-pass
/// costs, calibrated with the paper's split-stage rows.
pub const SPLIT_UNITS_PER_PX_PER_LEVEL: u64 = 12;
/// Work units per pixel for the local graph construction.
pub const RAG_UNITS_PER_PX: u64 = 8;
/// Work units per boundary-strip element.
pub const STRIP_UNITS_PER_ELEM: u64 = 4;

/// A node's share of the distributed region adjacency graph.
#[derive(Debug)]
pub struct LocalRag {
    /// Owned regions by canonical ID.
    pub store: BTreeMap<u32, RegionStats<u32>>,
    /// Directed half-edges `(owned source id, target id)`, sorted, unique.
    pub half_edges: Vec<(u32, u32)>,
    /// Statistics of remote regions adjacent to ours (refreshed every
    /// merge iteration; this is the initial snapshot from the boundary
    /// exchange).
    pub ghosts: HashMap<u32, RegionStats<u32>>,
    /// Per tile pixel (row-major within the tile), the global ID of its
    /// square.
    pub pixel_square: Vec<u32>,
    /// Productive split iterations on this node's sub-image.
    pub split_iterations: u32,
    /// Synchronised virtual time at the end of the split stage, seconds.
    pub split_done_seconds: f64,
}

/// Encodes `(id, stats)` entries as a u32 stream (7 words per entry).
fn encode_entries(entries: &[(u32, RegionStats<u32>)]) -> Vec<u32> {
    let mut out = Vec::with_capacity(entries.len() * 7);
    for &(id, s) in entries {
        out.push(id);
        out.push(s.min);
        out.push(s.max);
        out.push(s.sum as u32);
        out.push((s.sum >> 32) as u32);
        out.push(s.count as u32);
        out.push((s.count >> 32) as u32);
    }
    out
}

/// Inverse of [`encode_entries`]; `None` for a length that is not a whole
/// number of entries (a corrupted payload on a chaos run).
fn try_decode_entries(words: &[u32]) -> Option<Vec<(u32, RegionStats<u32>)>> {
    if !words.len().is_multiple_of(7) {
        return None;
    }
    Some(
        words
            .chunks_exact(7)
            .map(|c| {
                (
                    c[0],
                    RegionStats {
                        min: c[1],
                        max: c[2],
                        sum: c[3] as u64 | ((c[4] as u64) << 32),
                        count: c[5] as u64 | ((c[6] as u64) << 32),
                    },
                )
            })
            .collect(),
    )
}

/// Inverse of [`encode_entries`].
///
/// # Panics
/// Panics on a malformed length; use [`try_decode_entries`] on paths that
/// must survive corruption.
#[cfg(test)]
fn decode_entries(words: &[u32]) -> Vec<(u32, RegionStats<u32>)> {
    try_decode_entries(words).unwrap_or_else(|| panic!("malformed stats payload"))
}

/// Splits the node's sub-image and assembles its local share of the graph,
/// exchanging boundary strips with grid neighbours.
///
/// `cap` is the square-size cap actually used (already clamped to the
/// decomposition's safe cap by the driver).
///
/// Fallible: under an armed fault plan, an unhealable link or a poisoned
/// collective surfaces as `Err` so the driver can degrade to the host
/// pipeline; without a plan the communication never fails.
pub fn build_local_rag<P: Intensity>(
    node: &mut Node,
    decomp: &Decomposition,
    img: &Image<P>,
    config: &Config,
    cap: u8,
) -> Result<LocalRag, Fault> {
    let me = node.rank();
    let malformed = |what: &'static str| Fault::Malformed { rank: me, what };
    let tile = decomp.tile(me);
    let sub = img.crop(tile.x0, tile.y0, tile.w, tile.h);

    // --- step 1: independent local split --------------------------------
    let local_cfg = Config {
        max_square_log2: Some(cap),
        ..*config
    };
    let s = split(&sub, &local_cfg);
    node.compute(
        tile.w as u64 * tile.h as u64 * SPLIT_UNITS_PER_PX_PER_LEVEL * (s.iterations as u64 + 1),
    );
    // The split stage ends with a synchronisation point: the paper times
    // the stages separately.
    node.set_trace_stream("split");
    node.try_barrier()?;
    let split_done_seconds = node.clock_seconds();

    // Owned regions with global IDs.
    let gid_of_square: Vec<u32> = s
        .squares
        .iter()
        .map(|sq| ((sq.y as usize + tile.y0) * decomp.width + sq.x as usize + tile.x0) as u32)
        .collect();
    let mut store = BTreeMap::new();
    for (sq_idx, &gid) in gid_of_square.iter().enumerate() {
        let st = s.stats[sq_idx];
        store.insert(
            gid,
            RegionStats {
                min: st.min.to_u32(),
                max: st.max.to_u32(),
                sum: st.sum,
                count: st.count,
            },
        );
    }
    let pixel_square: Vec<u32> = s
        .square_of
        .iter()
        .map(|&q| gid_of_square[q as usize])
        .collect();

    // --- step 2: internal edges ------------------------------------------
    let mut half_edges: Vec<(u32, u32)> = Vec::new();
    for (a, b) in adjacent_label_pairs(&s.square_of, tile.w, tile.h, config.connectivity, false) {
        let (ga, gb) = (gid_of_square[a as usize], gid_of_square[b as usize]);
        half_edges.push((ga, gb));
        half_edges.push((gb, ga));
    }
    node.compute(tile.w as u64 * tile.h as u64 * RAG_UNITS_PER_PX);

    // --- step 2 (cont.): boundary exchange --------------------------------
    let (tx, ty) = decomp.grid_coords(node.rank());
    let mut ghosts: HashMap<u32, RegionStats<u32>> = HashMap::new();

    // Strip of (id, stats) for one side of the tile.
    let strip = |side: Side| -> Vec<(u32, RegionStats<u32>)> {
        let coords: Vec<(usize, usize)> = match side {
            Side::Left => (0..tile.h).map(|y| (0, y)).collect(),
            Side::Right => (0..tile.h).map(|y| (tile.w - 1, y)).collect(),
            Side::Top => (0..tile.w).map(|x| (x, 0)).collect(),
            Side::Bottom => (0..tile.w).map(|x| (x, tile.h - 1)).collect(),
        };
        coords
            .into_iter()
            .map(|(x, y)| {
                let gid = pixel_square[y * tile.w + x];
                (gid, store[&gid])
            })
            .collect()
    };

    #[derive(Clone, Copy, PartialEq)]
    enum Side {
        Left,
        Right,
        Top,
        Bottom,
    }

    // (side to send, neighbour offset, the side of *my* tile the received
    // strip pairs against, axis length)
    let neighbours: Vec<(Side, isize, isize)> = vec![
        (Side::Right, 1, 0),
        (Side::Left, -1, 0),
        (Side::Bottom, 0, 1),
        (Side::Top, 0, -1),
    ];

    // Send strips to existing neighbours first (buffered), then receive.
    node.set_trace_stream("boundary");
    let mut expected: Vec<(usize, Side)> = Vec::new();
    for &(side, dx, dy) in &neighbours {
        let nx = tx as isize + dx;
        let ny = ty as isize + dy;
        if nx < 0 || ny < 0 || nx >= decomp.p1 as isize || ny >= decomp.p2 as isize {
            continue;
        }
        let peer = decomp.rank_of(nx as usize, ny as usize);
        let entries = strip(side);
        node.compute(entries.len() as u64 * STRIP_UNITS_PER_ELEM);
        node.try_send_sync(peer, encode_u32s(&encode_entries(&entries)))?;
        expected.push((peer, side));
    }
    for (peer, my_side) in expected {
        let words = try_decode_u32s(node.try_recv_from(peer)?)
            .map_err(|_| malformed("boundary strip payload"))?;
        let theirs =
            try_decode_entries(&words).ok_or_else(|| malformed("boundary strip entries"))?;
        node.compute(theirs.len() as u64 * STRIP_UNITS_PER_ELEM);
        // My border pixels facing this neighbour, in strip order.
        let mine: Vec<u32> = match my_side {
            Side::Right => (0..tile.h)
                .map(|y| pixel_square[y * tile.w + tile.w - 1])
                .collect(),
            Side::Left => (0..tile.h).map(|y| pixel_square[y * tile.w]).collect(),
            Side::Bottom => (0..tile.w)
                .map(|x| pixel_square[(tile.h - 1) * tile.w + x])
                .collect(),
            Side::Top => (0..tile.w).map(|x| pixel_square[x]).collect(),
        };
        debug_assert_eq!(mine.len(), theirs.len());
        let mut pair = |m: u32, t: usize| {
            let (gid, st) = theirs[t];
            ghosts.insert(gid, st);
            half_edges.push((m, gid));
        };
        for (i, &m) in mine.iter().enumerate() {
            pair(m, i);
            if config.connectivity == Connectivity::Eight {
                if i > 0 {
                    pair(m, i - 1);
                }
                if i + 1 < theirs.len() {
                    pair(m, i + 1);
                }
            }
        }
    }

    // Diagonal corner exchange for 8-connectivity.
    if config.connectivity == Connectivity::Eight {
        node.set_trace_stream("corner");
        let mut expected: Vec<usize> = Vec::new();
        for (dx, dy) in [(1isize, 1isize), (-1, 1), (1, -1), (-1, -1)] {
            let nx = tx as isize + dx;
            let ny = ty as isize + dy;
            if nx < 0 || ny < 0 || nx >= decomp.p1 as isize || ny >= decomp.p2 as isize {
                continue;
            }
            let peer = decomp.rank_of(nx as usize, ny as usize);
            // My corner pixel facing this diagonal neighbour.
            let cx = if dx > 0 { tile.w - 1 } else { 0 };
            let cy = if dy > 0 { tile.h - 1 } else { 0 };
            let gid = pixel_square[cy * tile.w + cx];
            node.try_send_sync(peer, encode_u32s(&encode_entries(&[(gid, store[&gid])])))?;
            expected.push(peer);
        }
        for peer in expected {
            let words = try_decode_u32s(node.try_recv_from(peer)?)
                .map_err(|_| malformed("corner stats payload"))?;
            let theirs =
                try_decode_entries(&words).ok_or_else(|| malformed("corner stats entries"))?;
            let (gid, st) = *theirs
                .first()
                .ok_or_else(|| malformed("empty corner stats"))?;
            ghosts.insert(gid, st);
            // Which of my corners faces this peer?
            let (ptx, pty) = decomp.grid_coords(peer);
            let cx = if ptx > tx { tile.w - 1 } else { 0 };
            let cy = if pty > ty { tile.h - 1 } else { 0 };
            half_edges.push((pixel_square[cy * tile.w + cx], gid));
        }
    }

    half_edges.sort_unstable();
    half_edges.dedup();

    Ok(LocalRag {
        store,
        half_edges,
        ghosts,
        pixel_square,
        split_iterations: s.iterations,
        split_done_seconds,
    })
}

/// Re-exported for the driver: a tile's pixel rectangle.
pub type TileRect = Tile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_entry_roundtrip() {
        let entries = vec![
            (
                7u32,
                RegionStats {
                    min: 3u32,
                    max: 250,
                    sum: 0x1_2345_6789,
                    count: 0x2_0000_0001,
                },
            ),
            (
                9,
                RegionStats {
                    min: 0,
                    max: 0,
                    sum: 0,
                    count: 1,
                },
            ),
        ];
        assert_eq!(decode_entries(&encode_entries(&entries)), entries);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn decode_rejects_bad_length() {
        let _ = decode_entries(&[1, 2, 3]);
    }

    #[test]
    fn try_decode_surfaces_bad_length_as_none() {
        assert!(try_decode_entries(&[1, 2, 3]).is_none());
        assert_eq!(try_decode_entries(&[]), Some(Vec::new()));
    }
}
