//! Domain decomposition: mapping the image onto the node grid.
//!
//! *"The image is mapped to the node processor grid such that each
//! processor receives an N/P1 × N/P2 sub-image of the original image.
//! This partitioning maintains adjacency between neighboring blocks of the
//! image."* (step 0 of the paper's message-passing algorithm)

/// A P1 × P2 block decomposition of a `width × height` image over `q`
/// nodes (ranks row-major over the grid: `rank = ty * p1 + tx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposition {
    /// Grid columns (x direction).
    pub p1: usize,
    /// Grid rows (y direction).
    pub p2: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

/// A node's tile: the half-open pixel rectangle it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Left edge.
    pub x0: usize,
    /// Top edge.
    pub y0: usize,
    /// Width.
    pub w: usize,
    /// Height.
    pub h: usize,
}

impl Decomposition {
    /// Chooses the most square-ish `p1 × p2 = q` grid for the image.
    ///
    /// # Panics
    /// Panics if `q` is zero or exceeds the pixel count.
    pub fn for_nodes(q: usize, width: usize, height: usize) -> Self {
        assert!(q > 0, "need at least one node");
        assert!(q <= width * height, "more nodes than pixels");
        // Pick the factorisation minimising tile aspect distortion.
        let mut best = (1usize, q);
        let mut best_score = f64::INFINITY;
        for p1 in 1..=q {
            if !q.is_multiple_of(p1) {
                continue;
            }
            let p2 = q / p1;
            if p1 > width || p2 > height {
                continue;
            }
            let tw = width as f64 / p1 as f64;
            let th = height as f64 / p2 as f64;
            let score = (tw / th).max(th / tw);
            if score < best_score {
                best_score = score;
                best = (p1, p2);
            }
        }
        assert!(
            best_score.is_finite(),
            "no feasible {q}-node grid for {width}x{height}"
        );
        Self {
            p1: best.0,
            p2: best.1,
            width,
            height,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.p1 * self.p2
    }

    /// Grid coordinates of a rank.
    pub fn grid_coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.nodes());
        (rank % self.p1, rank / self.p1)
    }

    /// Rank owning grid cell `(tx, ty)`.
    pub fn rank_of(&self, tx: usize, ty: usize) -> usize {
        debug_assert!(tx < self.p1 && ty < self.p2);
        ty * self.p1 + tx
    }

    /// Balanced 1-D split point: the start of part `i` of `n` into `parts`.
    fn cut(n: usize, parts: usize, i: usize) -> usize {
        n * i / parts
    }

    /// The tile of `rank`.
    pub fn tile(&self, rank: usize) -> Tile {
        let (tx, ty) = self.grid_coords(rank);
        let x0 = Self::cut(self.width, self.p1, tx);
        let x1 = Self::cut(self.width, self.p1, tx + 1);
        let y0 = Self::cut(self.height, self.p2, ty);
        let y1 = Self::cut(self.height, self.p2, ty + 1);
        Tile {
            x0,
            y0,
            w: x1 - x0,
            h: y1 - y0,
        }
    }

    /// Rank owning pixel `(x, y)`.
    pub fn owner_of_pixel(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        // Inverse of the balanced cut: start from the closed-form estimate
        // (exact for divisible sizes) and fix up the remainder cases.
        let mut tx = (x * self.p1 / self.width).min(self.p1 - 1);
        while Self::cut(self.width, self.p1, tx) > x {
            tx -= 1;
        }
        while tx + 1 < self.p1 && Self::cut(self.width, self.p1, tx + 1) <= x {
            tx += 1;
        }
        let mut ty = (y * self.p2 / self.height).min(self.p2 - 1);
        while Self::cut(self.height, self.p2, ty) > y {
            ty -= 1;
        }
        while ty + 1 < self.p2 && Self::cut(self.height, self.p2, ty + 1) <= y {
            ty += 1;
        }
        self.rank_of(tx, ty)
    }

    /// Rank owning the region whose canonical ID (top-left linear pixel
    /// index) is `id`.
    pub fn owner_of_id(&self, id: u32) -> usize {
        let x = id as usize % self.width;
        let y = id as usize / self.width;
        self.owner_of_pixel(x, y)
    }

    /// The largest `log2` square size that can never straddle a tile
    /// boundary: the greatest `k` such that every cut point is a multiple
    /// of `2^k` and `2^k` fits in every tile.
    ///
    /// The message-passing split stage is structurally capped at this size
    /// (each node splits its sub-image independently); passing the same
    /// cap to the other engines makes all implementations produce
    /// identical split results — the convention the paper-table harness
    /// uses.
    pub fn max_safe_square_log2(&self) -> u8 {
        let mut k = 0u8;
        'outer: loop {
            let side = 1usize << (k + 1);
            for i in 0..=self.p1 {
                if Self::cut(self.width, self.p1, i) % side != 0 {
                    break 'outer;
                }
            }
            for i in 0..=self.p2 {
                if Self::cut(self.height, self.p2, i) % side != 0 {
                    break 'outer;
                }
            }
            // Must also fit inside every tile.
            for r in 0..self.nodes() {
                let t = self.tile(r);
                if t.w < side || t.h < side {
                    break 'outer;
                }
            }
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_choice_is_squareish() {
        let d = Decomposition::for_nodes(32, 128, 128);
        assert_eq!(d.p1 * d.p2, 32);
        // 8x4 or 4x8 — tiles 16x32 or 32x16.
        assert!(matches!((d.p1, d.p2), (8, 4) | (4, 8)));
        let d4 = Decomposition::for_nodes(4, 100, 100);
        assert_eq!((d4.p1, d4.p2), (2, 2));
    }

    #[test]
    fn tiles_partition_image() {
        for (q, w, h) in [(32, 128, 128), (6, 50, 40), (5, 17, 23), (1, 9, 9)] {
            let d = Decomposition::for_nodes(q, w, h);
            let mut covered = vec![0u8; w * h];
            for r in 0..d.nodes() {
                let t = d.tile(r);
                for y in t.y0..t.y0 + t.h {
                    for x in t.x0..t.x0 + t.w {
                        covered[y * w + x] += 1;
                    }
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "q={q} {w}x{h}");
        }
    }

    #[test]
    fn owner_matches_tiles() {
        for (q, w, h) in [(32, 128, 128), (6, 50, 40), (12, 64, 48)] {
            let d = Decomposition::for_nodes(q, w, h);
            for y in 0..h {
                for x in 0..w {
                    let r = d.owner_of_pixel(x, y);
                    let t = d.tile(r);
                    assert!(
                        x >= t.x0 && x < t.x0 + t.w && y >= t.y0 && y < t.y0 + t.h,
                        "pixel ({x},{y}) assigned to wrong tile {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn owner_of_id_consistent() {
        let d = Decomposition::for_nodes(8, 64, 32);
        for id in [0u32, 63, 64, 1000, 64 * 32 - 1] {
            let (x, y) = (id as usize % 64, id as usize / 64);
            assert_eq!(d.owner_of_id(id), d.owner_of_pixel(x, y));
        }
    }

    #[test]
    fn safe_square_cap() {
        // 128x128 on 32 nodes (8x4): tiles 16x32 -> cuts multiples of 16,
        // min tile side 16 -> cap 4 (squares up to 16).
        let d = Decomposition::for_nodes(32, 128, 128);
        assert_eq!(d.max_safe_square_log2(), 4);
        // 256x256 on 32 nodes: tiles 32x64 -> cap 5 (squares up to 32).
        let d = Decomposition::for_nodes(32, 256, 256);
        assert_eq!(d.max_safe_square_log2(), 5);
        // Uneven cuts give cap 0.
        let d = Decomposition::for_nodes(3, 10, 9);
        assert_eq!(d.max_safe_square_log2(), 0);
    }

    #[test]
    fn grid_coords_roundtrip() {
        let d = Decomposition::for_nodes(32, 128, 128);
        for r in 0..32 {
            let (tx, ty) = d.grid_coords(r);
            assert_eq!(d.rank_of(tx, ty), r);
        }
    }
}
