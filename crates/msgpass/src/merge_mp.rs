//! The distributed merge stage (paper steps 3–5).
//!
//! One iteration, from a node's point of view:
//!
//! 1. **Stats exchange** (all-to-many): for every half-edge `(s → d)` with
//!    a remote target, the *owner of `d`* holds the mirror half-edge
//!    `(d → s)` and therefore knows to send `d`'s fresh statistics to us;
//!    symmetrically we send ours. No request round is needed.
//! 2. **De-activation**: half-edges whose endpoints no longer satisfy the
//!    criterion are dropped (weights only grow under the pixel-range
//!    criterion, so this mirrors the paper's permanent de-activation). A
//!    global OR then decides termination.
//! 3. **Choice**: each owned region picks its best neighbour under
//!    `(weight, tie-key, tie-key₂, id)` — identical keys to every other
//!    engine.
//! 4. **Choice exchange** (all-to-many): each choice targeting a remote
//!    region is sent to its owner; both endpoint owners can then detect
//!    mutual selection locally.
//! 5. **Merge**: for a mutual pair, the smaller ID is the representative;
//!    its owner folds the statistics (the loser's stats are on hand as a
//!    ghost); the loser's owner retires the region and records the
//!    redirect.
//! 6. **Redirect exchange + relabel + half-edge transfer** (all-to-many ×2):
//!    owners of dead regions notify every node holding an edge to them;
//!    all half-edges relabel through the (single-level) redirects,
//!    self-loops vanish, and half-edges whose new source moved to another
//!    owner are shipped there.
//!
//! The paper's two communication schemes (LP / Async) plug in at every
//! all-to-many step.

use crate::boundary::LocalRag;
use crate::decomp::Decomposition;
use bytes::Bytes;
use cmmd_sim::channel::{encode_u32s, try_decode_u32s};
use cmmd_sim::{try_all_to_many, CommScheme, Fault, Node};
use rg_core::kernels::{stats_from_words, stats_to_words, STATS_WIRE_WORDS};
use rg_core::merge::{choice_key, CandKey};
use rg_core::telemetry::Histogram;
use rg_core::{Config, RegionStats, TieBreak};
use std::collections::{BTreeMap, HashMap};

/// Work units swept per tile pixel per merge iteration (the F77 code is a
/// "hand-coded translation of the data parallel one": it sweeps its static
/// tile-sized arrays every iteration).
pub const MERGE_SWEEP_UNITS_PER_PX: u64 = 320;
/// Work units per live half-edge per iteration.
pub const MERGE_UNITS_PER_EDGE: u64 = 12;
/// Work units per owned region per iteration.
pub const MERGE_UNITS_PER_REGION: u64 = 6;

/// Number of all-to-many exchanges one merge iteration executes, in
/// order: stats, choice, redirect, half-edge transfer.
pub const EXCHANGES_PER_ITERATION: usize = 4;

/// This node's communication deltas for one all-to-many exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeComm {
    /// Communication rounds executed (LP: `Q−1` per exchange; Async: 1).
    pub rounds: u64,
    /// Point-to-point messages this node sent.
    pub messages: u64,
    /// Payload bytes this node sent.
    pub bytes: u64,
}

impl ExchangeComm {
    /// Folds `other` into `self` (the driver sums across nodes).
    pub fn fold(&mut self, other: &ExchangeComm) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// Outcome of the distributed merge on one node.
#[derive(Debug, Clone)]
pub struct MpMergeOutcome {
    /// Merge iterations executed (identical on every node).
    pub iterations: u32,
    /// Global merges per iteration (identical on every node).
    pub merges_per_iteration: Vec<u32>,
    /// This node's full retire history `(dead id, representative id)`.
    pub redirects: Vec<(u32, u32)>,
    /// Regions this node still owns at termination.
    pub num_regions_local: usize,
    /// This node's per-iteration, per-exchange communication deltas
    /// (one `[ExchangeComm; 4]` per completed iteration, exchange order
    /// per [`EXCHANGES_PER_ITERATION`]). The terminating pass — a stats
    /// exchange followed by the global OR that ends the loop — is not an
    /// iteration and is counted only in the node totals.
    pub comm_per_iteration: Vec<[ExchangeComm; EXCHANGES_PER_ITERATION]>,
    /// Sizes (bytes) of every point-to-point payload this node sent
    /// during the merge, as a log₂ histogram (the per-round message-size
    /// distribution the paper's LP-vs-Async comparison turns on).
    pub msg_bytes_hist: Histogram,
}

/// Runs one all-to-many exchange, recording outgoing payload sizes into
/// `hist` and returning the received messages plus this node's
/// communication deltas for the exchange. `stream` tags the exchange's
/// flow events (every node passes the same tag at the same program point,
/// so send and recv halves agree).
fn traced_exchange(
    node: &mut Node,
    outgoing: Vec<(usize, Bytes)>,
    scheme: CommScheme,
    hist: &mut Histogram,
    stream: &'static str,
) -> Result<(Vec<(usize, Bytes)>, ExchangeComm), Fault> {
    node.set_trace_stream(stream);
    for (_, payload) in &outgoing {
        hist.record(payload.len() as u64);
    }
    let (r0, m0, b0) = (node.comm_rounds(), node.msgs_sent(), node.bytes_sent());
    let received = try_all_to_many(node, outgoing, scheme)?;
    let comm = ExchangeComm {
        rounds: node.comm_rounds() - r0,
        messages: node.msgs_sent() - m0,
        bytes: node.bytes_sent() - b0,
    };
    Ok((received, comm))
}

/// Runs the distributed merge loop; mutates `rag` in place.
///
/// Fallible: under an armed fault plan an unhealable link or a poisoned
/// collective surfaces as `Err` (the driver then degrades to the host
/// pipeline); without a plan the loop never fails.
pub fn merge_mp(
    node: &mut Node,
    decomp: &Decomposition,
    rag: &mut LocalRag,
    config: &Config,
    scheme: CommScheme,
) -> Result<MpMergeOutcome, Fault> {
    let me = node.rank();
    let malformed = |what: &'static str| Fault::Malformed { rank: me, what };
    let tile = decomp.tile(me);
    let tile_px = (tile.w * tile.h) as u64;
    let crit = config.criterion;
    let t = config.threshold;

    let mut iterations = 0u32;
    let mut merges_per_iteration: Vec<u32> = Vec::new();
    let mut stalls = 0u32;
    let mut redirect_history: Vec<(u32, u32)> = Vec::new();
    let mut comm_per_iteration: Vec<[ExchangeComm; EXCHANGES_PER_ITERATION]> = Vec::new();
    let mut msg_bytes_hist = Histogram::new();

    loop {
        let mut iter_comm = [ExchangeComm::default(); EXCHANGES_PER_ITERATION];
        // ---- 1. stats exchange -------------------------------------------
        // Send each owned region's stats once per remote owner that holds a
        // mirror half-edge to it.
        let mut per_dst: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        {
            let mut sent: std::collections::HashSet<(usize, u32)> =
                std::collections::HashSet::new();
            for &(s, d) in rag.half_edges.iter() {
                let owner_d = decomp.owner_of_id(d);
                if owner_d != me && sent.insert((owner_d, s)) {
                    per_dst
                        .entry(owner_d)
                        .or_default()
                        .extend_from_slice(&stats_to_words(s, &rag.store[&s]));
                }
            }
        }
        let outgoing = per_dst
            .into_iter()
            .map(|(dst, words)| (dst, encode_u32s(&words)))
            .collect();
        rag.ghosts.clear();
        let (received, comm) =
            traced_exchange(node, outgoing, scheme, &mut msg_bytes_hist, "merge:stats")?;
        iter_comm[0] = comm;
        for (_, payload) in received {
            let words = try_decode_u32s(payload).map_err(|_| malformed("stats payload"))?;
            for c in words.chunks_exact(STATS_WIRE_WORDS) {
                let (id, stats) = stats_from_words(c);
                rag.ghosts.insert(id, stats);
            }
        }

        // ---- 2. de-activation + termination test -------------------------
        let stats_of = |id: u32,
                        store: &BTreeMap<u32, RegionStats<u32>>,
                        ghosts: &HashMap<u32, RegionStats<u32>>|
         -> RegionStats<u32> {
            if let Some(s) = store.get(&id) {
                *s
            } else {
                *ghosts
                    .get(&id)
                    .unwrap_or_else(|| panic!("missing ghost stats for region {id}"))
            }
        };
        {
            let store = &rag.store;
            let ghosts = &rag.ghosts;
            rag.half_edges
                .retain(|&(s, d)| crit.satisfies(&store[&s], &stats_of(d, store, ghosts), t));
        }
        node.compute(rag.half_edges.len() as u64 * MERGE_UNITS_PER_EDGE);

        let active = !rag.half_edges.is_empty();
        node.set_trace_stream("merge:term");
        if !node.try_allreduce_or(active)? {
            break;
        }

        // The hand-translated F77 merge sweeps its static arrays once per
        // iteration regardless of how much is still alive.
        node.compute(tile_px * MERGE_SWEEP_UNITS_PER_PX);
        node.compute(rag.store.len() as u64 * MERGE_UNITS_PER_REGION);

        // ---- 3. choices ---------------------------------------------------
        let used_fallback =
            matches!(config.tie_break, TieBreak::Random { .. }) && stalls >= config.max_stall;
        let policy = if used_fallback {
            TieBreak::SmallestId
        } else {
            config.tie_break
        };
        let mut choice: BTreeMap<u32, u32> = BTreeMap::new();
        {
            let store = &rag.store;
            let ghosts = &rag.ghosts;
            let mut best: Option<CandKey> = None;
            let mut cur: Option<u32> = None;
            let flush =
                |src: Option<u32>, best: &mut Option<CandKey>, choice: &mut BTreeMap<u32, u32>| {
                    if let (Some(s), Some(b)) = (src, best.take()) {
                        choice.insert(s, b.3);
                    }
                };
            for &(s, d) in rag.half_edges.iter() {
                if cur != Some(s) {
                    flush(cur, &mut best, &mut choice);
                    cur = Some(s);
                }
                let w = crit.weight(&store[&s], &stats_of(d, store, ghosts));
                let key = choice_key(policy, iterations, s as u64, d as u64, w, d);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            flush(cur, &mut best, &mut choice);
        }

        // ---- 4. choice exchange ------------------------------------------
        let mut per_dst: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for (&u, &v) in &choice {
            let owner_v = decomp.owner_of_id(v);
            if owner_v != me {
                per_dst
                    .entry(owner_v)
                    .or_default()
                    .extend_from_slice(&[u, v]);
            }
        }
        let outgoing = per_dst
            .into_iter()
            .map(|(dst, words)| (dst, encode_u32s(&words)))
            .collect();
        // Remote claims (u chose v) targeting my regions v.
        let mut remote_claims: Vec<(u32, u32)> = Vec::new();
        let (received, comm) =
            traced_exchange(node, outgoing, scheme, &mut msg_bytes_hist, "merge:choice")?;
        iter_comm[1] = comm;
        for (_, payload) in received {
            let words = try_decode_u32s(payload).map_err(|_| malformed("choice payload"))?;
            for c in words.chunks_exact(2) {
                remote_claims.push((c[0], c[1]));
            }
        }

        // ---- 5. merges ----------------------------------------------------
        // Mutual pairs I can see: local-local pairs, plus (remote u, my v)
        // where my choice[v] == u, plus (my u → remote v) confirmed by the
        // incoming claim (v, u).
        let mut mutual: Vec<(u32, u32)> = Vec::new(); // (rep, dead), rep < dead
        for (&u, &v) in &choice {
            if u < v && choice.get(&v) == Some(&u) {
                mutual.push((u, v)); // both mine
            }
        }
        for &(u, v) in &remote_claims {
            debug_assert_eq!(decomp.owner_of_id(v), me);
            if choice.get(&v) == Some(&u) {
                mutual.push((u.min(v), u.max(v)));
            }
        }
        mutual.sort_unstable();
        mutual.dedup();

        let mut my_merges = 0u64;
        let mut newly_dead: Vec<(u32, u32)> = Vec::new(); // (dead, rep), dead mine
        for &(rep, dead) in &mutual {
            let dead_stats = stats_of(dead, &rag.store, &rag.ghosts);
            if let Some(rs) = rag.store.get_mut(&rep) {
                *rs = rs.fold(dead_stats);
                my_merges += 1; // counted once, by the representative's owner
            }
            if rag.store.remove(&dead).is_some() {
                newly_dead.push((dead, rep));
                redirect_history.push((dead, rep));
            }
        }

        // ---- 6. redirect exchange ------------------------------------------
        // Notify owners of every region adjacent to a dead one.
        let mut per_dst: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        {
            let dead_map: HashMap<u32, u32> = newly_dead.iter().copied().collect();
            let mut sent: std::collections::HashSet<(usize, u32)> =
                std::collections::HashSet::new();
            for &(s, d) in rag.half_edges.iter() {
                if let Some(&rep) = dead_map.get(&s) {
                    let owner_d = decomp.owner_of_id(d);
                    if owner_d != me && sent.insert((owner_d, s)) {
                        per_dst
                            .entry(owner_d)
                            .or_default()
                            .extend_from_slice(&[s, rep]);
                    }
                }
            }
        }
        let outgoing = per_dst
            .into_iter()
            .map(|(dst, words)| (dst, encode_u32s(&words)))
            .collect();
        let mut redir: HashMap<u32, u32> = newly_dead.iter().copied().collect();
        let (received, comm) = traced_exchange(
            node,
            outgoing,
            scheme,
            &mut msg_bytes_hist,
            "merge:redirect",
        )?;
        iter_comm[2] = comm;
        for (_, payload) in received {
            let words = try_decode_u32s(payload).map_err(|_| malformed("redirect payload"))?;
            for c in words.chunks_exact(2) {
                redir.insert(c[0], c[1]);
            }
        }

        // ---- 6 (cont.): relabel, drop self-loops, transfer -----------------
        let resolve = |id: u32| *redir.get(&id).unwrap_or(&id);
        let mut keep: Vec<(u32, u32)> = Vec::new();
        let mut per_dst: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &(s, d) in rag.half_edges.iter() {
            let (s2, d2) = (resolve(s), resolve(d));
            if s2 == d2 {
                continue;
            }
            let owner_s2 = decomp.owner_of_id(s2);
            if owner_s2 == me {
                keep.push((s2, d2));
            } else {
                per_dst
                    .entry(owner_s2)
                    .or_default()
                    .extend_from_slice(&[s2, d2]);
            }
        }
        let outgoing = per_dst
            .into_iter()
            .map(|(dst, words)| (dst, encode_u32s(&words)))
            .collect();
        let (received, comm) = traced_exchange(
            node,
            outgoing,
            scheme,
            &mut msg_bytes_hist,
            "merge:transfer",
        )?;
        iter_comm[3] = comm;
        for (_, payload) in received {
            let words = try_decode_u32s(payload).map_err(|_| malformed("transfer payload"))?;
            for c in words.chunks_exact(2) {
                keep.push((c[0], c[1]));
            }
        }
        keep.sort_unstable();
        keep.dedup();
        rag.half_edges = keep;
        node.compute(rag.half_edges.len() as u64 * MERGE_UNITS_PER_EDGE);

        // ---- bookkeeping ----------------------------------------------------
        node.set_trace_stream("merge:term");
        let global_merges = node.try_allreduce_u64(my_merges, |a, b| a + b)? as u32;
        iterations += 1;
        merges_per_iteration.push(global_merges);
        comm_per_iteration.push(iter_comm);
        if global_merges == 0 {
            stalls += 1;
        } else {
            stalls = 0;
        }
    }

    Ok(MpMergeOutcome {
        iterations,
        merges_per_iteration,
        redirects: redirect_history,
        num_regions_local: rag.store.len(),
        comm_per_iteration,
        msg_bytes_hist,
    })
}
