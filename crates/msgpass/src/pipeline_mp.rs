//! [`Pipeline`] adapter for the message-passing engine.
//!
//! Wraps a [`MsgPassBackend`] behind the engine-agnostic
//! [`rg_core::Pipeline`] interface so the batch runtime
//! ([`rg_core::batch`]) can stream images through the simulated CM-5 node
//! program alongside the host engines — every image goes through the same
//! [`rg_core::driver::run_driver`] loop as the one-shot entry points. Each
//! image still spins up its own simulated nodes (they are part of the
//! simulation), so unlike [`rg_core::HostPipeline`] this adapter does
//! **not** claim zero steady-state allocation — it reuses the plan and
//! recycles the output buffer only.
//!
//! Note the engine's structural square cap: splits are limited to squares
//! that fit a node's tile, so cross-engine comparisons must apply the same
//! `max_square_log2` to the other engines (see [`crate::Decomposition`]).

use crate::driver::MsgPassBackend;
use cmmd_sim::{CommScheme, FaultPlan};
use rg_core::driver::run_driver;
use rg_core::pipeline::{ExecutionPlan, Pipeline};
use rg_core::telemetry::Telemetry;
use rg_core::{Config, Segmentation};
use rg_imaging::Image;

/// A reusable message-passing pipeline: a node count + communication
/// scheme + config, streamed over many images.
#[derive(Debug)]
pub struct MsgPassPipeline {
    config: Config,
    nodes: usize,
    scheme: CommScheme,
    engine: String,
    plan: Option<ExecutionPlan>,
    chaos: Option<FaultPlan>,
}

impl MsgPassPipeline {
    /// Creates a pipeline running on `nodes` simulated CM-5 nodes with the
    /// given communication scheme.
    pub fn new(config: Config, nodes: usize, scheme: CommScheme) -> Self {
        Self {
            config,
            nodes,
            scheme,
            engine: format!("msgpass:{}:{}", scheme.label(), nodes),
            plan: None,
            chaos: None,
        }
    }

    /// Creates a pipeline that runs every image under the given seeded
    /// fault-injection plan (see [`MsgPassBackend::with_chaos`]). Each
    /// image replays the same deterministic schedule, so a chaos batch is
    /// reproducible end to end.
    pub fn with_chaos(config: Config, nodes: usize, scheme: CommScheme, plan: FaultPlan) -> Self {
        let mut pipe = Self::new(config, nodes, scheme);
        pipe.chaos = Some(plan);
        pipe
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

impl Pipeline for MsgPassPipeline {
    fn engine(&self) -> &str {
        &self.engine
    }

    fn plan(&self) -> Option<&ExecutionPlan> {
        self.plan.as_ref()
    }

    fn run_into(&mut self, img: &Image<u8>, tel: &mut dyn Telemetry, out: &mut Segmentation) {
        let (w, h) = (img.width(), img.height());
        let stale = match &self.plan {
            Some(p) => !p.matches(w, h, &self.config),
            None => true,
        };
        if stale {
            self.plan = Some(ExecutionPlan::for_shape(w, h, &self.config));
        }
        let mut backend = MsgPassBackend::new(img, &self.config, self.nodes, self.scheme);
        if let Some(plan) = &self.chaos {
            backend = backend.with_chaos(plan);
        }
        run_driver(&mut backend, tel, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Decomposition;
    use rg_core::telemetry::NullTelemetry;
    use rg_core::{run_batch_collect, segment, BatchOptions};
    use rg_imaging::synth;

    #[test]
    fn pipeline_matches_direct_driver_and_host() {
        let nodes = 4;
        let cap = Decomposition::for_nodes(nodes, 64, 64).max_safe_square_log2();
        let cfg = Config::with_threshold(10).max_square_log2(Some(cap));
        let imgs = [synth::nested_rects(64), synth::rect_collection(64)];
        let mut pipe = MsgPassPipeline::new(cfg, nodes, CommScheme::LinearPermutation);
        assert_eq!(pipe.engine(), "msgpass:LP:4");
        for img in &imgs {
            let seg = pipe.run(img, &mut NullTelemetry);
            assert_eq!(seg, segment(img, &cfg));
        }
        assert!(pipe.plan().is_some());
    }

    #[test]
    fn batch_streams_through_simulated_nodes() {
        let nodes = 4;
        let cap = Decomposition::for_nodes(nodes, 32, 32).max_safe_square_log2();
        let cfg = Config::with_threshold(10).max_square_log2(Some(cap));
        let imgs: Vec<_> = (0..2).map(|s| synth::random_rects(32, 32, 5, s)).collect();
        let (results, summary) = run_batch_collect(
            &imgs,
            &BatchOptions::new(),
            || Box::new(MsgPassPipeline::new(cfg, nodes, CommScheme::Async)),
            &mut NullTelemetry,
        );
        assert_eq!(summary.images, 2);
        for (img, got) in imgs.iter().zip(&results) {
            assert_eq!(got, &segment(img, &cfg));
        }
    }
}
