//! End-to-end message-passing driver: the F77 + CMMD node program.

use crate::boundary::build_local_rag;
use crate::decomp::Decomposition;
use crate::merge_mp::{merge_mp, ExchangeComm, MpMergeOutcome, EXCHANGES_PER_ITERATION};
use cmmd_sim::channel::{encode_u32s, try_decode_u32s};
use cmmd_sim::{
    try_run_spmd, CommScheme, Fault, FaultCounters, FaultEvent, FaultKind, FaultPlan, SpmdAbort,
    TimeParams, TraceEvent, TraceKind,
};
use rg_core::driver::{
    run_driver, BackendAbort, ChaosHook, EngineBackend, GraphStage, LabelStage, MergeCx,
    MergeStage, RunSummary, SplitInfo, SplitStage, StageStats,
};
use rg_core::labels::compact_first_appearance;
use rg_core::telemetry::{
    derive_merge_iterations, CommRecord, FaultRecord, FlowKind, FlowRecord, Histogram,
    NullTelemetry, SpanGuard, SpanKind, Telemetry,
};
use rg_core::{Config, Segmentation};
use rg_imaging::{Image, Intensity};
use std::collections::HashMap;
use std::time::Instant;

/// Work units to resolve one pixel's final label.
const LABEL_UNITS_PER_PX: u64 = 3;

/// A message-passing run's outputs.
#[derive(Debug, Clone)]
pub struct MsgPassOutcome {
    /// The segmentation (identical to the host engines given the same
    /// square cap).
    pub seg: Segmentation,
    /// Simulated seconds for the split stage (synchronised makespan).
    pub split_seconds: f64,
    /// Simulated seconds for graph setup + boundary exchange.
    pub graph_seconds: f64,
    /// Simulated seconds for the merge stage.
    pub merge_seconds: f64,
    /// Communication scheme used.
    pub scheme: CommScheme,
    /// Node count.
    pub nodes: usize,
    /// The square-size cap actually applied (the decomposition's safe cap,
    /// possibly lowered by the config).
    pub cap_used: u8,
    /// Total point-to-point messages sent across all nodes.
    pub total_messages: u64,
    /// Total point-to-point payload bytes sent across all nodes.
    pub total_bytes: u64,
    /// Total communication rounds across all nodes (LP runs `Q−1` rounds
    /// per exchange on every node, traffic or not; Async counts one per
    /// exchange — the structural difference the paper's comparison hinges
    /// on).
    pub total_comm_rounds: u64,
    /// Per-merge-iteration, per-exchange communication totals summed
    /// across all nodes (exchange order per [`EXCHANGES_PER_ITERATION`]:
    /// stats, choice, redirect, transfer).
    pub merge_comm_per_iteration: Vec<[ExchangeComm; EXCHANGES_PER_ITERATION]>,
    /// Distribution of point-to-point payload sizes (bytes) during the
    /// merge stage, merged across all nodes.
    pub merge_msg_bytes: Histogram,
    /// True when a chaos run aborted and the segmentation was recomputed
    /// by the sequential host engine (graceful degradation). Simulated
    /// times and communication totals are zeroed in that case.
    pub degraded: bool,
    /// Every injected-fault / recovery event observed during the run, in
    /// deterministic (rank, sequence) order. Empty for fault-free runs.
    pub fault_events: Vec<FaultEvent>,
    /// Aggregate fault counters across all nodes.
    pub fault_counters: FaultCounters,
    /// Causal flow events (send/recv/collective) captured by the CMMD
    /// trace layer, concatenated in rank order. Empty unless the run was
    /// executed with tracing on (the telemetry entry points enable it when
    /// the sink is live); also empty on degraded chaos runs, whose
    /// history aborted mid-flight.
    pub flows: Vec<TraceEvent>,
}

impl MsgPassOutcome {
    /// Merge-stage time as the paper reports it (graph setup + merging).
    pub fn merge_seconds_as_reported(&self) -> f64 {
        self.graph_seconds + self.merge_seconds
    }
}

/// Per-node results shipped back to the front end.
struct NodeOut {
    tile_labels: Vec<u32>, // raw representative ids per tile pixel
    split_iterations: u32,
    num_squares_local: usize,
    merge: MpMergeOutcome,
    t_split: f64,
    t_graph: f64,
    t_merge: f64,
    msgs_sent: u64,
    bytes_sent: u64,
    comm_rounds: u64,
}

/// Runs the full message-passing split-and-merge program on `nodes`
/// simulated CM-5 nodes with the given communication scheme.
///
/// The split stage is structurally capped at squares that fit a node's
/// sub-image ([`Decomposition::max_safe_square_log2`]); pass the same cap
/// to the other engines to compare segmentations bit for bit.
pub fn segment_msgpass<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    nodes: usize,
    scheme: CommScheme,
) -> MsgPassOutcome {
    segment_msgpass_with(img, config, nodes, scheme, TimeParams::cm5_mp())
}

/// [`segment_msgpass`] reporting into the given [`Telemetry`] sink: stage
/// spans carry simulated seconds, and a [`CommRecord`] carries the LP
/// round count / Async message totals from the `cmmd-sim` runtime.
pub fn segment_msgpass_with_telemetry<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    nodes: usize,
    scheme: CommScheme,
    tel: &mut dyn Telemetry,
) -> MsgPassOutcome {
    let mut backend = MsgPassBackend::new(img, config, nodes, scheme);
    let mut out = Segmentation::default();
    run_driver(&mut backend, tel, &mut out);
    backend.into_outcome(out)
}

/// [`segment_msgpass_chaos`] reporting into the given [`Telemetry`] sink.
///
/// Chaos runs attribute **zero** wall seconds to every stage so that two
/// runs with the same `--chaos` seed produce byte-identical journals (the
/// simulated times, fault events and counters are all deterministic; host
/// wall time is not). Pair with a logical-clock journal sink
/// ([`rg_core::jsonl_sink`] under [`rg_core::ClockMode::Logical`]) for full
/// byte stability.
pub fn segment_msgpass_chaos_with_telemetry<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    nodes: usize,
    scheme: CommScheme,
    plan: &FaultPlan,
    tel: &mut dyn Telemetry,
) -> MsgPassOutcome {
    let mut backend = MsgPassBackend::new(img, config, nodes, scheme).with_chaos(plan);
    let mut out = Segmentation::default();
    run_driver(&mut backend, tel, &mut out);
    backend.into_outcome(out)
}

/// The message-passing engine as a stage-driver backend — the replay
/// shape: [`EngineBackend::prepare`] runs the whole SPMD node program on
/// the simulated cluster (with the CMMD trace layer on iff the sink is
/// live), and the stage methods then re-emit the recorded history as a
/// balanced span tree (run ▸ stage ▸ iter ▸ comm_round), zero-duration
/// markers nested exactly as journal validation requires.
///
/// Host wall time is not meaningful per simulated stage (all nodes run
/// concurrently on OS threads), so the whole run's wall time is attributed
/// proportionally to the simulated stage times through
/// [`StageStats::replayed`]. Under a fault plan ([`MsgPassBackend::with_chaos`])
/// an unsurvivable schedule aborts `prepare`, and the [`ChaosHook`]
/// degrades to a sequential host re-run under the same square cap.
pub struct MsgPassBackend<'a, P: Intensity> {
    img: &'a Image<P>,
    config: &'a Config,
    nodes: usize,
    scheme: CommScheme,
    params: TimeParams,
    plan: Option<&'a FaultPlan>,
    outcome: Option<MsgPassOutcome>,
    abort: Option<SpmdAbort>,
    wall_total: f64,
}

impl<'a, P: Intensity> MsgPassBackend<'a, P> {
    /// A backend over `img` on `nodes` simulated CM-5 nodes with the given
    /// communication scheme and the default CM-5 time parameters.
    pub fn new(img: &'a Image<P>, config: &'a Config, nodes: usize, scheme: CommScheme) -> Self {
        Self {
            img,
            config,
            nodes,
            scheme,
            params: TimeParams::cm5_mp(),
            plan: None,
            outcome: None,
            abort: None,
            wall_total: 0.0,
        }
    }

    /// Overrides the simulated machine's time parameters.
    pub fn with_params(mut self, params: TimeParams) -> Self {
        self.params = params;
        self
    }

    /// Arms the backend with a seeded deterministic fault-injection plan;
    /// unsurvivable schedules degrade to a host re-run instead of
    /// panicking (see [`ChaosHook`]).
    pub fn with_chaos(mut self, plan: &'a FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Consumes the backend into the full [`MsgPassOutcome`], attaching
    /// the driver-assembled segmentation.
    pub fn into_outcome(self, seg: Segmentation) -> MsgPassOutcome {
        let mut out = self.outcome.expect("prepare ran");
        out.seg = seg;
        out
    }

    fn out(&self) -> &MsgPassOutcome {
        self.outcome.as_ref().expect("prepare ran")
    }

    /// Proportional wall attribution for a replayed stage with `sim`
    /// simulated seconds.
    fn replayed_stage(&self, sim: f64) -> StageStats {
        let out = self.out();
        let sim_total =
            (out.split_seconds + out.graph_seconds + out.merge_seconds).max(f64::MIN_POSITIVE);
        StageStats::replayed(self.wall_total * (sim / sim_total), Some(sim))
    }
}

impl<P: Intensity> SplitStage for MsgPassBackend<'_, P> {
    fn split(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
        self.replayed_stage(self.out().split_seconds)
    }
}

impl<P: Intensity> GraphStage for MsgPassBackend<'_, P> {
    fn graph(&mut self, _tel: &mut dyn Telemetry) -> StageStats {
        self.replayed_stage(self.out().graph_seconds)
    }
}

impl<P: Intensity> MergeStage for MsgPassBackend<'_, P> {
    fn merge(&mut self, cx: &mut MergeCx<'_>) -> StageStats {
        let out = self.outcome.as_ref().expect("prepare ran");
        if cx.enabled() {
            let (mut cum_rounds, mut cum_msgs, mut cum_bytes) = (0u64, 0u64, 0u64);
            for rec in derive_merge_iterations(
                &out.seg.merges_per_iteration,
                self.config.tie_break,
                self.config.max_stall,
            ) {
                cx.iteration(rec.iteration, |tel| {
                    if let Some(exchanges) =
                        out.merge_comm_per_iteration.get(rec.iteration as usize)
                    {
                        for (k, ex) in exchanges.iter().enumerate() {
                            {
                                let _span =
                                    SpanGuard::enter(&mut *tel, SpanKind::CommRound(k as u32));
                            }
                            cum_rounds += ex.rounds;
                            cum_msgs += ex.messages;
                            cum_bytes += ex.bytes;
                        }
                        // Cumulative counter tracks, one sample per
                        // iteration (Chrome/Perfetto renders them as the
                        // merge stage's communication ramps; the report
                        // keeps the final value).
                        tel.counter("comm.rounds", cum_rounds as f64);
                        tel.counter("comm.messages", cum_msgs as f64);
                        tel.counter("comm.bytes", cum_bytes as f64);
                    }
                    rec
                });
            }
        }
        self.replayed_stage(self.out().merge_seconds)
    }

    fn merge_report(&mut self, tel: &mut dyn Telemetry) {
        tel.histogram("comm.msg_bytes", &self.out().merge_msg_bytes);
    }
}

impl<P: Intensity> LabelStage for MsgPassBackend<'_, P> {
    fn label(&mut self, _tel: &mut dyn Telemetry, out: &mut Segmentation) -> (StageStats, usize) {
        // Host-side label compaction happened inside the SPMD run's
        // harness; its wall time is folded into the proportional
        // attribution of the other stages, so the Label span carries none.
        let seg = &mut self.outcome.as_mut().expect("prepare ran").seg;
        std::mem::swap(&mut out.labels, &mut seg.labels);
        (StageStats::replayed(0.0, None), seg.num_regions)
    }
}

impl<P: Intensity> EngineBackend for MsgPassBackend<'_, P> {
    fn engine(&self) -> String {
        let out = self.out();
        format!("msgpass:{}:{}", out.scheme.label(), out.nodes)
    }

    fn dims(&self) -> (usize, usize) {
        (self.img.width(), self.img.height())
    }

    fn config(&self) -> &Config {
        self.config
    }

    fn prepare(&mut self, telemetry_enabled: bool) -> Result<(), BackendAbort> {
        // A live sink turns the CMMD trace layer on, so the journal
        // carries the causal flow events analysis needs; untraced runs
        // skip the capture entirely (the zero-cost telemetry contract).
        // Chaos runs never measure wall time: their journals must be
        // byte-identical for a given seed.
        let wall = (telemetry_enabled && self.plan.is_none()).then(Instant::now);
        match try_segment_msgpass_impl(
            self.img,
            self.config,
            self.nodes,
            self.scheme,
            self.params,
            self.plan.cloned(),
            telemetry_enabled,
        ) {
            Ok(out) => {
                self.wall_total = wall.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
                self.outcome = Some(out);
                Ok(())
            }
            Err(abort) => {
                let message = format!("fault-free msgpass run aborted: {abort}");
                self.abort = Some(abort);
                Err(BackendAbort::new(message))
            }
        }
    }

    fn chaos_hook(&mut self) -> Option<&mut dyn ChaosHook> {
        if self.plan.is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn split_info(&self) -> SplitInfo {
        let seg = &self.out().seg;
        SplitInfo {
            iterations: seg.split_iterations,
            num_squares: seg.num_squares,
        }
    }

    fn summary(&self) -> RunSummary<'_> {
        let seg = &self.out().seg;
        RunSummary {
            split_iterations: seg.split_iterations,
            num_squares: seg.num_squares,
            merge_iterations: seg.merge_iterations,
            merges_per_iteration: &seg.merges_per_iteration,
            num_regions: seg.num_regions,
        }
    }

    fn run_report(&mut self, tel: &mut dyn Telemetry) {
        let out = self.out();
        tel.comm(CommRecord {
            scheme: out.scheme.label().to_string(),
            nodes: out.nodes,
            rounds: out.total_comm_rounds,
            messages: out.total_messages,
            bytes: out.total_bytes,
        });
        tel.counter("cap_used_log2", out.cap_used as f64);

        // Fault / chaos telemetry: each injected fault and recovery
        // event becomes an instant record; counters summarise the
        // schedule. Fault-free runs emit none of this, keeping their
        // journals unchanged.
        if !out.fault_events.is_empty() {
            for ev in &out.fault_events {
                tel.fault(FaultRecord {
                    kind: ev.kind.label().to_string(),
                    src: ev.src,
                    dst: ev.dst,
                    seq: ev.seq,
                    ts_ns: ev.ts_ns,
                });
            }
            tel.counter("faults.total", out.fault_counters.total_faults() as f64);
            tel.counter("faults.retries", out.fault_counters.retries as f64);
        }

        // Causal flow events, interleaved so every receive follows its
        // matching send (what the strict journal validator and the
        // cross-rank analyzer expect). Untraced runs carry none and
        // their journals are unchanged.
        for f in causal_order(&out.flows) {
            tel.flow(FlowRecord {
                kind: match f.kind {
                    TraceKind::Send => FlowKind::Send,
                    TraceKind::Recv => FlowKind::Recv,
                    TraceKind::Collective => FlowKind::Collective,
                },
                stream: f.stream.to_string(),
                src: f.src,
                dst: f.dst,
                seq: f.seq,
                bytes: f.bytes,
                t_ns: f.t_ns,
                wait_ns: f.wait_ns,
            });
        }
    }
}

impl<P: Intensity> ChaosHook for MsgPassBackend<'_, P> {
    /// Graceful degradation: the cluster aborted under injected faults, so
    /// the segmentation is recomputed by the sequential host engine under
    /// the same square cap, flagged via [`MsgPassOutcome::degraded`] and a
    /// `degraded` fault event. Simulated times and communication totals
    /// are zeroed.
    fn degrade(&mut self, _abort: BackendAbort) {
        let abort = self.abort.take().expect("prepare stashed the abort");
        let decomp = Decomposition::for_nodes(self.nodes, self.img.width(), self.img.height());
        let safe_cap = decomp.max_safe_square_log2();
        let cap_used = self
            .config
            .max_square_log2
            .map(|c| c.min(safe_cap))
            .unwrap_or(safe_cap);
        let host_cfg = Config {
            max_square_log2: Some(cap_used),
            ..*self.config
        };
        let seg = rg_core::segment(self.img, &host_cfg);
        let mut fault_events = abort.fault_events;
        fault_events.push(FaultEvent {
            kind: FaultKind::Degraded,
            src: 0,
            dst: 0,
            seq: 0,
            ts_ns: 0.0,
        });
        self.outcome = Some(MsgPassOutcome {
            seg,
            split_seconds: 0.0,
            graph_seconds: 0.0,
            merge_seconds: 0.0,
            scheme: self.scheme,
            nodes: decomp.nodes(),
            cap_used,
            total_messages: 0,
            total_bytes: 0,
            total_comm_rounds: 0,
            merge_comm_per_iteration: Vec::new(),
            merge_msg_bytes: Histogram::new(),
            degraded: true,
            fault_events,
            fault_counters: abort.fault_counters,
            flows: Vec::new(),
        });
    }
}

/// Orders rank-concatenated trace events so that every receive follows its
/// matching send while each rank's events keep their program order — the
/// interleaving the strict journal validator checks. The traced execution
/// completed, so its dependency graph is acyclic and the greedy schedule
/// always drains; a truncated or damaged capture with orphan receives is
/// flushed in rank order at the end (tolerant consumers report those as
/// unmatched rather than failing).
fn causal_order(flows: &[TraceEvent]) -> Vec<&TraceEvent> {
    let mut queues: Vec<Vec<&TraceEvent>> = Vec::new();
    let mut last_rank: Option<u32> = None;
    for f in flows {
        if last_rank != Some(f.rank()) {
            last_rank = Some(f.rank());
            queues.push(Vec::new());
        }
        queues.last_mut().expect("queue just pushed").push(f);
    }
    let mut out: Vec<&TraceEvent> = Vec::with_capacity(flows.len());
    let mut sent: HashMap<(&str, u32, u32, u64), u32> = HashMap::new();
    let mut heads: Vec<usize> = vec![0; queues.len()];
    loop {
        let mut progress = false;
        for (q, queue) in queues.iter().enumerate() {
            while let Some(&ev) = queue.get(heads[q]) {
                let ready = match ev.kind {
                    TraceKind::Recv => match sent.get_mut(&(ev.stream, ev.src, ev.dst, ev.seq)) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            true
                        }
                        _ => false,
                    },
                    _ => true,
                };
                if !ready {
                    break;
                }
                if ev.kind == TraceKind::Send {
                    *sent.entry((ev.stream, ev.src, ev.dst, ev.seq)).or_insert(0) += 1;
                }
                out.push(ev);
                heads[q] += 1;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    for (q, queue) in queues.iter().enumerate() {
        out.extend(queue[heads[q]..].iter());
    }
    out
}

/// [`segment_msgpass`] with explicit time parameters.
///
/// Panics if the run aborts — impossible without a fault plan, since every
/// abort path originates in injected faults.
pub fn segment_msgpass_with<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    nodes: usize,
    scheme: CommScheme,
    params: TimeParams,
) -> MsgPassOutcome {
    let mut backend = MsgPassBackend::new(img, config, nodes, scheme).with_params(params);
    let mut out = Segmentation::default();
    run_driver(&mut backend, &mut NullTelemetry, &mut out);
    backend.into_outcome(out)
}

/// [`segment_msgpass`] under a seeded deterministic fault-injection plan.
///
/// Survivable schedules (faults the ack/retry protocol absorbs) produce a
/// segmentation **bit-identical** to the fault-free run, with the injected
/// faults reported in [`MsgPassOutcome::fault_events`]. Unsurvivable
/// schedules (a link declared dead, a peer down) degrade gracefully: the
/// cluster aborts and the segmentation is recomputed by the sequential
/// host engine under the same square cap, flagged via
/// [`MsgPassOutcome::degraded`] and a `degraded` fault event.
pub fn segment_msgpass_chaos<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    nodes: usize,
    scheme: CommScheme,
    plan: &FaultPlan,
) -> MsgPassOutcome {
    segment_msgpass_chaos_with_telemetry(img, config, nodes, scheme, plan, &mut NullTelemetry)
}

/// The SPMD node program, fallible end to end: any [`Fault`] a node hits
/// aborts the whole cluster deterministically (see
/// [`cmmd_sim::try_run_spmd`]).
fn try_segment_msgpass_impl<P: Intensity>(
    img: &Image<P>,
    config: &Config,
    nodes: usize,
    scheme: CommScheme,
    params: TimeParams,
    plan: Option<FaultPlan>,
    trace: bool,
) -> Result<MsgPassOutcome, SpmdAbort> {
    let decomp = Decomposition::for_nodes(nodes, img.width(), img.height());
    let safe_cap = decomp.max_safe_square_log2();
    let cap_used = config
        .max_square_log2
        .map(|c| c.min(safe_cap))
        .unwrap_or(safe_cap);

    let res = try_run_spmd(decomp.nodes(), params, plan, |node| {
        node.set_tracing(trace);
        // Steps 0–2: receive the sub-image, split it, build the local
        // graph with boundary exchange (split time captured inside).
        let mut rag = build_local_rag(node, &decomp, img, config, cap_used)?;
        let t_split = rag.split_done_seconds;
        node.set_trace_stream("graph");
        node.try_barrier()?;
        let t_graph = node.clock_seconds();

        // Steps 3–5: cooperative merge.
        let merge = merge_mp(node, &decomp, &mut rag, config, scheme)?;
        node.set_trace_stream("merge:post");
        node.try_barrier()?;
        let t_merge = node.clock_seconds();

        // Final label resolution: gather the global redirect history and
        // chase each tile pixel's square to its representative.
        let me = node.rank();
        let mut words = Vec::with_capacity(merge.redirects.len() * 2);
        for &(dead, rep) in &merge.redirects {
            words.push(dead);
            words.push(rep);
        }
        node.set_trace_stream("label");
        let all = node.try_concat(encode_u32s(&words))?;
        let mut redirect: HashMap<u32, u32> = HashMap::new();
        for payload in all {
            let part = try_decode_u32s(payload).map_err(|_| Fault::Malformed {
                rank: me,
                what: "redirect history payload",
            })?;
            for c in part.chunks_exact(2) {
                redirect.insert(c[0], c[1]);
            }
        }
        let resolve = |mut id: u32| {
            while let Some(&nxt) = redirect.get(&id) {
                id = nxt;
            }
            id
        };
        let tile_labels: Vec<u32> = rag.pixel_square.iter().map(|&q| resolve(q)).collect();
        node.compute(tile_labels.len() as u64 * LABEL_UNITS_PER_PX);

        Ok(NodeOut {
            tile_labels,
            split_iterations: rag.split_iterations,
            num_squares_local: rag.store.len() + merge.redirects.len(),
            merge,
            t_split,
            t_graph,
            t_merge,
            msgs_sent: node.msgs_sent(),
            bytes_sent: node.bytes_sent(),
            comm_rounds: node.comm_rounds(),
        })
    })?;

    // Assemble the global label image.
    let (w, h) = (img.width(), img.height());
    let mut raw = vec![0u32; w * h];
    for (rank, out) in res.results.iter().enumerate() {
        let t = decomp.tile(rank);
        for ty in 0..t.h {
            raw[(t.y0 + ty) * w + t.x0..(t.y0 + ty) * w + t.x0 + t.w]
                .copy_from_slice(&out.tile_labels[ty * t.w..(ty + 1) * t.w]);
        }
    }
    let (labels, num_regions) = compact_first_appearance(&raw);

    let split_iterations = res
        .results
        .iter()
        .map(|o| o.split_iterations)
        .max()
        .unwrap();
    let num_squares = res.results.iter().map(|o| o.num_squares_local).sum();
    let merge0 = &res.results[0].merge;
    debug_assert_eq!(
        num_regions,
        res.results
            .iter()
            .map(|o| o.merge.num_regions_local)
            .sum::<usize>()
    );

    let t_split = res.results[0].t_split;
    let t_graph = res.results[0].t_graph;
    let t_merge = res.results[0].t_merge;
    let total_messages: u64 = res.results.iter().map(|o| o.msgs_sent).sum();
    let total_bytes: u64 = res.results.iter().map(|o| o.bytes_sent).sum();
    let total_comm_rounds: u64 = res.results.iter().map(|o| o.comm_rounds).sum();

    // Fold the per-node merge communication telemetry: exchange deltas sum
    // across nodes (the loop is collective, so every node records the same
    // iteration count) and payload-size histograms merge exactly.
    let mut merge_comm_per_iteration =
        vec![[ExchangeComm::default(); EXCHANGES_PER_ITERATION]; merge0.iterations as usize];
    let mut merge_msg_bytes = Histogram::new();
    for out in &res.results {
        debug_assert_eq!(
            out.merge.comm_per_iteration.len(),
            merge0.iterations as usize
        );
        for (acc, node_iter) in merge_comm_per_iteration
            .iter_mut()
            .zip(out.merge.comm_per_iteration.iter())
        {
            for (a, b) in acc.iter_mut().zip(node_iter.iter()) {
                a.fold(b);
            }
        }
        merge_msg_bytes.merge(&out.merge.msg_bytes_hist);
    }

    Ok(MsgPassOutcome {
        seg: Segmentation {
            labels,
            num_regions,
            num_squares,
            split_iterations,
            merge_iterations: merge0.iterations,
            merges_per_iteration: merge0.merges_per_iteration.clone(),
            width: w,
            height: h,
        },
        split_seconds: t_split,
        graph_seconds: t_graph - t_split,
        merge_seconds: t_merge - t_graph,
        scheme,
        nodes: decomp.nodes(),
        cap_used,
        total_messages,
        total_bytes,
        total_comm_rounds,
        merge_comm_per_iteration,
        merge_msg_bytes,
        degraded: false,
        fault_events: res.fault_events,
        fault_counters: res.fault_counters,
        flows: res.trace_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rg_core::{segment, Connectivity, TieBreak};
    use rg_imaging::synth;

    /// Host config with the MP-safe cap applied, for bit-exact comparison.
    fn capped(config: &Config, nodes: usize, w: usize, h: usize) -> Config {
        let d = Decomposition::for_nodes(nodes, w, h);
        Config {
            max_square_log2: Some(
                config
                    .max_square_log2
                    .map(|c| c.min(d.max_safe_square_log2()))
                    .unwrap_or(d.max_safe_square_log2()),
            ),
            ..*config
        }
    }

    fn check_matches_host(img: &Image<u8>, config: &Config, nodes: usize) {
        let host_cfg = capped(config, nodes, img.width(), img.height());
        let host = segment(img, &host_cfg);
        for scheme in [CommScheme::LinearPermutation, CommScheme::Async] {
            let mp = segment_msgpass(img, config, nodes, scheme);
            assert_eq!(mp.seg, host, "{scheme:?} nodes={nodes}");
        }
    }

    #[test]
    fn figure1_matches_host_on_4_nodes() {
        let img = synth::figure1_image();
        check_matches_host(
            &img,
            &Config::with_threshold(3).tie_break(TieBreak::SmallestId),
            4,
        );
    }

    #[test]
    fn paper_style_images_match_host() {
        check_matches_host(&synth::nested_rects(64), &Config::with_threshold(10), 8);
        check_matches_host(&synth::rect_collection(64), &Config::with_threshold(10), 16);
    }

    #[test]
    fn random_scenes_match_host_all_policies() {
        for seed in 0..2 {
            let img = synth::random_rects(32, 32, 6, seed);
            for tie in [
                TieBreak::SmallestId,
                TieBreak::LargestId,
                TieBreak::Random { seed: 5 },
            ] {
                check_matches_host(&img, &Config::with_threshold(20).tie_break(tie), 4);
            }
        }
    }

    #[test]
    fn eight_connectivity_matches_host() {
        let img = synth::circle_collection(64);
        check_matches_host(
            &img,
            &Config::with_threshold(10).connectivity(Connectivity::Eight),
            4,
        );
    }

    #[test]
    fn non_divisible_image_matches_host() {
        let img = synth::uniform_noise(50, 38, 80, 140, 2);
        check_matches_host(&img, &Config::with_threshold(15), 6);
    }

    #[test]
    fn single_node_matches_host() {
        let img = synth::rect_collection(32);
        check_matches_host(&img, &Config::with_threshold(10), 1);
    }

    #[test]
    fn more_nodes_than_rows_matches_host() {
        // 8 nodes on a 64x2 image force an 8x1 grid: every tile spans the
        // full image height and boundary exchange runs only horizontally.
        let img = synth::uniform_noise(64, 2, 60, 200, 9);
        check_matches_host(&img, &Config::with_threshold(25), 8);
    }

    #[test]
    fn one_pixel_tall_image_matches_host() {
        // 1xN degenerates to a pure horizontal pipeline of 1-row tiles.
        let img = synth::uniform_noise(64, 1, 60, 200, 9);
        check_matches_host(&img, &Config::with_threshold(25), 4);
    }

    #[test]
    fn one_pixel_wide_image_matches_host() {
        // Nx1 is the transpose: a vertical strip of 1-column tiles.
        let img = synth::uniform_noise(1, 64, 60, 200, 9);
        check_matches_host(&img, &Config::with_threshold(25), 4);
    }

    #[test]
    fn near_pixel_limit_cluster_matches_host() {
        // 16 nodes on 5x5 pixels: one- and two-pixel tiles, every region
        // initially a singleton square.
        let img = synth::uniform_noise(5, 5, 60, 200, 9);
        check_matches_host(&img, &Config::with_threshold(25), 16);
    }

    #[test]
    fn single_node_odd_shape_matches_host() {
        // A 1x1 grid on a non-square, non-power-of-two image: the merge
        // loop runs without any remote traffic at all.
        let img = synth::uniform_noise(40, 3, 60, 200, 9);
        check_matches_host(&img, &Config::with_threshold(25), 1);
    }

    #[test]
    fn async_is_faster_than_lp_on_merge() {
        let img = synth::circle_collection(128);
        let cfg = Config::with_threshold(10);
        let lp = segment_msgpass(&img, &cfg, 32, CommScheme::LinearPermutation);
        let asy = segment_msgpass(&img, &cfg, 32, CommScheme::Async);
        assert_eq!(lp.seg, asy.seg);
        assert!(
            asy.merge_seconds_as_reported() < lp.merge_seconds_as_reported(),
            "async {} should beat LP {}",
            asy.merge_seconds_as_reported(),
            lp.merge_seconds_as_reported()
        );
    }

    #[test]
    fn telemetry_carries_comm_counters() {
        use rg_core::telemetry::{Recorder, Stage};
        let img = synth::rect_collection(64);
        let cfg = Config::with_threshold(10);
        let mut rec = Recorder::new();
        let out =
            segment_msgpass_with_telemetry(&img, &cfg, 8, CommScheme::LinearPermutation, &mut rec);
        let r = rec.report();
        assert!(rec.is_finished());
        assert_eq!(r.engine, "msgpass:LP:8");
        let comm = r.comm.as_ref().expect("msgpass must emit a CommRecord");
        assert_eq!(comm.scheme, "LP");
        assert_eq!(comm.nodes, 8);
        assert_eq!(comm.messages, out.total_messages);
        assert_eq!(comm.bytes, out.total_bytes);
        assert_eq!(comm.rounds, out.total_comm_rounds);
        assert!(comm.rounds > 0);
        assert_eq!(r.stage_seconds(Stage::Split), Some(out.split_seconds));
        assert_eq!(
            r.merge_seconds_as_reported(),
            Some(out.merge_seconds_as_reported())
        );
        assert_eq!(r.merges_per_iteration(), out.seg.merges_per_iteration);
        assert_eq!(r.num_regions, out.seg.num_regions);
        assert_eq!(r.counter("cap_used_log2"), Some(out.cap_used as f64));
    }

    #[test]
    fn traced_run_emits_strictly_valid_flow_journal() {
        let img = synth::rect_collection(64);
        let cfg = Config::with_threshold(10);
        let mut log = rg_core::EventLog::in_memory();
        let out = segment_msgpass_with_telemetry(&img, &cfg, 4, CommScheme::Async, &mut log);
        assert!(!out.flows.is_empty());
        let events = log.into_events();
        // Strict validation covers flow pairing and per-rank clock
        // monotonicity — the causal interleave must satisfy both.
        rg_core::validate_journal(&events).unwrap();
        let fp = rg_core::flow_pairing(&events);
        assert!(fp.any() && fp.fully_paired(), "{fp:?}");
        assert_eq!(fp.sends, fp.recvs);
        assert_eq!(fp.sends as u64, out.total_messages);
        let a = rg_core::analyze_run(&events).expect("flows present");
        assert_eq!(a.nodes, 4);
        assert!(a.critical_path_ns <= a.wall_ns + 1e-6);
        assert!(a.critical_path_ns >= a.max_busy_ns() - 1e-6);
        assert!(a.wall_ns > 0.0);
        // Stage tags from every phase of the program reached the journal.
        let streams: std::collections::HashSet<&str> = out.flows.iter().map(|f| f.stream).collect();
        for s in [
            "split",
            "boundary",
            "graph",
            "merge:stats",
            "merge:term",
            "label",
        ] {
            assert!(streams.contains(s), "missing stream {s:?} in {streams:?}");
        }
    }

    #[test]
    fn untraced_run_captures_no_flows() {
        let img = synth::rect_collection(32);
        let out = segment_msgpass(&img, &Config::with_threshold(10), 4, CommScheme::Async);
        assert!(out.flows.is_empty());
    }

    #[test]
    fn traced_chaos_run_attributes_retry_waits() {
        use cmmd_sim::FaultPlan;
        let img = synth::rect_collection(64);
        let cfg = Config::with_threshold(10);
        // The storm profile drops and corrupts aggressively; every retry
        // burns a timeout the trace must attribute to the affected edge.
        let plan = FaultPlan::new(2, "storm").expect("known profile");
        let mut log = rg_core::EventLog::in_memory();
        let out =
            segment_msgpass_chaos_with_telemetry(&img, &cfg, 4, CommScheme::Async, &plan, &mut log);
        assert!(!out.degraded, "storm seed 2 must be survivable");
        assert!(out.fault_counters.retries > 0);
        let events = log.into_events();
        rg_core::validate_journal(&events).unwrap();
        let a = rg_core::analyze_run(&events).expect("flows present");
        assert!(
            a.retry_wait_ns > 0.0,
            "retries must surface as retry-wait: {a:?}"
        );
        assert!(a.edges.iter().any(|e| e.retry_wait_ns > 0.0));
        assert!(a.critical_path_ns <= a.wall_ns + 1e-6);
        assert!(a.critical_path_ns >= a.max_busy_ns() - 1e-6);
    }

    #[test]
    fn lp_executes_more_rounds_than_async() {
        // The structural cost the paper blames for LP's slower merge: all
        // Q−1 permutation rounds run per exchange whether or not a pair
        // has traffic, while Async posts everything in one round.
        let img = synth::rect_collection(64);
        let cfg = Config::with_threshold(10);
        let lp = segment_msgpass(&img, &cfg, 8, CommScheme::LinearPermutation);
        let asy = segment_msgpass(&img, &cfg, 8, CommScheme::Async);
        assert!(
            lp.total_comm_rounds > asy.total_comm_rounds,
            "LP rounds {} should exceed Async rounds {}",
            lp.total_comm_rounds,
            asy.total_comm_rounds
        );
    }

    #[test]
    fn comm_volume_identical_across_schemes() {
        // LP and Async move the same payloads; only the timing differs.
        let img = synth::rect_collection(64);
        let cfg = Config::with_threshold(10);
        let lp = segment_msgpass(&img, &cfg, 8, CommScheme::LinearPermutation);
        let asy = segment_msgpass(&img, &cfg, 8, CommScheme::Async);
        assert_eq!(lp.total_messages, asy.total_messages);
        assert_eq!(lp.total_bytes, asy.total_bytes);
        assert!(lp.total_messages > 0);
    }

    #[test]
    fn reports_paper_like_metadata() {
        let img = synth::nested_rects(128);
        let out = segment_msgpass(&img, &Config::with_threshold(10), 32, CommScheme::Async);
        assert_eq!(out.nodes, 32);
        assert_eq!(out.cap_used, 4); // 16-pixel squares on 128² / 32 nodes
        assert_eq!(out.seg.split_iterations, 4); // the paper's number
        assert_eq!(out.seg.num_regions, 2);
        assert!(out.split_seconds > 0.0);
        assert!(out.merge_seconds > 0.0);
    }
}
