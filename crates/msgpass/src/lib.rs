//! # rg-msgpass
//!
//! The **message-passing** implementation of split-and-merge region
//! growing — the paper's F77 + CMMD program on the 32-node CM-5, its
//! fastest configuration — running on the `cmmd-sim` node runtime.
//!
//! The image is block-decomposed onto a P1 × P2 node grid (step 0); each
//! node splits its sub-image independently (step 1), builds its share of
//! the region adjacency graph with a boundary exchange (step 2), and the
//! nodes then cooperate through all-to-many personalized communication to
//! merge regions and update the distributed graph (steps 3–5). Both of the
//! paper's communication schemes are supported:
//! [`cmmd_sim::CommScheme::LinearPermutation`] and
//! [`cmmd_sim::CommScheme::Async`].
//!
//! Given the same square-size cap (the decomposition's
//! [`decomp::Decomposition::max_safe_square_log2`]), the segmentation is
//! bit-identical to every other engine in the workspace.
//!
//! ```
//! use cmmd_sim::CommScheme;
//! use rg_core::Config;
//! use rg_imaging::synth;
//! use rg_msgpass::segment_msgpass;
//!
//! let img = synth::nested_rects(64);
//! let out = segment_msgpass(&img, &Config::with_threshold(10), 8, CommScheme::Async);
//! assert_eq!(out.seg.num_regions, 2);
//! println!("{} nodes, merge took {:.3} simulated s", out.nodes, out.merge_seconds);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boundary;
pub mod decomp;
pub mod driver;
pub mod merge_mp;
pub mod pipeline_mp;

pub use decomp::Decomposition;
pub use driver::{
    segment_msgpass, segment_msgpass_chaos, segment_msgpass_chaos_with_telemetry,
    segment_msgpass_with, segment_msgpass_with_telemetry, MsgPassBackend, MsgPassOutcome,
};
pub use merge_mp::{ExchangeComm, EXCHANGES_PER_ITERATION};
pub use pipeline_mp::MsgPassPipeline;
