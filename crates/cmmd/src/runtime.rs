//! The SPMD node runtime.
//!
//! [`run_spmd`] launches one OS thread per simulated CM-5 node and hands
//! each a [`Node`] handle carrying its rank, its point-to-point channel
//! endpoints, the shared collective context, and its virtual clock. The
//! node program is the same closure on every rank — exactly the CMMD
//! "hostless" execution model the paper's F77 code used.
//!
//! [`try_run_spmd`] is the chaos-aware variant: an optional
//! [`FaultPlan`] arms deterministic fault injection on every
//! point-to-point link, and the node program returns `Result` so a
//! [`Fault`] that escapes the built-in retry machinery aborts the run
//! cleanly (collectives are poisoned, peers cascade out via disconnected
//! channels) instead of panicking or deadlocking. When a plan is armed,
//! payloads travel in CRC-framed, sequence-numbered form and the runtime
//! retransmits on (deterministically simulated) loss or corruption,
//! charging the retry timeout in virtual time — so surviving runs produce
//! exactly the fault-free byte stream, just later on the clock.

use crate::channel::Msg;
use crate::collectives::CollectiveCtx;
use crate::fault::{
    decode_frame, encode_frame, Fault, FaultCounters, FaultEvent, FaultKind, FaultPlan,
    FRAME_HEADER_LEN,
};
use crate::time::TimeParams;
use crate::trace::{TraceEvent, TraceKind};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// Result of an SPMD run.
#[derive(Debug, Clone)]
pub struct SpmdResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks, seconds.
    pub node_seconds: Vec<f64>,
    /// Makespan: the maximum final clock, seconds.
    pub max_seconds: f64,
    /// Injected-fault and recovery events, concatenated in rank order
    /// (empty without a fault plan).
    pub fault_events: Vec<FaultEvent>,
    /// Aggregate fault counters over all nodes.
    pub fault_counters: FaultCounters,
    /// Causal trace events, concatenated in rank order (empty unless the
    /// node program armed [`Node::set_tracing`]).
    pub trace_events: Vec<TraceEvent>,
}

/// An SPMD run that aborted: at least one node program returned a
/// [`Fault`] the retry machinery could not absorb. The whole group winds
/// down deterministically (no partial results survive).
#[derive(Debug, Clone)]
pub struct SpmdAbort {
    /// The faults that terminated node programs, by rank.
    pub faults: Vec<(usize, Fault)>,
    /// Fault/recovery events recorded up to the abort, in rank order.
    pub fault_events: Vec<FaultEvent>,
    /// Aggregate fault counters up to the abort.
    pub fault_counters: FaultCounters,
}

impl std::fmt::Display for SpmdAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SPMD run aborted:")?;
        for (rank, fault) in &self.faults {
            write!(f, " [node {rank}: {fault}]")?;
        }
        Ok(())
    }
}

/// A node's handle onto the simulated machine.
pub struct Node {
    rank: usize,
    size: usize,
    params: TimeParams,
    clock_ns: f64,
    msgs_sent: u64,
    bytes_sent: u64,
    comm_rounds: u64,
    /// `to[d]` sends to rank `d`.
    to: Vec<Sender<Msg>>,
    /// `from[s]` receives from rank `s`.
    from: Vec<Receiver<Msg>>,
    collectives: Arc<CollectiveCtx>,
    /// Armed fault schedule; `None` runs the original lossless fabric.
    plan: Option<Arc<FaultPlan>>,
    /// Next transport sequence number per destination.
    next_seq: Vec<u64>,
    /// Next expected sequence number per source.
    expect_seq: Vec<u64>,
    /// Fault/recovery events recorded by this node (sender side).
    fault_events: Vec<FaultEvent>,
    fault_counters: FaultCounters,
    /// Fixed compute-slowdown factor from the plan (1.0 = none).
    slowdown: f64,
    /// Communication calls made (drives the stall sampler).
    comm_ops: u64,
    /// Whether causal tracing is armed (off by default: untraced runs pay
    /// one branch per communication call).
    tracing: bool,
    /// Recorded trace events (empty unless tracing).
    trace_events: Vec<TraceEvent>,
    /// Program-point tag stamped onto trace events.
    trace_stream: &'static str,
    /// Logical send ordinal per destination (independent of the chaos
    /// transport's frame sequence numbers).
    trace_send_seq: Vec<u64>,
    /// Accepted-receive ordinal per source.
    trace_recv_seq: Vec<u64>,
    /// Collective-participation ordinal.
    trace_coll_seq: u64,
}

impl Node {
    /// This node's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine's time parameters.
    pub fn params(&self) -> &TimeParams {
        &self.params
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_deref()
    }

    /// Current virtual time, nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Current virtual time, seconds.
    pub fn clock_seconds(&self) -> f64 {
        self.clock_ns / 1e9
    }

    /// Charges local computation: `work` abstract units (pixel visits,
    /// element operations) at `t_cpu` each, scaled by the node's injected
    /// slowdown factor (1.0 without a fault plan).
    pub fn compute(&mut self, work: u64) {
        self.clock_ns += work as f64 * self.params.t_cpu_ns * self.slowdown;
    }

    /// Charges an explicit number of nanoseconds (for modelled costs that
    /// are not per-element).
    pub fn charge_ns(&mut self, ns: f64) {
        self.clock_ns += ns;
    }

    /// Advances the clock to at least `ts_ns` (used by receive paths).
    fn sync_to(&mut self, ts_ns: f64) {
        if ts_ns > self.clock_ns {
            self.clock_ns = ts_ns;
        }
    }

    /// Arms (or disarms) causal tracing: every subsequent send, receive
    /// and collective records a [`TraceEvent`] stamped with the virtual
    /// clock. Off by default; untraced runs pay one branch per call.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Whether causal tracing is armed.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Sets the program-point tag stamped onto subsequent trace events
    /// (e.g. `"boundary"`, `"merge:stats"`). SPMD symmetry keeps sender
    /// and receiver tags agreeing: both ranks pass the same program point
    /// before touching the same logical message.
    pub fn set_trace_stream(&mut self, stream: &'static str) {
        self.trace_stream = stream;
    }

    /// Drains the node's recorded trace events.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace_events)
    }

    fn trace_send(&mut self, dst: usize, bytes: usize, retry_wait_ns: f64) {
        let seq = self.trace_send_seq[dst];
        self.trace_send_seq[dst] += 1;
        self.trace_events.push(TraceEvent {
            kind: TraceKind::Send,
            stream: self.trace_stream,
            src: self.rank as u32,
            dst: dst as u32,
            seq,
            bytes: bytes as u64,
            t_ns: self.clock_ns,
            wait_ns: retry_wait_ns,
        });
    }

    fn trace_recv(&mut self, src: usize, bytes: usize, wait_ns: f64) {
        let seq = self.trace_recv_seq[src];
        self.trace_recv_seq[src] += 1;
        self.trace_events.push(TraceEvent {
            kind: TraceKind::Recv,
            stream: self.trace_stream,
            src: src as u32,
            dst: self.rank as u32,
            seq,
            bytes: bytes as u64,
            t_ns: self.clock_ns,
            wait_ns,
        });
    }

    fn trace_coll(&mut self, bytes: usize, wait_ns: f64) {
        let seq = self.trace_coll_seq;
        self.trace_coll_seq += 1;
        let rank = self.rank as u32;
        self.trace_events.push(TraceEvent {
            kind: TraceKind::Collective,
            stream: self.trace_stream,
            src: rank,
            dst: rank,
            seq,
            bytes: bytes as u64,
            t_ns: self.clock_ns,
            wait_ns: wait_ns.max(0.0),
        });
    }

    /// Records a fault/recovery event at the current virtual time.
    fn record(&mut self, kind: FaultKind, dst: usize, seq: u64) {
        self.fault_events.push(FaultEvent {
            kind,
            src: self.rank as u32,
            dst: dst as u32,
            seq,
            ts_ns: self.clock_ns,
        });
    }

    /// Samples (and charges) a per-node stall ahead of a communication
    /// call. No-op without a fault plan.
    fn apply_stall(&mut self) {
        let Some(plan) = self.plan.clone() else {
            return;
        };
        self.comm_ops += 1;
        if let Some(ns) = plan.sample_stall(self.rank, self.comm_ops) {
            self.clock_ns += ns;
            self.fault_counters.stalls += 1;
            let me = self.rank;
            self.record(FaultKind::Stall, me, 0);
        }
    }

    /// Blocking (synchronous) send: charges the rendezvous setup plus
    /// bandwidth, then enqueues the message stamped with the post-charge
    /// clock.
    ///
    /// # Panics
    /// Panics if the armed fault plan kills the link; chaos-aware code
    /// must use [`Node::try_send_sync`].
    pub fn send_sync(&mut self, dst: usize, payload: Bytes) {
        self.try_send_sync(dst, payload)
            .expect("link died under fault injection — use try_send_sync");
    }

    /// Asynchronous send: cheaper setup; bandwidth is charged to the
    /// receiver side (the NI drains the buffer while the CPU continues).
    ///
    /// # Panics
    /// Panics if the armed fault plan kills the link; chaos-aware code
    /// must use [`Node::try_send_async`].
    pub fn send_async(&mut self, dst: usize, payload: Bytes) {
        self.try_send_async(dst, payload)
            .expect("link died under fault injection — use try_send_async");
    }

    /// Fallible synchronous send. Under a fault plan the payload travels
    /// as a CRC-framed, sequence-numbered frame; simulated drops and
    /// corruptions charge the retry timeout and retransmit, up to
    /// [`crate::fault::RetryPolicy::max_retries`] — past that the link is
    /// declared dead.
    pub fn try_send_sync(&mut self, dst: usize, payload: Bytes) -> Result<(), Fault> {
        self.send_impl(dst, payload, true)
    }

    /// Fallible asynchronous send (see [`Node::try_send_sync`]).
    pub fn try_send_async(&mut self, dst: usize, payload: Bytes) -> Result<(), Fault> {
        self.send_impl(dst, payload, false)
    }

    fn send_impl(&mut self, dst: usize, payload: Bytes, sync: bool) -> Result<(), Fault> {
        let Some(plan) = self.plan.clone() else {
            let len = payload.len();
            if sync {
                self.clock_ns +=
                    self.params.alpha_sync_ns + len as f64 * self.params.beta_ns_per_byte;
            } else {
                self.clock_ns += self.params.alpha_async_ns;
            }
            self.post(dst, payload, 0.0);
            if self.tracing {
                self.trace_send(dst, len, 0.0);
            }
            return Ok(());
        };
        self.apply_stall();
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let len = payload.len();
        let frame_bytes = (FRAME_HEADER_LEN + len) as f64;
        let mut retry_wait_ns = 0.0;
        for attempt in 0..=plan.retry.max_retries {
            if sync {
                self.clock_ns +=
                    self.params.alpha_sync_ns + frame_bytes * self.params.beta_ns_per_byte;
            } else {
                self.clock_ns += self.params.alpha_async_ns;
            }
            let o = plan.sample_link(self.rank, dst, seq, attempt);
            if o.drop {
                self.fault_counters.drops += 1;
                self.record(FaultKind::Drop, dst, seq);
                self.clock_ns += plan.retry.timeout_ns;
                retry_wait_ns += plan.retry.timeout_ns;
                self.fault_counters.retries += 1;
                self.record(FaultKind::Retry, dst, seq);
                continue;
            }
            if o.delay_ns > 0.0 {
                self.fault_counters.delays += 1;
                self.record(FaultKind::Delay, dst, seq);
            }
            let frame = encode_frame(seq, &payload, o.corrupt);
            self.post(dst, frame.clone(), o.delay_ns);
            if o.corrupt {
                // The receiver discards the frame on its CRC check; the
                // sender deterministically knows, charges the timeout,
                // and retransmits.
                self.fault_counters.corruptions += 1;
                self.record(FaultKind::Corrupt, dst, seq);
                self.clock_ns += plan.retry.timeout_ns;
                retry_wait_ns += plan.retry.timeout_ns;
                self.fault_counters.retries += 1;
                self.record(FaultKind::Retry, dst, seq);
                continue;
            }
            if o.dup {
                self.fault_counters.duplicates += 1;
                self.record(FaultKind::Duplicate, dst, seq);
                self.post(dst, frame, o.delay_ns);
            }
            if self.tracing {
                self.trace_send(dst, len, retry_wait_ns);
            }
            return Ok(());
        }
        self.fault_counters.links_dead += 1;
        self.record(FaultKind::LinkDead, dst, seq);
        Err(Fault::LinkDead {
            src: self.rank,
            dst,
            seq,
        })
    }

    /// Point-to-point messages sent so far (physical frames under chaos,
    /// including retransmissions and duplicates).
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// Point-to-point payload bytes sent so far (frame bytes under chaos).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Records one communication round (see
    /// [`crate::alltomany::all_to_many`]: LP counts each of its `Q−1`
    /// permutation rounds, Async counts one round per exchange).
    pub fn note_comm_round(&mut self) {
        self.comm_rounds += 1;
    }

    /// Communication rounds recorded so far.
    pub fn comm_rounds(&self) -> u64 {
        self.comm_rounds
    }

    /// Drains the node's recorded fault/recovery events.
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.fault_events)
    }

    /// The node's fault counters so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault_counters
    }

    /// Poisons the collective context so peers blocked in collectives
    /// cascade out. Called by the runtime when the node program aborts.
    pub fn poison_collectives(&self) {
        self.collectives.poison();
    }

    fn post(&mut self, dst: usize, payload: Bytes, delay_ns: f64) {
        self.msgs_sent += 1;
        self.bytes_sent += payload.len() as u64;
        let msg = Msg {
            src: self.rank,
            ts_ns: self.clock_ns + delay_ns,
            payload,
        };
        if self.plan.is_some() {
            // Under fault injection a peer may legitimately be gone (it
            // aborted); the cascade surfaces on this node's next blocking
            // call, not here.
            let _ = self.to[dst].send(msg);
        } else {
            self.to[dst]
                .send(msg)
                .expect("peer node hung up — node program panicked?");
        }
    }

    /// Blocking receive of the next message from `src`. The clock advances
    /// to the message's arrival time (sender timestamp + latency +
    /// bandwidth) if that is later than local time.
    ///
    /// # Panics
    /// Panics if the peer is down; chaos-aware code must use
    /// [`Node::try_recv_from`].
    pub fn recv_from(&mut self, src: usize) -> Bytes {
        self.try_recv_from(src)
            .expect("peer node hung up — node program panicked?")
    }

    /// Fallible blocking receive. Under a fault plan this runs the
    /// receiver half of the reliable transport: corrupted frames (CRC
    /// mismatch) and duplicates (stale sequence numbers) are charged for
    /// and silently discarded until the expected frame arrives; a
    /// disconnected peer yields [`Fault::PeerDown`].
    pub fn try_recv_from(&mut self, src: usize) -> Result<Bytes, Fault> {
        let mut wait_ns = 0.0;
        loop {
            let msg = self.from[src].recv().map_err(|_| Fault::PeerDown {
                rank: self.rank,
                peer: src,
            })?;
            debug_assert_eq!(msg.src, src);
            let arrival = msg.ts_ns
                + self.params.net_latency_ns
                + msg.payload.len() as f64 * self.params.beta_ns_per_byte;
            // Blocked-waiting portion: how far the arrival timestamp pulls
            // the local clock forward (the receive overhead below is CPU
            // work, not waiting).
            wait_ns += (arrival - self.clock_ns).max(0.0);
            self.sync_to(arrival);
            self.clock_ns += self.params.recv_overhead_ns;
            if self.plan.is_none() {
                if self.tracing {
                    self.trace_recv(src, msg.payload.len(), wait_ns);
                }
                return Ok(msg.payload);
            }
            match decode_frame(msg.payload) {
                // Corrupted frame: discard and wait for the retransmit.
                Err(_) => continue,
                Ok((seq, payload)) => {
                    let expect = self.expect_seq[src];
                    if seq < expect {
                        // Duplicate of an already-accepted frame.
                        continue;
                    }
                    debug_assert_eq!(seq, expect, "transport hole on link {src}->{}", self.rank);
                    self.expect_seq[src] = seq + 1;
                    if self.tracing {
                        self.trace_recv(src, payload.len(), wait_ns);
                    }
                    return Ok(payload);
                }
            }
        }
    }

    /// Barrier across all nodes; clocks synchronise to the latest arrival
    /// plus the control-tree latency.
    ///
    /// # Panics
    /// Panics if the collectives were poisoned; chaos-aware code must use
    /// [`Node::try_barrier`].
    pub fn barrier(&mut self) {
        self.try_barrier().expect("collective poisoned");
    }

    /// Fallible barrier (see [`Node::barrier`]).
    pub fn try_barrier(&mut self) -> Result<(), Fault> {
        self.apply_stall();
        let entered = self.clock_ns;
        let all = self
            .collectives
            .try_exchange_clock(self.rank, self.clock_ns)
            .map_err(|_| Fault::CollectivePoisoned { rank: self.rank })?;
        let max = all.iter().copied().fold(f64::MIN, f64::max);
        self.clock_ns = max + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
        if self.tracing {
            self.trace_coll(0, max - entered);
        }
        Ok(())
    }

    /// Global concatenation: every node contributes a payload; every node
    /// receives all payloads indexed by rank. This is CMMD's
    /// `CMMD_concat_with_nodes`, the primitive the paper's LP scheme uses
    /// to build the communication matrix.
    ///
    /// # Panics
    /// Panics if the collectives were poisoned; chaos-aware code must use
    /// [`Node::try_concat`].
    pub fn concat(&mut self, payload: Bytes) -> Vec<Bytes> {
        self.try_concat(payload).expect("collective poisoned")
    }

    /// Fallible global concatenation (see [`Node::concat`]).
    pub fn try_concat(&mut self, payload: Bytes) -> Result<Vec<Bytes>, Fault> {
        self.apply_stall();
        let entered = self.clock_ns;
        let parts = self
            .collectives
            .try_exchange_bytes(self.rank, self.clock_ns, payload)
            .map_err(|_| Fault::CollectivePoisoned { rank: self.rank })?;
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
        self.clock_ns = max_ts
            + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns
            + total as f64 * self.params.beta_ns_per_byte;
        if self.tracing {
            self.trace_coll(total, max_ts - entered);
        }
        Ok(parts.into_iter().map(|(_, b)| b).collect())
    }

    /// Global reduction of a `u64` with an associative-commutative `op`;
    /// every node receives the result.
    ///
    /// # Panics
    /// Panics if the collectives were poisoned; chaos-aware code must use
    /// [`Node::try_allreduce_u64`].
    pub fn allreduce_u64(&mut self, v: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        self.try_allreduce_u64(v, op).expect("collective poisoned")
    }

    /// Fallible global reduction (see [`Node::allreduce_u64`]).
    pub fn try_allreduce_u64(
        &mut self,
        v: u64,
        op: impl Fn(u64, u64) -> u64,
    ) -> Result<u64, Fault> {
        self.apply_stall();
        let entered = self.clock_ns;
        let parts = self
            .collectives
            .try_exchange_u64(self.rank, self.clock_ns, v)
            .map_err(|_| Fault::CollectivePoisoned { rank: self.rank })?;
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        self.clock_ns = max_ts + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
        if self.tracing {
            self.trace_coll(8, max_ts - entered);
        }
        Ok(parts.into_iter().map(|(_, x)| x).reduce(&op).unwrap())
    }

    /// Global OR — the merge loop's "does any node still have active
    /// edges?" test.
    ///
    /// # Panics
    /// Panics if the collectives were poisoned; chaos-aware code must use
    /// [`Node::try_allreduce_or`].
    pub fn allreduce_or(&mut self, v: bool) -> bool {
        self.try_allreduce_or(v).expect("collective poisoned")
    }

    /// Fallible global OR (see [`Node::allreduce_or`]).
    pub fn try_allreduce_or(&mut self, v: bool) -> Result<bool, Fault> {
        Ok(self.try_allreduce_u64(v as u64, |a, b| a | b)? != 0)
    }

    /// Broadcast from `root`: every node receives the root's payload
    /// (CMMD's `CMMD_bc_from_node`). Built on the control-network
    /// exchange; charged one tree traversal plus the payload bandwidth.
    ///
    /// # Panics
    /// Panics if the collectives were poisoned; chaos-aware code must use
    /// [`Node::try_broadcast`].
    pub fn broadcast(&mut self, root: usize, payload: Bytes) -> Bytes {
        self.try_broadcast(root, payload)
            .expect("collective poisoned")
    }

    /// Fallible broadcast (see [`Node::broadcast`]).
    pub fn try_broadcast(&mut self, root: usize, payload: Bytes) -> Result<Bytes, Fault> {
        assert!(root < self.size, "broadcast root out of range");
        self.apply_stall();
        let contribution = if self.rank == root {
            payload
        } else {
            Bytes::new()
        };
        let entered = self.clock_ns;
        let parts = self
            .collectives
            .try_exchange_bytes(self.rank, self.clock_ns, contribution)
            .map_err(|_| Fault::CollectivePoisoned { rank: self.rank })?;
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        let data = parts[root].1.clone();
        self.clock_ns = max_ts
            + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns
            + data.len() as f64 * self.params.beta_ns_per_byte;
        if self.tracing {
            self.trace_coll(data.len(), max_ts - entered);
        }
        Ok(data)
    }

    /// Exclusive prefix over ranks: node `k` receives
    /// `op(v_0, …, v_{k-1})` (`init` for rank 0) — CMMD's scan on the
    /// control network.
    ///
    /// # Panics
    /// Panics if the collectives were poisoned; chaos-aware code must use
    /// [`Node::try_scan_exclusive_u64`].
    pub fn scan_exclusive_u64(&mut self, v: u64, init: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        self.try_scan_exclusive_u64(v, init, op)
            .expect("collective poisoned")
    }

    /// Fallible exclusive scan (see [`Node::scan_exclusive_u64`]).
    pub fn try_scan_exclusive_u64(
        &mut self,
        v: u64,
        init: u64,
        op: impl Fn(u64, u64) -> u64,
    ) -> Result<u64, Fault> {
        self.apply_stall();
        let entered = self.clock_ns;
        let parts = self
            .collectives
            .try_exchange_u64(self.rank, self.clock_ns, v)
            .map_err(|_| Fault::CollectivePoisoned { rank: self.rank })?;
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        self.clock_ns = max_ts + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
        if self.tracing {
            self.trace_coll(8, max_ts - entered);
        }
        Ok(parts[..self.rank]
            .iter()
            .fold(init, |acc, &(_, x)| op(acc, x)))
    }

    /// Gather to `root`: the root receives every node's payload indexed by
    /// rank; other nodes receive an empty vector. Charged like a
    /// concatenation whose bandwidth lands on the root.
    ///
    /// # Panics
    /// Panics if the collectives were poisoned; chaos-aware code must use
    /// [`Node::try_gather_to`].
    pub fn gather_to(&mut self, root: usize, payload: Bytes) -> Vec<Bytes> {
        self.try_gather_to(root, payload)
            .expect("collective poisoned")
    }

    /// Fallible gather (see [`Node::gather_to`]).
    pub fn try_gather_to(&mut self, root: usize, payload: Bytes) -> Result<Vec<Bytes>, Fault> {
        assert!(root < self.size, "gather root out of range");
        self.apply_stall();
        let entered = self.clock_ns;
        let parts = self
            .collectives
            .try_exchange_bytes(self.rank, self.clock_ns, payload)
            .map_err(|_| Fault::CollectivePoisoned { rank: self.rank })?;
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
        self.clock_ns = max_ts + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
        let out = if self.rank == root {
            self.clock_ns += total as f64 * self.params.beta_ns_per_byte;
            parts.into_iter().map(|(_, b)| b).collect()
        } else {
            Vec::new()
        };
        if self.tracing {
            self.trace_coll(total, max_ts - entered);
        }
        Ok(out)
    }
}

/// Runs `f` on `nodes` SPMD nodes, one thread each, and collects results
/// and virtual times.
pub fn run_spmd<R, F>(nodes: usize, params: TimeParams, f: F) -> SpmdResult<R>
where
    R: Send,
    F: Fn(&mut Node) -> R + Sync,
{
    try_run_spmd(nodes, params, None, |node| Ok(f(node)))
        .unwrap_or_else(|abort| panic!("fault-free SPMD run aborted: {abort}"))
}

/// Runs `f` on `nodes` SPMD nodes under an optional [`FaultPlan`].
///
/// A node program that returns `Err` poisons the collectives and drops
/// its channel endpoints, so every peer blocked on it cascades out with
/// its own `Err` ([`Fault::CollectivePoisoned`] or [`Fault::PeerDown`])
/// instead of deadlocking; the run then reports [`SpmdAbort`]. Because a
/// node's abort point is a pure function of the fault plan and the node
/// program's data, aborts — like everything else in the simulator — are
/// deterministic under host scheduling.
pub fn try_run_spmd<R, F>(
    nodes: usize,
    params: TimeParams,
    plan: Option<FaultPlan>,
    f: F,
) -> Result<SpmdResult<R>, SpmdAbort>
where
    R: Send,
    F: Fn(&mut Node) -> Result<R, Fault> + Sync,
{
    assert!(nodes > 0, "need at least one node");
    // Build the P×P channel matrix: endpoint (s, d).
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..nodes)
        .map(|_| (0..nodes).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..nodes)
        .map(|_| (0..nodes).map(|_| None).collect())
        .collect();
    for s in 0..nodes {
        for d in 0..nodes {
            let (tx, rx) = unbounded();
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
        }
    }
    let collectives = Arc::new(CollectiveCtx::new(nodes));
    let plan = plan.map(Arc::new);

    let mut handles: Vec<Node> = Vec::with_capacity(nodes);
    for (rank, (snd_row, rcv_row)) in senders.into_iter().zip(receivers).enumerate() {
        handles.push(Node {
            rank,
            size: nodes,
            params,
            clock_ns: 0.0,
            msgs_sent: 0,
            bytes_sent: 0,
            comm_rounds: 0,
            to: snd_row.into_iter().map(Option::unwrap).collect(),
            from: rcv_row.into_iter().map(Option::unwrap).collect(),
            collectives: Arc::clone(&collectives),
            slowdown: plan.as_ref().map_or(1.0, |p| p.node_slowdown(rank)),
            plan: plan.clone(),
            next_seq: vec![0; nodes],
            expect_seq: vec![0; nodes],
            fault_events: Vec::new(),
            fault_counters: FaultCounters::default(),
            comm_ops: 0,
            tracing: false,
            trace_events: Vec::new(),
            trace_stream: "setup",
            trace_send_seq: vec![0; nodes],
            trace_recv_seq: vec![0; nodes],
            trace_coll_seq: 0,
        });
    }

    type NodeExit<R> = (
        Result<R, Fault>,
        f64,
        Vec<FaultEvent>,
        FaultCounters,
        Vec<TraceEvent>,
    );
    let f = &f;
    let mut out: Vec<Option<NodeExit<R>>> = (0..nodes).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(nodes);
        for mut node in handles {
            joins.push(scope.spawn(move || {
                let r = f(&mut node);
                if r.is_err() {
                    // Wake peers blocked in collectives; peers blocked in
                    // receives wake when this node's senders drop below.
                    node.poison_collectives();
                }
                let events = node.take_fault_events();
                let trace = node.take_trace_events();
                (
                    node.rank,
                    r,
                    node.clock_ns,
                    events,
                    node.fault_counters,
                    trace,
                )
            }));
        }
        for j in joins {
            let (rank, r, clock, events, counters, trace) =
                j.join().expect("node program panicked");
            out[rank] = Some((r, clock, events, counters, trace));
        }
    });

    let mut results = Vec::with_capacity(nodes);
    let mut faults = Vec::new();
    let mut node_seconds = Vec::with_capacity(nodes);
    let mut fault_events = Vec::new();
    let mut fault_counters = FaultCounters::default();
    let mut trace_events = Vec::new();
    for (rank, slot) in out.into_iter().enumerate() {
        let (r, clock, events, counters, trace) = slot.expect("missing node result");
        node_seconds.push(clock / 1e9);
        fault_events.extend(events);
        fault_counters.merge(&counters);
        trace_events.extend(trace);
        match r {
            Ok(v) => results.push(v),
            Err(fault) => faults.push((rank, fault)),
        }
    }
    if !faults.is_empty() {
        return Err(SpmdAbort {
            faults,
            fault_events,
            fault_counters,
        });
    }
    let max_seconds = node_seconds.iter().copied().fold(0.0, f64::max);
    Ok(SpmdResult {
        results,
        node_seconds,
        max_seconds,
        fault_events,
        fault_counters,
        trace_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{decode_u32s, encode_u32s};

    #[test]
    fn ring_pass() {
        // Each node sends its rank to the right neighbour; receives from
        // the left.
        let res = run_spmd(8, TimeParams::default(), |node| {
            let right = (node.rank() + 1) % node.size();
            let left = (node.rank() + node.size() - 1) % node.size();
            node.send_sync(right, encode_u32s(&[node.rank() as u32]));
            let got = decode_u32s(node.recv_from(left));
            got[0]
        });
        assert_eq!(res.results, vec![7, 0, 1, 2, 3, 4, 5, 6]);
        assert!(res.max_seconds > 0.0);
        assert!(res.fault_events.is_empty());
        assert_eq!(res.fault_counters, FaultCounters::default());
    }

    #[test]
    fn clocks_synchronise_on_recv() {
        // Node 0 computes a long time, then sends to node 1; node 1's
        // receive must push its clock past node 0's send time.
        let res = run_spmd(2, TimeParams::default(), |node| {
            if node.rank() == 0 {
                node.compute(1_000_000);
                node.send_sync(1, encode_u32s(&[42]));
            } else {
                let _ = node.recv_from(0);
            }
            node.clock_seconds()
        });
        assert!(res.results[1] > res.results[0] * 0.99);
        assert!(res.results[1] >= 1_000_000.0 * 150.0 / 1e9);
    }

    #[test]
    fn barrier_equalises_clocks() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            node.compute(node.rank() as u64 * 10_000);
            node.barrier();
            node.clock_seconds()
        });
        let first = res.results[0];
        for &c in &res.results {
            assert!((c - first).abs() < 1e-12, "{c} vs {first}");
        }
    }

    #[test]
    fn concat_gathers_in_rank_order() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            let parts = node.concat(encode_u32s(&[node.rank() as u32 * 10]));
            parts
                .into_iter()
                .flat_map(decode_u32s)
                .collect::<Vec<u32>>()
        });
        for r in res.results {
            assert_eq!(r, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn allreduce_or_and_max() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            let any = node.allreduce_or(node.rank() == 2);
            let none = node.allreduce_or(false);
            let max = node.allreduce_u64(node.rank() as u64, u64::max);
            (any, none, max)
        });
        for (any, none, max) in res.results {
            assert!(any);
            assert!(!none);
            assert_eq!(max, 3);
        }
    }

    #[test]
    fn async_send_cheaper_than_sync() {
        let time_of = |sync: bool| {
            run_spmd(2, TimeParams::default(), move |node| {
                if node.rank() == 0 {
                    let payload = encode_u32s(&vec![7u32; 100]);
                    if sync {
                        node.send_sync(1, payload);
                    } else {
                        node.send_async(1, payload);
                    }
                } else {
                    let _ = node.recv_from(0);
                }
                node.clock_seconds()
            })
            .results[0]
        };
        assert!(time_of(false) < time_of(true));
    }

    #[test]
    fn deterministic_virtual_time() {
        let run = || {
            run_spmd(6, TimeParams::default(), |node| {
                node.compute((node.rank() as u64 + 1) * 1000);
                let parts = node.concat(encode_u32s(&[node.rank() as u32]));
                node.barrier();
                (parts.len(), node.clock_ns())
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y);
        }
        assert_eq!(a.max_seconds, b.max_seconds);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::channel::encode_u32s;
    use crate::trace::TraceKind;

    fn traced_ring(plan: Option<FaultPlan>) -> SpmdResult<()> {
        try_run_spmd(4, TimeParams::default(), plan, |node| {
            node.set_tracing(true);
            node.set_trace_stream("ring");
            let right = (node.rank() + 1) % node.size();
            let left = (node.rank() + node.size() - 1) % node.size();
            node.try_send_sync(right, encode_u32s(&[node.rank() as u32]))?;
            let _ = node.try_recv_from(left)?;
            node.set_trace_stream("sync");
            node.try_barrier()?;
            Ok(())
        })
        .expect("ring must survive")
    }

    #[test]
    fn untraced_runs_record_nothing() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            node.send_sync((node.rank() + 1) % node.size(), encode_u32s(&[1]));
            let _ = node.recv_from((node.rank() + node.size() - 1) % node.size());
            node.barrier();
        });
        assert!(res.trace_events.is_empty());
    }

    #[test]
    fn traced_ring_pairs_sends_and_recvs() {
        let res = traced_ring(None);
        let sends: Vec<_> = res
            .trace_events
            .iter()
            .filter(|e| e.kind == TraceKind::Send)
            .collect();
        let recvs: Vec<_> = res
            .trace_events
            .iter()
            .filter(|e| e.kind == TraceKind::Recv)
            .collect();
        let colls: Vec<_> = res
            .trace_events
            .iter()
            .filter(|e| e.kind == TraceKind::Collective)
            .collect();
        assert_eq!(sends.len(), 4);
        assert_eq!(recvs.len(), 4);
        assert_eq!(colls.len(), 4);
        for s in &sends {
            assert_eq!(s.stream, "ring");
            assert!(
                recvs
                    .iter()
                    .any(|r| (r.src, r.dst, r.seq) == (s.src, s.dst, s.seq)),
                "unpaired send {s:?}"
            );
            // Recv completion must not precede the paired send.
            let r = recvs
                .iter()
                .find(|r| (r.src, r.dst, r.seq) == (s.src, s.dst, s.seq))
                .unwrap();
            assert!(r.t_ns >= s.t_ns);
        }
        // Collective ordinals align across ranks and at least one rank
        // waited for a peer (clocks differ before the barrier).
        for c in &colls {
            assert_eq!(c.seq, 0);
            assert_eq!(c.stream, "sync");
        }
        assert!(colls.iter().any(|c| c.wait_ns == 0.0));
    }

    #[test]
    fn trace_seq_is_logical_under_retransmission() {
        // A storm plan retransmits frames, but logical trace pairing must
        // be unaffected and retry waits must be attributed to sends.
        let res = traced_ring(Some(FaultPlan::new(5, "storm").unwrap()));
        let sends: Vec<_> = res
            .trace_events
            .iter()
            .filter(|e| e.kind == TraceKind::Send)
            .collect();
        assert_eq!(sends.len(), 4);
        for s in &sends {
            assert_eq!(s.seq, 0, "one logical send per edge");
            assert!(
                res.trace_events
                    .iter()
                    .any(|r| r.kind == TraceKind::Recv
                        && (r.src, r.dst, r.seq) == (s.src, s.dst, s.seq)),
                "unpaired send {s:?}"
            );
        }
        if res.fault_counters.retries > 0 {
            assert!(sends.iter().any(|s| s.wait_ns > 0.0));
        }
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use crate::channel::{decode_u32s, encode_u32s};

    #[test]
    fn broadcast_delivers_root_payload() {
        let res = run_spmd(5, TimeParams::default(), |node| {
            let payload = if node.rank() == 2 {
                encode_u32s(&[41, 42])
            } else {
                encode_u32s(&[99]) // ignored: only the root's bytes matter
            };
            decode_u32s(node.broadcast(2, payload))
        });
        for r in res.results {
            assert_eq!(r, vec![41, 42]);
        }
    }

    #[test]
    fn exclusive_scan_over_ranks() {
        let res = run_spmd(6, TimeParams::default(), |node| {
            node.scan_exclusive_u64(node.rank() as u64 + 1, 0, |a, b| a + b)
        });
        // Node k gets sum of 1..=k.
        assert_eq!(res.results, vec![0, 1, 3, 6, 10, 15]);
    }

    #[test]
    fn gather_lands_on_root_only() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            let got = node.gather_to(1, encode_u32s(&[node.rank() as u32 * 7]));
            got.into_iter().flat_map(decode_u32s).collect::<Vec<_>>()
        });
        assert!(res.results[0].is_empty());
        assert_eq!(res.results[1], vec![0, 7, 14, 21]);
        assert!(res.results[2].is_empty());
    }

    #[test]
    fn send_counters_track_traffic() {
        let res = run_spmd(3, TimeParams::default(), |node| {
            if node.rank() == 0 {
                node.send_sync(1, encode_u32s(&[1, 2, 3]));
                node.send_async(2, encode_u32s(&[4]));
            } else {
                let _ = node.recv_from(0);
            }
            (node.msgs_sent(), node.bytes_sent())
        });
        assert_eq!(res.results[0], (2, 16));
        assert_eq!(res.results[1], (0, 0));
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::channel::{decode_u32s, encode_u32s};
    use crate::fault::FaultPlan;

    /// A ring exchange under the given plan: payloads must survive intact.
    fn chaos_ring(plan: FaultPlan) -> Result<SpmdResult<Vec<u32>>, SpmdAbort> {
        try_run_spmd(6, TimeParams::default(), Some(plan), |node| {
            let right = (node.rank() + 1) % node.size();
            let left = (node.rank() + node.size() - 1) % node.size();
            for k in 0..20u32 {
                node.try_send_sync(right, encode_u32s(&[node.rank() as u32, k]))?;
            }
            let mut got = Vec::new();
            for _ in 0..20 {
                got.extend(decode_u32s(node.try_recv_from(left)?));
            }
            node.try_barrier()?;
            Ok(got)
        })
    }

    #[test]
    fn survivable_profiles_deliver_identical_payloads() {
        let baseline = chaos_ring(FaultPlan::new(0, "none").unwrap()).unwrap();
        for profile in ["drop", "dup", "corrupt", "delay", "slow", "storm"] {
            for seed in [1u64, 2, 0xC0FFEE] {
                let res = chaos_ring(FaultPlan::new(seed, profile).unwrap())
                    .unwrap_or_else(|a| panic!("{profile}/{seed} aborted: {a}"));
                assert_eq!(res.results, baseline.results, "{profile}/{seed}");
            }
        }
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let plan = || FaultPlan::new(77, "storm").unwrap();
        let a = chaos_ring(plan()).unwrap();
        let b = chaos_ring(plan()).unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(a.node_seconds, b.node_seconds);
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.fault_counters, b.fault_counters);
    }

    #[test]
    fn faults_cost_virtual_time() {
        let clean = chaos_ring(FaultPlan::new(0, "none").unwrap()).unwrap();
        let noisy = chaos_ring(FaultPlan::new(5, "storm").unwrap()).unwrap();
        assert!(noisy.fault_counters.total_faults() > 0);
        assert!(noisy.fault_counters.retries > 0);
        assert!(
            noisy.max_seconds > clean.max_seconds,
            "retries must show up on the clock: {} vs {}",
            noisy.max_seconds,
            clean.max_seconds
        );
    }

    #[test]
    fn blackhole_aborts_without_deadlock() {
        let abort =
            chaos_ring(FaultPlan::new(9, "blackhole").unwrap()).expect_err("blackhole must abort");
        assert!(!abort.faults.is_empty());
        assert!(abort
            .faults
            .iter()
            .any(|(_, f)| matches!(f, Fault::LinkDead { .. })));
        assert!(abort.fault_counters.links_dead > 0);
    }

    #[test]
    fn single_fault_cascades_to_all_nodes() {
        // Rank 0 aborts immediately; everyone else is blocked on a
        // collective and must cascade out rather than deadlock.
        let abort = try_run_spmd(
            4,
            TimeParams::default(),
            Some(FaultPlan::new(1, "none").unwrap()),
            |node| {
                if node.rank() == 0 {
                    return Err(Fault::LinkDead {
                        src: 0,
                        dst: 1,
                        seq: 0,
                    });
                }
                node.try_barrier()?;
                Ok(())
            },
        )
        .expect_err("must abort");
        assert_eq!(abort.faults.len(), 4);
        for (rank, fault) in &abort.faults[1..] {
            assert_eq!(
                fault,
                &Fault::CollectivePoisoned { rank: *rank },
                "rank {rank}"
            );
        }
    }

    #[test]
    fn peer_death_wakes_blocked_receiver() {
        let abort = try_run_spmd(
            2,
            TimeParams::default(),
            Some(FaultPlan::new(1, "none").unwrap()),
            |node| {
                if node.rank() == 0 {
                    return Err(Fault::LinkDead {
                        src: 0,
                        dst: 1,
                        seq: 0,
                    });
                }
                // Blocks forever unless node 0's death disconnects us.
                let _ = node.try_recv_from(0)?;
                Ok(())
            },
        )
        .expect_err("must abort");
        assert!(abort
            .faults
            .iter()
            .any(|(r, f)| *r == 1 && matches!(f, Fault::PeerDown { peer: 0, .. })));
    }

    #[test]
    fn framing_only_applies_under_a_plan() {
        // The fault-free path must keep raw payloads (and exact byte
        // counters); the chaos path frames every payload.
        let plain = run_spmd(2, TimeParams::default(), |node| {
            if node.rank() == 0 {
                node.send_sync(1, encode_u32s(&[1, 2, 3]));
            } else {
                let _ = node.recv_from(0);
            }
            node.bytes_sent()
        });
        assert_eq!(plain.results[0], 12);
        let framed = try_run_spmd(
            2,
            TimeParams::default(),
            Some(FaultPlan::new(0, "none").unwrap()),
            |node| {
                if node.rank() == 0 {
                    node.try_send_sync(1, encode_u32s(&[1, 2, 3]))?;
                } else {
                    let _ = node.try_recv_from(0)?;
                }
                Ok(node.bytes_sent())
            },
        )
        .unwrap();
        assert_eq!(framed.results[0], 12 + FRAME_HEADER_LEN as u64);
    }
}
