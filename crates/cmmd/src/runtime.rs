//! The SPMD node runtime.
//!
//! [`run_spmd`] launches one OS thread per simulated CM-5 node and hands
//! each a [`Node`] handle carrying its rank, its point-to-point channel
//! endpoints, the shared collective context, and its virtual clock. The
//! node program is the same closure on every rank — exactly the CMMD
//! "hostless" execution model the paper's F77 code used.

use crate::channel::Msg;
use crate::collectives::CollectiveCtx;
use crate::time::TimeParams;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// Result of an SPMD run.
#[derive(Debug, Clone)]
pub struct SpmdResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks, seconds.
    pub node_seconds: Vec<f64>,
    /// Makespan: the maximum final clock, seconds.
    pub max_seconds: f64,
}

/// A node's handle onto the simulated machine.
pub struct Node {
    rank: usize,
    size: usize,
    params: TimeParams,
    clock_ns: f64,
    msgs_sent: u64,
    bytes_sent: u64,
    comm_rounds: u64,
    /// `to[d]` sends to rank `d`.
    to: Vec<Sender<Msg>>,
    /// `from[s]` receives from rank `s`.
    from: Vec<Receiver<Msg>>,
    collectives: Arc<CollectiveCtx>,
}

impl Node {
    /// This node's rank in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine's time parameters.
    pub fn params(&self) -> &TimeParams {
        &self.params
    }

    /// Current virtual time, nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Current virtual time, seconds.
    pub fn clock_seconds(&self) -> f64 {
        self.clock_ns / 1e9
    }

    /// Charges local computation: `work` abstract units (pixel visits,
    /// element operations) at `t_cpu` each.
    pub fn compute(&mut self, work: u64) {
        self.clock_ns += work as f64 * self.params.t_cpu_ns;
    }

    /// Charges an explicit number of nanoseconds (for modelled costs that
    /// are not per-element).
    pub fn charge_ns(&mut self, ns: f64) {
        self.clock_ns += ns;
    }

    /// Advances the clock to at least `ts_ns` (used by receive paths).
    fn sync_to(&mut self, ts_ns: f64) {
        if ts_ns > self.clock_ns {
            self.clock_ns = ts_ns;
        }
    }

    /// Blocking (synchronous) send: charges the rendezvous setup plus
    /// bandwidth, then enqueues the message stamped with the post-charge
    /// clock.
    pub fn send_sync(&mut self, dst: usize, payload: Bytes) {
        self.clock_ns +=
            self.params.alpha_sync_ns + payload.len() as f64 * self.params.beta_ns_per_byte;
        self.post(dst, payload);
    }

    /// Asynchronous send: cheaper setup; bandwidth is charged to the
    /// receiver side (the NI drains the buffer while the CPU continues).
    pub fn send_async(&mut self, dst: usize, payload: Bytes) {
        self.clock_ns += self.params.alpha_async_ns;
        self.post(dst, payload);
    }

    /// Point-to-point messages sent so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// Point-to-point payload bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Records one communication round (see
    /// [`crate::alltomany::all_to_many`]: LP counts each of its `Q−1`
    /// permutation rounds, Async counts one round per exchange).
    pub fn note_comm_round(&mut self) {
        self.comm_rounds += 1;
    }

    /// Communication rounds recorded so far.
    pub fn comm_rounds(&self) -> u64 {
        self.comm_rounds
    }

    fn post(&mut self, dst: usize, payload: Bytes) {
        self.msgs_sent += 1;
        self.bytes_sent += payload.len() as u64;
        let msg = Msg {
            src: self.rank,
            ts_ns: self.clock_ns,
            payload,
        };
        self.to[dst]
            .send(msg)
            .expect("peer node hung up — node program panicked?");
    }

    /// Blocking receive of the next message from `src`. The clock advances
    /// to the message's arrival time (sender timestamp + latency +
    /// bandwidth) if that is later than local time.
    pub fn recv_from(&mut self, src: usize) -> Bytes {
        let msg = self.from[src]
            .recv()
            .expect("peer node hung up — node program panicked?");
        debug_assert_eq!(msg.src, src);
        let arrival = msg.ts_ns
            + self.params.net_latency_ns
            + msg.payload.len() as f64 * self.params.beta_ns_per_byte;
        self.sync_to(arrival);
        self.clock_ns += self.params.recv_overhead_ns;
        msg.payload
    }

    /// Barrier across all nodes; clocks synchronise to the latest arrival
    /// plus the control-tree latency.
    pub fn barrier(&mut self) {
        let all = self.collectives.exchange_clock(self.rank, self.clock_ns);
        let max = all.iter().copied().fold(f64::MIN, f64::max);
        self.clock_ns = max + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
    }

    /// Global concatenation: every node contributes a payload; every node
    /// receives all payloads indexed by rank. This is CMMD's
    /// `CMMD_concat_with_nodes`, the primitive the paper's LP scheme uses
    /// to build the communication matrix.
    pub fn concat(&mut self, payload: Bytes) -> Vec<Bytes> {
        let parts = self
            .collectives
            .exchange_bytes(self.rank, self.clock_ns, payload);
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
        self.clock_ns = max_ts
            + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns
            + total as f64 * self.params.beta_ns_per_byte;
        parts.into_iter().map(|(_, b)| b).collect()
    }

    /// Global reduction of a `u64` with an associative-commutative `op`;
    /// every node receives the result.
    pub fn allreduce_u64(&mut self, v: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let parts = self.collectives.exchange_u64(self.rank, self.clock_ns, v);
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        self.clock_ns = max_ts + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
        parts.into_iter().map(|(_, x)| x).reduce(&op).unwrap()
    }

    /// Global OR — the merge loop's "does any node still have active
    /// edges?" test.
    pub fn allreduce_or(&mut self, v: bool) -> bool {
        self.allreduce_u64(v as u64, |a, b| a | b) != 0
    }

    /// Broadcast from `root`: every node receives the root's payload
    /// (CMMD's `CMMD_bc_from_node`). Built on the control-network
    /// exchange; charged one tree traversal plus the payload bandwidth.
    pub fn broadcast(&mut self, root: usize, payload: Bytes) -> Bytes {
        assert!(root < self.size, "broadcast root out of range");
        let contribution = if self.rank == root {
            payload
        } else {
            Bytes::new()
        };
        let parts = self
            .collectives
            .exchange_bytes(self.rank, self.clock_ns, contribution);
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        let data = parts[root].1.clone();
        self.clock_ns = max_ts
            + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns
            + data.len() as f64 * self.params.beta_ns_per_byte;
        data
    }

    /// Exclusive prefix over ranks: node `k` receives
    /// `op(v_0, …, v_{k-1})` (`init` for rank 0) — CMMD's scan on the
    /// control network.
    pub fn scan_exclusive_u64(&mut self, v: u64, init: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let parts = self.collectives.exchange_u64(self.rank, self.clock_ns, v);
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        self.clock_ns = max_ts + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
        parts[..self.rank]
            .iter()
            .fold(init, |acc, &(_, x)| op(acc, x))
    }

    /// Gather to `root`: the root receives every node's payload indexed by
    /// rank; other nodes receive an empty vector. Charged like a
    /// concatenation whose bandwidth lands on the root.
    pub fn gather_to(&mut self, root: usize, payload: Bytes) -> Vec<Bytes> {
        assert!(root < self.size, "gather root out of range");
        let parts = self
            .collectives
            .exchange_bytes(self.rank, self.clock_ns, payload);
        let max_ts = parts.iter().map(|(t, _)| *t).fold(f64::MIN, f64::max);
        let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
        self.clock_ns = max_ts + (self.size.max(2) as f64).log2() * self.params.tree_stage_ns;
        if self.rank == root {
            self.clock_ns += total as f64 * self.params.beta_ns_per_byte;
            parts.into_iter().map(|(_, b)| b).collect()
        } else {
            Vec::new()
        }
    }
}

/// Runs `f` on `nodes` SPMD nodes, one thread each, and collects results
/// and virtual times.
pub fn run_spmd<R, F>(nodes: usize, params: TimeParams, f: F) -> SpmdResult<R>
where
    R: Send,
    F: Fn(&mut Node) -> R + Sync,
{
    assert!(nodes > 0, "need at least one node");
    // Build the P×P channel matrix: endpoint (s, d).
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..nodes)
        .map(|_| (0..nodes).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..nodes)
        .map(|_| (0..nodes).map(|_| None).collect())
        .collect();
    for s in 0..nodes {
        for d in 0..nodes {
            let (tx, rx) = unbounded();
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
        }
    }
    let collectives = Arc::new(CollectiveCtx::new(nodes));

    let mut handles: Vec<Node> = Vec::with_capacity(nodes);
    for (rank, (snd_row, rcv_row)) in senders.into_iter().zip(receivers).enumerate() {
        handles.push(Node {
            rank,
            size: nodes,
            params,
            clock_ns: 0.0,
            msgs_sent: 0,
            bytes_sent: 0,
            comm_rounds: 0,
            to: snd_row.into_iter().map(Option::unwrap).collect(),
            from: rcv_row.into_iter().map(Option::unwrap).collect(),
            collectives: Arc::clone(&collectives),
        });
    }

    let f = &f;
    let mut out: Vec<Option<(R, f64)>> = (0..nodes).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(nodes);
        for mut node in handles {
            joins.push(scope.spawn(move || {
                let r = f(&mut node);
                (node.rank, r, node.clock_ns)
            }));
        }
        for j in joins {
            let (rank, r, clock) = j.join().expect("node program panicked");
            out[rank] = Some((r, clock));
        }
    });

    let mut results = Vec::with_capacity(nodes);
    let mut node_seconds = Vec::with_capacity(nodes);
    for slot in out {
        let (r, clock) = slot.expect("missing node result");
        results.push(r);
        node_seconds.push(clock / 1e9);
    }
    let max_seconds = node_seconds.iter().copied().fold(0.0, f64::max);
    SpmdResult {
        results,
        node_seconds,
        max_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{decode_u32s, encode_u32s};

    #[test]
    fn ring_pass() {
        // Each node sends its rank to the right neighbour; receives from
        // the left.
        let res = run_spmd(8, TimeParams::default(), |node| {
            let right = (node.rank() + 1) % node.size();
            let left = (node.rank() + node.size() - 1) % node.size();
            node.send_sync(right, encode_u32s(&[node.rank() as u32]));
            let got = decode_u32s(node.recv_from(left));
            got[0]
        });
        assert_eq!(res.results, vec![7, 0, 1, 2, 3, 4, 5, 6]);
        assert!(res.max_seconds > 0.0);
    }

    #[test]
    fn clocks_synchronise_on_recv() {
        // Node 0 computes a long time, then sends to node 1; node 1's
        // receive must push its clock past node 0's send time.
        let res = run_spmd(2, TimeParams::default(), |node| {
            if node.rank() == 0 {
                node.compute(1_000_000);
                node.send_sync(1, encode_u32s(&[42]));
            } else {
                let _ = node.recv_from(0);
            }
            node.clock_seconds()
        });
        assert!(res.results[1] > res.results[0] * 0.99);
        assert!(res.results[1] >= 1_000_000.0 * 150.0 / 1e9);
    }

    #[test]
    fn barrier_equalises_clocks() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            node.compute(node.rank() as u64 * 10_000);
            node.barrier();
            node.clock_seconds()
        });
        let first = res.results[0];
        for &c in &res.results {
            assert!((c - first).abs() < 1e-12, "{c} vs {first}");
        }
    }

    #[test]
    fn concat_gathers_in_rank_order() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            let parts = node.concat(encode_u32s(&[node.rank() as u32 * 10]));
            parts
                .into_iter()
                .flat_map(decode_u32s)
                .collect::<Vec<u32>>()
        });
        for r in res.results {
            assert_eq!(r, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn allreduce_or_and_max() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            let any = node.allreduce_or(node.rank() == 2);
            let none = node.allreduce_or(false);
            let max = node.allreduce_u64(node.rank() as u64, u64::max);
            (any, none, max)
        });
        for (any, none, max) in res.results {
            assert!(any);
            assert!(!none);
            assert_eq!(max, 3);
        }
    }

    #[test]
    fn async_send_cheaper_than_sync() {
        let time_of = |sync: bool| {
            run_spmd(2, TimeParams::default(), move |node| {
                if node.rank() == 0 {
                    let payload = encode_u32s(&vec![7u32; 100]);
                    if sync {
                        node.send_sync(1, payload);
                    } else {
                        node.send_async(1, payload);
                    }
                } else {
                    let _ = node.recv_from(0);
                }
                node.clock_seconds()
            })
            .results[0]
        };
        assert!(time_of(false) < time_of(true));
    }

    #[test]
    fn deterministic_virtual_time() {
        let run = || {
            run_spmd(6, TimeParams::default(), |node| {
                node.compute((node.rank() as u64 + 1) * 1000);
                let parts = node.concat(encode_u32s(&[node.rank() as u32]));
                node.barrier();
                (parts.len(), node.clock_ns())
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y);
        }
        assert_eq!(a.max_seconds, b.max_seconds);
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use crate::channel::{decode_u32s, encode_u32s};

    #[test]
    fn broadcast_delivers_root_payload() {
        let res = run_spmd(5, TimeParams::default(), |node| {
            let payload = if node.rank() == 2 {
                encode_u32s(&[41, 42])
            } else {
                encode_u32s(&[99]) // ignored: only the root's bytes matter
            };
            decode_u32s(node.broadcast(2, payload))
        });
        for r in res.results {
            assert_eq!(r, vec![41, 42]);
        }
    }

    #[test]
    fn exclusive_scan_over_ranks() {
        let res = run_spmd(6, TimeParams::default(), |node| {
            node.scan_exclusive_u64(node.rank() as u64 + 1, 0, |a, b| a + b)
        });
        // Node k gets sum of 1..=k.
        assert_eq!(res.results, vec![0, 1, 3, 6, 10, 15]);
    }

    #[test]
    fn gather_lands_on_root_only() {
        let res = run_spmd(4, TimeParams::default(), |node| {
            let got = node.gather_to(1, encode_u32s(&[node.rank() as u32 * 7]));
            got.into_iter().flat_map(decode_u32s).collect::<Vec<_>>()
        });
        assert!(res.results[0].is_empty());
        assert_eq!(res.results[1], vec![0, 7, 14, 21]);
        assert!(res.results[2].is_empty());
    }

    #[test]
    fn send_counters_track_traffic() {
        let res = run_spmd(3, TimeParams::default(), |node| {
            if node.rank() == 0 {
                node.send_sync(1, encode_u32s(&[1, 2, 3]));
                node.send_async(2, encode_u32s(&[4]));
            } else {
                let _ = node.recv_from(0);
            }
            (node.msgs_sent(), node.bytes_sent())
        });
        assert_eq!(res.results[0], (2, 16));
        assert_eq!(res.results[1], (0, 0));
    }
}
