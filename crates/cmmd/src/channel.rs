//! Timestamped message channels and payload encoding helpers.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A message in flight: the sender's rank, the virtual time at which it
/// left the sender, and the payload.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sender rank.
    pub src: usize,
    /// Sender-side virtual timestamp, nanoseconds.
    pub ts_ns: f64,
    /// Payload bytes.
    pub payload: Bytes,
}

/// A payload whose length is not a whole number of elements — truncated or
/// misaligned, e.g. after corruption in a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The payload length observed.
    pub len: usize,
    /// The element size the decoder expected the length to divide by.
    pub elem: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "payload length {} is not a multiple of {}",
            self.len, self.elem
        )
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a `u32` slice little-endian.
pub fn encode_u32s(data: &[u32]) -> Bytes {
    let mut b = BytesMut::with_capacity(data.len() * 4);
    for &v in data {
        b.put_u32_le(v);
    }
    b.freeze()
}

/// Decodes a little-endian `u32` payload, rejecting truncated or
/// misaligned lengths. This is the decoder fault-tolerant paths must use:
/// a corrupted payload surfaces as a recoverable `Err`, not an abort.
pub fn try_decode_u32s(mut b: Bytes) -> Result<Vec<u32>, DecodeError> {
    if !b.len().is_multiple_of(4) {
        return Err(DecodeError {
            len: b.len(),
            elem: 4,
        });
    }
    let mut out = Vec::with_capacity(b.len() / 4);
    while b.has_remaining() {
        out.push(b.get_u32_le());
    }
    Ok(out)
}

/// Decodes a little-endian `u32` payload.
///
/// # Panics
/// Panics if the length is not a multiple of 4; use [`try_decode_u32s`]
/// where malformed input must be recoverable.
pub fn decode_u32s(b: Bytes) -> Vec<u32> {
    let len = b.len();
    try_decode_u32s(b).unwrap_or_else(|_| panic!("u32 payload length {len} not /4"))
}

/// Encodes a `u64` slice little-endian.
pub fn encode_u64s(data: &[u64]) -> Bytes {
    let mut b = BytesMut::with_capacity(data.len() * 8);
    for &v in data {
        b.put_u64_le(v);
    }
    b.freeze()
}

/// Decodes a little-endian `u64` payload, rejecting truncated or
/// misaligned lengths.
pub fn try_decode_u64s(mut b: Bytes) -> Result<Vec<u64>, DecodeError> {
    if !b.len().is_multiple_of(8) {
        return Err(DecodeError {
            len: b.len(),
            elem: 8,
        });
    }
    let mut out = Vec::with_capacity(b.len() / 8);
    while b.has_remaining() {
        out.push(b.get_u64_le());
    }
    Ok(out)
}

/// Decodes a little-endian `u64` payload.
///
/// # Panics
/// Panics if the length is not a multiple of 8; use [`try_decode_u64s`]
/// where malformed input must be recoverable.
pub fn decode_u64s(b: Bytes) -> Vec<u64> {
    let len = b.len();
    try_decode_u64s(b).unwrap_or_else(|_| panic!("u64 payload length {len} not /8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let data = vec![0u32, 1, u32::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u32s(encode_u32s(&data)), data);
        assert!(decode_u32s(Bytes::new()).is_empty());
    }

    #[test]
    fn u64_roundtrip() {
        let data = vec![0u64, u64::MAX, 0x0123_4567_89AB_CDEF];
        assert_eq!(decode_u64s(encode_u64s(&data)), data);
    }

    #[test]
    #[should_panic(expected = "not /4")]
    fn bad_length_panics() {
        let _ = decode_u32s(Bytes::from_static(&[1, 2, 3]));
    }

    #[test]
    fn try_decoders_reject_truncation() {
        // A u32 payload losing its last byte.
        let mut bytes = encode_u32s(&[1, 2]).to_vec();
        bytes.pop();
        assert_eq!(
            try_decode_u32s(Bytes::from(bytes)),
            Err(DecodeError { len: 7, elem: 4 })
        );
        // A u64 payload losing three bytes.
        let mut bytes = encode_u64s(&[7]).to_vec();
        bytes.truncate(5);
        assert_eq!(
            try_decode_u64s(Bytes::from(bytes)),
            Err(DecodeError { len: 5, elem: 8 })
        );
    }

    #[test]
    fn try_decoders_reject_misalignment() {
        assert!(try_decode_u32s(Bytes::from(vec![0u8; 6])).is_err());
        // A length that is /4 but not /8 is valid u32 data, invalid u64.
        assert!(try_decode_u32s(Bytes::from(vec![0u8; 12])).is_ok());
        assert!(try_decode_u64s(Bytes::from(vec![0u8; 12])).is_err());
    }

    #[test]
    fn try_decoders_accept_good_payloads() {
        let data = vec![3u32, 1, 4, 1, 5];
        assert_eq!(try_decode_u32s(encode_u32s(&data)), Ok(data));
        let data = vec![9u64, 2, 6];
        assert_eq!(try_decode_u64s(encode_u64s(&data)), Ok(data));
        assert_eq!(try_decode_u64s(Bytes::new()), Ok(Vec::new()));
    }

    #[test]
    fn decode_error_display_names_both_numbers() {
        let e = DecodeError { len: 7, elem: 4 };
        assert_eq!(e.to_string(), "payload length 7 is not a multiple of 4");
    }
}
