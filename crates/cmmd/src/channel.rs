//! Timestamped message channels and payload encoding helpers.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A message in flight: the sender's rank, the virtual time at which it
/// left the sender, and the payload.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sender rank.
    pub src: usize,
    /// Sender-side virtual timestamp, nanoseconds.
    pub ts_ns: f64,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Encodes a `u32` slice little-endian.
pub fn encode_u32s(data: &[u32]) -> Bytes {
    let mut b = BytesMut::with_capacity(data.len() * 4);
    for &v in data {
        b.put_u32_le(v);
    }
    b.freeze()
}

/// Decodes a little-endian `u32` payload.
///
/// # Panics
/// Panics if the length is not a multiple of 4.
pub fn decode_u32s(mut b: Bytes) -> Vec<u32> {
    assert_eq!(b.len() % 4, 0, "u32 payload length {} not /4", b.len());
    let mut out = Vec::with_capacity(b.len() / 4);
    while b.has_remaining() {
        out.push(b.get_u32_le());
    }
    out
}

/// Encodes a `u64` slice little-endian.
pub fn encode_u64s(data: &[u64]) -> Bytes {
    let mut b = BytesMut::with_capacity(data.len() * 8);
    for &v in data {
        b.put_u64_le(v);
    }
    b.freeze()
}

/// Decodes a little-endian `u64` payload.
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn decode_u64s(mut b: Bytes) -> Vec<u64> {
    assert_eq!(b.len() % 8, 0, "u64 payload length {} not /8", b.len());
    let mut out = Vec::with_capacity(b.len() / 8);
    while b.has_remaining() {
        out.push(b.get_u64_le());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let data = vec![0u32, 1, u32::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u32s(encode_u32s(&data)), data);
        assert!(decode_u32s(Bytes::new()).is_empty());
    }

    #[test]
    fn u64_roundtrip() {
        let data = vec![0u64, u64::MAX, 0x0123_4567_89AB_CDEF];
        assert_eq!(decode_u64s(encode_u64s(&data)), data);
    }

    #[test]
    #[should_panic(expected = "not /4")]
    fn bad_length_panics() {
        let _ = decode_u32s(Bytes::from_static(&[1, 2, 3]));
    }
}
